"""Expressiveness: the paper's incompleteness witnesses, run on real data.

Theorem 3: BOOL cannot express "contains at least one token other than t1".
Theorem 5: DIST cannot express "t1 and t2 do not appear next to each other".
Theorem 4: with a *finite* token universe, any Preds = ∅ calculus query can be
           rewritten into (a possibly much larger) BOOL query.
Theorem 6: COMP expresses every calculus query.

This example builds the witness documents from the proofs, shows that the
COMP queries separate them while every BOOL/DIST query in sight cannot, and
demonstrates the constructive Theorem 4 and Theorem 6 translations.

Run with::

    python examples/expressiveness.py
"""

from __future__ import annotations

from repro import Collection, FullTextEngine
from repro.corpus import ContextNode
from repro.languages import calculus_to_comp, parse_bool, parse_comp
from repro.model.normalize import calculus_to_bool


def theorem3_witness() -> None:
    print("=== Theorem 3: BOOL is incomplete ===")
    # CN1 contains only t1; CN2 contains t1 and one other token.
    collection = Collection.from_nodes(
        [
            ContextNode.from_tokens(1, ["t1"]),
            ContextNode.from_tokens(2, ["t1", "t2"]),
        ]
    )
    engine = FullTextEngine.from_collection(collection)

    comp_query = "SOME p (NOT p HAS 't1')"
    print(f"  COMP query {comp_query!r} matches:", engine.search(comp_query).node_ids)
    print("  (only CN2 contains a token other than t1)")

    for bool_text in ["'t1'", "NOT 't1'", "'t1' AND 't2'", "ANY"]:
        matches = engine.search(bool_text, language="bool").node_ids
        print(f"  BOOL query {bool_text!r:20} matches: {matches}")
    print(
        "  No BOOL query over the tokens it mentions can return CN2 without CN1\n"
        "  (the proof constructs CN2 with a token the query never names).\n"
    )


def theorem5_witness() -> None:
    print("=== Theorem 5: DIST is incomplete ===")
    # CN1 = t1 t2 t1 ; CN2 = t1 t2 t1 t2 — only CN2 has an occurrence of t1
    # and t2 that are NOT adjacent.
    collection = Collection.from_nodes(
        [
            ContextNode.from_tokens(1, ["t1", "t2", "t1"]),
            ContextNode.from_tokens(2, ["t1", "t2", "t1", "t2"]),
        ]
    )
    engine = FullTextEngine.from_collection(collection)

    comp_query = (
        "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND NOT distance(p1, p2, 0))"
    )
    # NOTE: "NOT distance(...)" makes the query a COMP query; the equivalent
    # NPRED form uses the negative predicate not_distance directly.
    npred_query = (
        "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND not_distance(p1, p2, 0))"
    )
    print(f"  COMP query matches : {engine.search(comp_query).node_ids}")
    print(f"  NPRED query matches: {engine.search(npred_query).node_ids}")

    for dist_text in ["dist('t1', 't2', 0)", "'t1' AND 't2'", "dist('t1', 't2', 5)"]:
        matches = engine.search(dist_text, language="dist").node_ids
        print(f"  DIST query {dist_text!r:22} matches: {matches}")
    print("  Every DIST query returns both nodes or neither, never only CN2.\n")


def theorem4_construction() -> None:
    print("=== Theorem 4: BOOL completeness for a finite token universe ===")
    vocabulary = ["t1", "t2", "t3"]
    collection = Collection.from_nodes(
        [
            ContextNode.from_tokens(1, ["t1"]),
            ContextNode.from_tokens(2, ["t1", "t2"]),
            ContextNode.from_tokens(3, ["t3", "t3"]),
        ]
    )
    engine = FullTextEngine.from_collection(collection)

    comp_query = parse_comp("SOME p (NOT p HAS 't1')")
    calculus = comp_query.to_calculus_query()
    bool_query = calculus_to_bool(calculus, vocabulary)
    print(f"  COMP : {comp_query.to_text()}")
    print(f"  BOOL : {bool_query.to_text()}")
    print(f"  COMP matches: {engine.search(comp_query).node_ids}")
    print(f"  BOOL matches: {engine.search(bool_query).node_ids}")
    print("  With T finite the two queries agree (at the cost of enumerating T).\n")


def theorem6_round_trip() -> None:
    print("=== Theorem 6: COMP is complete ===")
    text = (
        "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
        "AND samepara(p1, p2) AND NOT samesentence(p1, p2) AND distance(p1, p2, 5))"
    )
    query = parse_comp(text)
    calculus = query.to_calculus_query()
    back = calculus_to_comp(calculus)
    print(f"  original COMP : {text}")
    print(f"  via calculus  : {calculus.to_text()}")
    print(f"  back to COMP  : {back.to_text()}")

    bool_query = parse_bool("'usability' AND 'software'")
    print(f"  (BOOL can only ask for co-occurrence: {bool_query.to_text()})")


def main() -> None:
    theorem3_witness()
    theorem5_witness()
    theorem4_construction()
    theorem6_round_trip()


if __name__ == "__main__":
    main()
