"""Quickstart: index a few documents and query them in all three languages.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Collection, FullTextEngine

DOCUMENTS = {
    "usability-book": """
        Usability Definition.

        Usability of a software measures how well the software supports
        achieving an efficient software task completion. A software is
        considered efficient when users reach their goals quickly.

        More on usability of a software follows in later chapters.
    """,
    "testing-article": """
        Software testing and usability testing are different disciplines.
        Efficient testing of task completion requires careful test design.
    """,
    "databases-article": """
        Databases support full-text search over relational data.
        Inverted lists make keyword retrieval efficient.
    """,
}


def main() -> None:
    collection = Collection.from_named_texts(DOCUMENTS)
    engine = FullTextEngine.from_collection(collection, scoring="tfidf")

    print("=== BOOL: keyword search ===")
    results = engine.search("'usability' AND 'software' AND NOT 'databases'")
    print(results.summary())
    for result in results:
        title = collection.get(result.node_id).metadata.get("title", "?")
        print(f"  node {result.node_id} ({title})  score={result.score:.4f}")

    print()
    print("=== DIST: proximity search ===")
    results = engine.search("dist('task', 'completion', 0)", language="dist")
    print(results.summary())
    for result in results:
        print(f"  node {result.node_id}: {result.preview}")

    print()
    print("=== COMP: position variables, order and paragraph scope ===")
    query = (
        "SOME p1 SOME p2 (p1 HAS 'efficient' AND p2 HAS 'completion' "
        "AND ordered(p1, p2) AND distance(p1, p2, 10) AND samepara(p1, p2))"
    )
    results = engine.search(query)
    print(results.summary())
    for result in results:
        print(f"  node {result.node_id}: {result.preview}")

    print()
    print("=== Explain: classification and calculus form ===")
    explanation = engine.explain(query)
    for key, value in explanation.items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
