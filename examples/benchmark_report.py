"""Regenerate the paper's evaluation section (Figures 5-8) as text tables.

This drives the same sweeps as the ``benchmarks/`` directory but prints them
as a single human-readable report, including the qualitative "shape checks"
of Section 6.1 (BOOL ≼ PPRED ≼ NPRED ≼ COMP, and so on).

Run with::

    python examples/benchmark_report.py            # laptop scale (seconds)
    python examples/benchmark_report.py --smoke    # tiny smoke-test scale
"""

from __future__ import annotations

import argparse

from repro.bench import FigureScale, render_report, run_all
from repro.bench.complexity import QueryParameters, hierarchy_table
from repro.corpus.synthetic import generate_inex_like_collection
from repro.index import InvertedIndex


def print_complexity_hierarchy() -> None:
    print("Figure 3: analytic complexity hierarchy (operation bounds)")
    print("----------------------------------------------------------")
    collection = generate_inex_like_collection(num_nodes=400, pos_per_entry=4)
    data = InvertedIndex(collection).statistics.complexity_parameters()
    query = QueryParameters(toks_q=3, preds_q=2, ops_q=4)
    print(f"  data parameters : {data.as_dict()}")
    print(f"  query parameters: toks_Q=3, preds_Q=2, ops_Q=4")
    for name, bound in hierarchy_table(data, query):
        print(f"  {name:11} {bound:>18,.0f} operations")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run at tiny smoke-test scale"
    )
    args = parser.parse_args()

    scale = FigureScale.smoke() if args.smoke else FigureScale.laptop()
    print_complexity_hierarchy()

    tables = run_all(scale)
    print(render_report(list(tables.values())))


if __name__ == "__main__":
    main()
