"""The paper's running example: XQuery Full-Text Use Case 10.4.

    "Given an XML document that contains book and article elements, find the
     book elements containing the word 'efficient' and the phrase
     'task completion' in that order with at most 10 intervening tokens."

The search *context* (book elements rather than articles) is selected with
the host language -- here a plain Python filter over node metadata -- and the
full-text *condition* is expressed in COMP: an existential block binding three
position variables, phrase adjacency via ``distance(.., .., 0)`` +
``ordered``, the order constraint between the word and the phrase, and the
10-token window.

Run with::

    python examples/xquery_usecase.py
"""

from __future__ import annotations

from repro import Collection, ContextNode, FullTextEngine
from repro.corpus.loaders import strip_markup

# A miniature version of the paper's Figure 1 document plus distractors.
BOOKS = [
    """
    <book id="usability">
      <author>Elina Rose</author>
      <content>
        Usability Definition
        <p>Usability of a software measures how well the software supports
           achieving an efficient software task completion for all users.</p>
        <p>A software is considered usable when evaluation succeeds.</p>
      </content>
    </book>
    """,
    """
    <book id="compilers">
      <content>
        <p>Efficient register allocation is unrelated to the phrase the query
           is looking for; task completion appears here but far too many words
           separate it from the keyword efficient to satisfy the window, as
           this long-winded sentence demonstrates at length before finally
           mentioning task completion.</p>
      </content>
    </book>
    """,
    """
    <book id="reversed">
      <content>
        <p>Task completion can be efficient, but the order is reversed:
           the phrase precedes the keyword here.</p>
      </content>
    </book>
    """,
]

ARTICLES = [
    """
    <article id="hci">
      <content><p>An efficient approach to task completion in articles
      should not be returned: the search context is book elements only.</p>
      </content>
    </article>
    """,
]


def build_collection() -> Collection:
    nodes = []
    for index, markup in enumerate(BOOKS + ARTICLES):
        kind = "book" if index < len(BOOKS) else "article"
        nodes.append(
            ContextNode.from_text(index, strip_markup(markup), metadata={"kind": kind})
        )
    return Collection.from_nodes(nodes, name="usecase-10.4")


#: COMP query for Use Case 10.4: 'efficient' before the adjacent phrase
#: "task completion", with at most 10 intervening tokens.
USE_CASE_QUERY = (
    "SOME w SOME t1 SOME t2 ("
    "w HAS 'efficient' AND t1 HAS 'task' AND t2 HAS 'completion' "
    "AND ordered(t1, t2) AND distance(t1, t2, 0) "
    "AND ordered(w, t1) AND distance(w, t1, 10)"
    ")"
)


def main() -> None:
    collection = build_collection()

    # Search context: book elements only (the host-language side of the query).
    books = collection.filter(lambda node: node.metadata.get("kind") == "book")
    engine = FullTextEngine.from_collection(books, scoring="tfidf")

    print("Use Case 10.4 query (COMP):")
    print(" ", USE_CASE_QUERY)
    print()

    results = engine.search(USE_CASE_QUERY)
    print(results.summary())
    for result in results:
        print(f"  book node {result.node_id}: {result.preview}")

    print()
    print("Evaluation details:")
    explanation = engine.explain(USE_CASE_QUERY)
    print(f"  language class : {explanation['language_class']}")
    print(f"  engine         : {explanation['engine']}")
    print(f"  query measures : {explanation['measures']}")

    print()
    print("Why the other books do not match:")
    print("  - 'compilers' violates the 10-token window,")
    print("  - 'reversed' violates the order constraint,")
    print("  - articles are outside the search context.")


if __name__ == "__main__":
    main()
