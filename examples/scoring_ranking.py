"""Scoring: rank the same result set with TF-IDF and probabilistic scoring.

The paper's scoring framework (Section 3) attaches per-tuple scores to the
algebra and defines per-operator transformations; two instantiations are
provided, TF-IDF (Section 3.1) and the probabilistic relational model
(Section 3.2).  This example runs one keyword query under both models and
also shows the score propagation through the naive COMP engine's algebra
operators.

Run with::

    python examples/scoring_ranking.py
"""

from __future__ import annotations

from repro import Collection, FullTextEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.index import InvertedIndex
from repro.languages import parse_comp
from repro.scoring import ProbabilisticScoring, TfIdfScoring

DOCUMENTS = [
    # Heavy on 'usability', light on 'software'.
    "usability usability usability evaluation of interfaces and usability labs",
    # Balanced.
    "usability of a software measures how well the software supports users",
    # Heavy on 'software', no 'usability'.
    "software software architecture and software deployment pipelines",
    # Mentions both once, in a long document.
    "a short note that mentions usability once and software once among many "
    "other words about databases retrieval indexing ranking and evaluation",
]

QUERY = "'usability' OR 'software'"


def show_ranking(title: str, engine: FullTextEngine) -> None:
    print(f"--- {title} ---")
    results = engine.search(QUERY)
    for rank, result in enumerate(results, start=1):
        print(f"  {rank}. node {result.node_id}  score={result.score:.4f}  {result.preview}")
    print()


def show_operator_propagation(collection: Collection) -> None:
    """Score propagation through the algebra operators (Section 3.1)."""
    print("--- per-operator TF-IDF propagation (naive COMP engine) ---")
    index = InvertedIndex(collection)
    scoring = TfIdfScoring(index.statistics)
    engine = NaiveCompEngine(index, scoring=scoring)
    query = parse_comp("'usability' AND 'software'")
    evaluation = engine.evaluate_full(query)
    print(f"  algebra plan: {evaluation.algebra_text}")
    for node_id in evaluation.node_ids:
        propagated = evaluation.scores.get(node_id, 0.0)
        scoring.prepare(["usability", "software"])
        direct = scoring.document_score(node_id)
        print(
            f"  node {node_id}: propagated={propagated:.6f}  "
            f"direct TF-IDF={direct:.6f}"
        )
    print(
        "  (Theorem 2: for conjunctive/disjunctive queries the propagated score\n"
        "   equals the classic TF-IDF score.)\n"
    )


def main() -> None:
    collection = Collection.from_texts(DOCUMENTS)

    tfidf_engine = FullTextEngine.from_collection(collection, scoring="tfidf")
    show_ranking("TF-IDF ranking", tfidf_engine)

    prob_engine = FullTextEngine.from_collection(collection, scoring="probabilistic")
    show_ranking("Probabilistic (PRA) ranking", prob_engine)

    show_operator_propagation(collection)


if __name__ == "__main__":
    main()
