"""repro: reproduction of "Expressiveness and Performance of Full-Text
Search Languages" (Botev, Amer-Yahia, Shanmugasundaram, EDBT 2006).

The package is organised as follows:

* :mod:`repro.corpus`    -- documents, tokenization, collections, synthetic data;
* :mod:`repro.index`     -- inverted lists, sequential cursors, statistics;
* :mod:`repro.segments`  -- live indexing: WAL, memtable, sealed segments,
  tombstone deletes and background compaction;
* :mod:`repro.model`     -- positions, predicates, the full-text calculus (FTC)
  and algebra (FTA), and their equivalence translations;
* :mod:`repro.languages` -- the BOOL, DIST and COMP surface languages;
* :mod:`repro.engine`    -- the four evaluation algorithms (BOOL merge, PPRED
  single-scan, NPRED permutation threads, naive COMP);
* :mod:`repro.scoring`   -- the scoring framework (TF-IDF, probabilistic);
* :mod:`repro.core`      -- the high-level :class:`~repro.core.engine.FullTextEngine`;
* :mod:`repro.bench`     -- workload generation and the experiment harness
  reproducing the paper's figures.

Quickstart::

    from repro import FullTextEngine, Collection

    collection = Collection.from_texts([
        "usability testing of efficient software",
        "software measures task completion",
    ])
    engine = FullTextEngine.from_collection(collection)
    result = engine.search("'software' AND 'usability'")
    print(result.node_ids)
"""

from repro.corpus import Collection, ContextNode
from repro.exceptions import (
    CorpusError,
    EvaluationError,
    IndexError_ as InvertedIndexError,
    PredicateError,
    QuerySemanticsError,
    QuerySyntaxError,
    ReproError,
    ScoringError,
    StorageError,
    TranslationError,
    UnsupportedQueryError,
    WorkloadError,
)
from repro.index import ACCESS_MODES, FAST_MODE, PAPER_MODE, InvertedIndex, build_index
from repro.languages import LanguageClass, classify_query, parse_bool, parse_comp, parse_dist
from repro.model import Position, PredicateRegistry, default_registry

#: Single source of truth for the package version: the CLI's ``--version``
#: flag and the HTTP server's ``/health`` + ``/stats`` responses all read it
#: from here.
__version__ = "1.1.0"

__all__ = [
    "ACCESS_MODES",
    "FAST_MODE",
    "PAPER_MODE",
    "Collection",
    "ContextNode",
    "InvertedIndex",
    "build_index",
    "LanguageClass",
    "classify_query",
    "parse_bool",
    "parse_comp",
    "parse_dist",
    "Position",
    "PredicateRegistry",
    "default_registry",
    "ReproError",
    "CorpusError",
    "EvaluationError",
    "InvertedIndexError",
    "PredicateError",
    "QuerySemanticsError",
    "QuerySyntaxError",
    "ScoringError",
    "StorageError",
    "TranslationError",
    "UnsupportedQueryError",
    "WorkloadError",
    "__version__",
]

# The high-level engine depends on every subpackage; import it last so that a
# partial checkout (e.g. while bisecting) still exposes the formal model.
from repro.core import FullTextEngine, SearchResult, SearchResults  # noqa: E402
from repro.cluster import (  # noqa: E402
    LiveShardedIndex,
    QueryCache,
    ScatterGatherExecutor,
    ShardedIndex,
)
from repro.segments import LiveIndex  # noqa: E402
from repro.exceptions import ClusterError  # noqa: E402

__all__ += [
    "FullTextEngine",
    "SearchResult",
    "SearchResults",
    "ShardedIndex",
    "ScatterGatherExecutor",
    "QueryCache",
    "ClusterError",
    "LiveIndex",
    "LiveShardedIndex",
]
