"""Scoring framework: per-tuple scores and per-operator transformations."""

from repro.scoring.base import (
    ScoringModel,
    available_models,
    get_model,
    register_model,
)
from repro.scoring.probabilistic import ProbabilisticScoring
from repro.scoring.tfidf import TfIdfScoring

__all__ = [
    "ScoringModel",
    "available_models",
    "get_model",
    "register_model",
    "ProbabilisticScoring",
    "TfIdfScoring",
]
