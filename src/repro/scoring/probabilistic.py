"""Probabilistic relational scoring (paper, Section 3.2; Fuhr & Rölleke PRA).

Every tuple carries a probability in ``[0, 1]`` that it is relevant; each
algebra operator transforms the probabilities of its inputs:

* projection:   ``1 - Π (1 - s_i)`` over the collapsing tuples;
* join:         ``s1 · s2``;
* selection:    ``s · f`` where ``f`` is a predicate-specific factor in
  ``[0, 1]`` -- for ``distance(p1, p2, d)`` the paper suggests
  ``f = 1 - |p1 - p2| / d``;
* union:        ``1 - (1 - s1)(1 - s2)``;
* intersection: ``s1 · s2``;
* difference:   ``s1 · (1 - s2)``; with set semantics the surviving tuples
  have ``s2 = 0`` so the left score is kept.

The base tuple probability uses the normalised IDF ``idf(t) / (1 + idf(t))``
(the paper only requires "a value between 0 and 1 ... computed using a
variety of techniques, including TF and IDF").
"""

from __future__ import annotations

from typing import Sequence

from repro.index.statistics import IndexStatistics
from repro.model.positions import Position
from repro.model.predicates import Predicate
from repro.scoring.base import ScoringModel, register_model


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


class ProbabilisticScoring(ScoringModel):
    """The probabilistic-relational-algebra instantiation of the framework."""

    name = "probabilistic"

    # ----------------------------------------------------------- tuple scores
    def token_probability(self, token: str) -> float:
        """Base probability that a tuple of ``R_token`` is relevant."""
        idf = self.statistics.idf(token)
        return _clamp(idf / (1.0 + idf))

    def base_score(self, node_id: int, position: Position, token: str) -> float:
        return self.token_probability(token)

    # --------------------------------------------------------- document score
    def document_score(self, node_id: int) -> float:
        """Probability that the node is relevant to at least one query token.

        Occurrences are treated as independent evidence:
        ``p(n, t) = 1 - (1 - p_t)^{occurs(n, t)}`` per token, combined
        disjunctively over the query tokens.
        """
        node = self.statistics.node(node_id)
        not_relevant = 1.0
        for token in dict.fromkeys(self._query_tokens):
            occurs = node.occurrence_count(token)
            if occurs == 0:
                continue
            per_token = 1.0 - (1.0 - self.token_probability(token)) ** occurs
            not_relevant *= 1.0 - per_token
        return _clamp(1.0 - not_relevant)

    def score_upper_bound(self, node_id: int) -> float:
        """Bound ``document_score`` from per-token occurrence maxima.

        The score is ``1 - Π_t (1 - p_t)^occurs(n, t)``; replacing every
        exponent by the larger ``min(max_occurrences(t), len(n))`` shrinks
        each miss factor, so the product is a lower bound on the node's miss
        probability and its complement an upper bound on the score --
        computed from cached statistics only.

        As in the TF-IDF model, the bound replays :meth:`document_score`'s
        exact float operation sequence with only the exponent substituted.
        When the exponents coincide the factors are bit-identical (exact
        ties prune through the id tie-break); when they differ, the real
        gap is at least a factor ``1 - p_t <= 0.59`` per extra occurrence
        (``idf >= ln 2`` forces ``p_t >= 0.41``), dwarfing any rounding.
        """
        terms = self._bound_state
        if terms is None:
            terms = []
            for token in dict.fromkeys(self._query_tokens):
                max_occurrences = self.statistics.max_occurrences(token)
                if max_occurrences == 0:
                    continue
                terms.append((self.token_probability(token), max_occurrences))
            self._bound_state = terms
        length = self.statistics.node_length(node_id)
        if length == 0 or not terms:
            return 0.0
        not_relevant = 1.0
        for probability, max_occurrences in terms:
            capped = max_occurrences if max_occurrences < length else length
            per_token = 1.0 - (1.0 - probability) ** capped
            not_relevant *= 1.0 - per_token
        return _clamp(1.0 - not_relevant)

    # ------------------------------------------------ operator transformations
    def combine_join(
        self, left_score: float, right_score: float, left_size: int, right_size: int
    ) -> float:
        return _clamp(left_score * right_score)

    def combine_projection(self, scores: Sequence[float]) -> float:
        not_relevant = 1.0
        for score in scores:
            not_relevant *= 1.0 - _clamp(score)
        return _clamp(1.0 - not_relevant)

    def transform_selection(
        self,
        score: float,
        predicate: Predicate,
        positions: Sequence[Position],
        constants: Sequence[object],
    ) -> float:
        return _clamp(score * self.predicate_factor(predicate, positions, constants))

    def predicate_factor(
        self,
        predicate: Predicate,
        positions: Sequence[Position],
        constants: Sequence[object],
    ) -> float:
        """The ``f`` factor of a selection: closeness-based for ``distance``."""
        if predicate.name == "distance" and len(positions) == 2 and constants:
            limit = max(int(constants[0]), 1)
            gap = abs(positions[0].offset - positions[1].offset)
            return _clamp(1.0 - gap / (limit + 1))
        return 1.0

    def combine_union(self, left_score: float, right_score: float) -> float:
        return _clamp(1.0 - (1.0 - _clamp(left_score)) * (1.0 - _clamp(right_score)))

    def combine_intersection(self, left_score: float, right_score: float) -> float:
        return _clamp(left_score * right_score)

    def transform_difference(self, left_score: float) -> float:
        return _clamp(left_score)


register_model("probabilistic", ProbabilisticScoring)
register_model("pra", ProbabilisticScoring)
