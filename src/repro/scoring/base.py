"""Scoring framework (paper, Section 3).

The paper deliberately does not hard-code a scoring method.  Instead it
extends the model with (1) per-tuple scoring information and (2) per-operator
scoring transformations.  This module defines the two abstractions the rest
of the library works with:

* :class:`ScoringModel` -- a named scoring method.  It provides

  - ``base_score(node_id, position, token)``: the *static*, precomputable
    score attached to each tuple of an ``R_token`` relation (paper: "all of
    the scoring information in ``R_t`` can be precomputed");
  - ``prepare(query_tokens)``: fold query-dependent factors (e.g. the
    ``||q||_2`` normalisation of TF-IDF) into the model before evaluation;
  - ``document_score(node_id)``: the direct document-level score of a node
    with respect to the prepared query tokens -- used to rank results of the
    pipelined engines and as the reference value in the Theorem 2 test;
  - the :class:`~repro.model.relations.ScoreCombiner` operator
    transformations, so the materialising algebra evaluator can propagate
    scores through arbitrary expressions.

* :func:`get_model` -- look a model up by name (``"tfidf"``,
  ``"probabilistic"``); the registry is extensible.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.exceptions import ScoringError
from repro.index.statistics import IndexStatistics
from repro.model.positions import Position
from repro.model.predicates import Predicate


class ScoringModel:
    """Base class of scoring methods pluggable into the framework."""

    name: str = "scoring-model"

    def __init__(self, statistics: IndexStatistics) -> None:
        self.statistics = statistics
        self._query_tokens: tuple[str, ...] = ()
        self._bound_state: object | None = None

    # ----------------------------------------------------------- query setup
    def prepare(self, query_tokens: Sequence[str]) -> None:
        """Fold the query-dependent factors of the model for ``query_tokens``."""
        self._query_tokens = tuple(query_tokens)
        self._bound_state = None

    @property
    def query_tokens(self) -> tuple[str, ...]:
        return self._query_tokens

    # ----------------------------------------------------------- tuple scores
    def base_score(self, node_id: int, position: Position, token: str) -> float:
        """Initial score of an ``R_token`` tuple (precomputed + query factors)."""
        raise NotImplementedError

    def document_score(self, node_id: int) -> float:
        """Document-level score of ``node_id`` for the prepared query tokens."""
        raise NotImplementedError

    def score_upper_bound(self, node_id: int) -> float:
        """A cheap upper bound on :meth:`document_score` for ``node_id``.

        Contract (relied on by the top-k pushdown in
        :mod:`repro.engine.topk`): for the currently prepared query tokens,
        ``score_upper_bound(n) >= document_score(n)`` must hold for every
        node -- including under floating-point evaluation, so concrete models
        widen their bound by a small relative slack.  The bound should be
        computable from precomputed statistics alone (no per-token node
        content lookups); a model that cannot bound its scores simply
        inherits this default, which returns ``inf`` and thereby disables
        pruning (results stay correct, just unpruned).

        ``prepare`` resets ``self._bound_state``; models lazily derive their
        per-query bound tables into it so the cost is only paid by queries
        that actually prune.
        """
        return math.inf

    def rank(self, node_ids: Iterable[int]) -> list[tuple[int, float]]:
        """Rank node ids by document score, descending (ties by node id)."""
        scored = [(node_id, self.document_score(node_id)) for node_id in node_ids]
        return sorted(scored, key=lambda pair: (-pair[1], pair[0]))

    # ------------------------------------------------ operator transformations
    # Defaults implement "no transformation"; concrete models override the
    # formulas from Sections 3.1 / 3.2.
    def combine_join(
        self, left_score: float, right_score: float, left_size: int, right_size: int
    ) -> float:
        return left_score * right_score

    def combine_projection(self, scores: Sequence[float]) -> float:
        return max(scores) if scores else 0.0

    def transform_selection(
        self,
        score: float,
        predicate: Predicate,
        positions: Sequence[Position],
        constants: Sequence[object],
    ) -> float:
        return score

    def combine_union(self, left_score: float, right_score: float) -> float:
        return max(left_score, right_score)

    def combine_intersection(self, left_score: float, right_score: float) -> float:
        return min(left_score, right_score)

    def transform_difference(self, left_score: float) -> float:
        return left_score


_MODEL_FACTORIES: dict[str, Callable[[IndexStatistics], ScoringModel]] = {}


def register_model(
    name: str, factory: Callable[[IndexStatistics], ScoringModel]
) -> None:
    """Register a scoring-model factory under ``name`` (case-insensitive)."""
    _MODEL_FACTORIES[name.lower()] = factory


def get_model(name: str, statistics: IndexStatistics) -> ScoringModel:
    """Instantiate a registered scoring model by name."""
    factory = _MODEL_FACTORIES.get(name.lower())
    if factory is None:
        raise ScoringError(
            f"unknown scoring model {name!r}; available: {sorted(_MODEL_FACTORIES)}"
        )
    return factory(statistics)


def available_models() -> list[str]:
    """Names of all registered scoring models."""
    return sorted(_MODEL_FACTORIES)
