"""TF-IDF scoring (paper, Section 3.1).

Formulae used (all straight from the paper):

* ``tf(n, t) = occurs(n, t) / unique_tokens(n)``
* ``idf(t)   = ln(1 + db_size / df(t))``
* ``score(n) = Σ_{t ∈ q} w(t) · tf(n, t) · idf(t) / (||n||_2 · ||q||_2)``

The per-tuple *static* score stored with each ``R_t`` tuple is
``idf(t) / (unique_tokens(n) · ||n||_2)``; at query time it is multiplied by
``idf(t) / (unique_search_tokens · ||q||_2)``, giving

    tuple.score = idf(t)² / (unique_tokens(n) · unique_search_tokens · ||n||_2 · ||q||_2)

so that summing the tuple scores of ``R_t`` for a node reproduces exactly the
node's TF-IDF contribution for ``t`` (the identity exploited in the paper's
Theorem 2, with the token weight ``w(t) = idf(t) / unique_search_tokens``).

Operator transformations (score conservation, Section 3.1):

* join:        ``t3 = t1/|R2| + t2/|R1|`` with ``|R|`` the *per-node* tuple
  counts (this is the reading under which the paper's Theorem 2 argument
  goes through);
* projection:  sum of the collapsing tuples' scores;
* selection:   unchanged;
* union:       sum (a missing tuple scores 0);
* intersection: minimum;
* difference:  keep the left score.
"""

from __future__ import annotations

from typing import Sequence

from repro.index.statistics import IndexStatistics
from repro.model.positions import Position
from repro.model.predicates import Predicate
from repro.scoring.base import ScoringModel, register_model


class TfIdfScoring(ScoringModel):
    """The TF-IDF instantiation of the scoring framework."""

    name = "tfidf"

    def __init__(self, statistics: IndexStatistics) -> None:
        super().__init__(statistics)
        self._query_norm = 1.0
        self._unique_search_tokens = 1
        self._node_norms: dict[int, float] = {}

    # ----------------------------------------------------------- query setup
    def prepare(self, query_tokens: Sequence[str]) -> None:
        super().prepare(query_tokens)
        unique = list(dict.fromkeys(query_tokens))
        self._unique_search_tokens = max(len(unique), 1)
        weights = {token: self.token_weight(token) for token in unique}
        self._query_norm = self.statistics.query_l2_norm(weights) or 1.0

    def token_weight(self, token: str) -> float:
        """``w(t)``: the query-token weight making Theorem 2's identity hold."""
        return self.statistics.idf(token) / max(self._unique_search_tokens, 1)

    # ----------------------------------------------------------- tuple scores
    def static_score(self, node_id: int, token: str) -> float:
        """The precomputable part ``idf(t) / (unique_tokens(n) · ||n||_2)``."""
        unique_tokens = max(self.statistics.unique_token_count(node_id), 1)
        return self.statistics.idf(token) / (unique_tokens * self._node_norm(node_id))

    def query_factor(self, token: str) -> float:
        """The query-dependent factor ``idf(t) / (unique_search_tokens · ||q||_2)``."""
        return self.statistics.idf(token) / (
            max(self._unique_search_tokens, 1) * self._query_norm
        )

    def base_score(self, node_id: int, position: Position, token: str) -> float:
        return self.static_score(node_id, token) * self.query_factor(token)

    # --------------------------------------------------------- document score
    def document_score(self, node_id: int) -> float:
        """Classic cosine TF-IDF of the node against the prepared query."""
        node = self.statistics.node(node_id)
        unique_query_tokens = dict.fromkeys(self._query_tokens)
        unique_tokens = max(self.statistics.unique_token_count(node_id), 1)
        total = 0.0
        for token in unique_query_tokens:
            occurs = node.occurrence_count(token)
            if occurs == 0:
                continue
            tf = occurs / unique_tokens
            total += self.token_weight(token) * tf * self.statistics.idf(token)
        return total / (self._node_norm(node_id) * self._query_norm)

    def score_upper_bound(self, node_id: int) -> float:
        """Bound ``document_score`` from per-token occurrence maxima.

        ``occurs(n, t) <= min(max_occurrences(t), len(n))``, so substituting
        that cap into the score leaves only cached statistics -- no node
        content is touched, which is what makes pruning cheaper than scoring.

        The bound deliberately replays :meth:`document_score`'s float
        operation sequence term by term (same token order, same association,
        same divisions), only with the occurrence cap in place of the true
        count.  Every IEEE operation involved is correctly rounded and hence
        weakly monotone, so ``bound >= score`` holds *in floating point*
        with no slack -- and when a node actually attains the cap for every
        token the bound equals its score bit-for-bit, which lets the
        collector prune exact ties through the node-id tie-break (score
        distributions with saturated top ranks would otherwise never prune).
        """
        terms = self._bound_state
        if terms is None:
            terms = [
                (
                    self.token_weight(token),
                    self.statistics.idf(token),
                    self.statistics.max_occurrences(token),
                )
                for token in dict.fromkeys(self._query_tokens)
            ]
            self._bound_state = terms
        length = self.statistics.node_length(node_id)
        if length == 0:
            return 0.0
        unique_tokens = max(self.statistics.unique_token_count(node_id), 1)
        total = 0.0
        for weight, idf, max_occurrences in terms:
            capped = max_occurrences if max_occurrences < length else length
            if capped == 0:
                continue
            tf = capped / unique_tokens
            total += weight * tf * idf
        return total / (self._node_norm(node_id) * self._query_norm)

    # ------------------------------------------------ operator transformations
    def combine_join(
        self, left_score: float, right_score: float, left_size: int, right_size: int
    ) -> float:
        return left_score / max(right_size, 1) + right_score / max(left_size, 1)

    def combine_projection(self, scores: Sequence[float]) -> float:
        return float(sum(scores))

    def transform_selection(
        self,
        score: float,
        predicate: Predicate,
        positions: Sequence[Position],
        constants: Sequence[object],
    ) -> float:
        return score

    def combine_union(self, left_score: float, right_score: float) -> float:
        return left_score + right_score

    def combine_intersection(self, left_score: float, right_score: float) -> float:
        return min(left_score, right_score)

    def transform_difference(self, left_score: float) -> float:
        return left_score

    # ------------------------------------------------------------- internals
    def _node_norm(self, node_id: int) -> float:
        norm = self._node_norms.get(node_id)
        if norm is None:
            norm = self.statistics.node_l2_norm(node_id) or 1.0
            self._node_norms[node_id] = norm
        return norm


register_model("tfidf", TfIdfScoring)
register_model("tf-idf", TfIdfScoring)
