"""``repro.telemetry``: metrics, tracing, EXPLAIN ANALYZE and slow-query logs.

The cross-cutting observability layer of the serving stack:

* :mod:`repro.telemetry.registry` -- a process-wide metrics registry
  (counters with lock-free per-thread shards, gauges, histograms) rendered
  in Prometheus text format by ``GET /metrics`` and ``repro metrics``;
* :mod:`repro.telemetry.instruments` -- the catalogue of every metric
  family the query, cache, WAL, compaction, scatter and HTTP planes record;
* :mod:`repro.telemetry.trace` -- ``Trace``/``Span`` trees with monotonic
  timings and per-request trace ids (``None`` when disabled: the off path
  is a single pointer test);
* :mod:`repro.telemetry.explain` -- EXPLAIN ANALYZE payload assembly and
  rendering, built on the paper's own ``CursorStats`` counters;
* :mod:`repro.telemetry.slowlog` -- threshold-triggered JSONL trace dumps;
* :mod:`repro.telemetry.latency` -- the bounded-window
  :class:`LatencyRecorder` shared by every serving surface (moved here from
  ``repro.server.metrics``, which remains as a deprecation shim).
"""

from repro.telemetry.latency import (
    DEFAULT_WINDOW,
    LatencyRecorder,
    format_latency_summary,
    percentile,
)
from repro.telemetry.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_metrics,
    set_enabled,
)
from repro.telemetry.logs import (
    ReopenableLog,
    install_sighup_reopen,
    reopen_all,
)
from repro.telemetry.trace import Span, Trace, new_trace_id
from repro.telemetry.explain import render_explain
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry import instruments

__all__ = [
    "DEFAULT_WINDOW",
    "LatencyRecorder",
    "format_latency_summary",
    "percentile",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "render_metrics",
    "set_enabled",
    "ReopenableLog",
    "install_sighup_reopen",
    "reopen_all",
    "Span",
    "Trace",
    "new_trace_id",
    "render_explain",
    "SlowQueryLog",
    "instruments",
]
