"""Threshold-triggered slow-query log: one JSONL trace dump per offender.

When a search exceeds the configured threshold, the server writes one JSON
object per line -- the joinable essentials (``ts``, ``trace_id``, query
text, status, latency) plus the **full span tree** of the request, so "why
was this query slow?" is answered from the log alone: which shard lagged,
whether the time went to queue wait, evaluation or cache bypass.

Format (one object per line)::

    {"ts": <unix seconds>, "trace_id": "...", "query": "...",
     "latency_ms": 12.3, "threshold_ms": 5.0, "status": 200,
     "trace": {"name": "request", "duration_ms": ..., "children": [...]}}

Writing is serialised by a lock (several connections can finish slow
requests concurrently) and never raises into the serving path: a broken log
stream drops the dump, not the response.
"""

from __future__ import annotations

import json
import threading
import time

from repro.telemetry.instruments import SLOW_QUERIES_TOTAL
from repro.telemetry.trace import Span


class SlowQueryLog:
    """Write JSONL trace dumps for requests slower than ``threshold_ms``."""

    def __init__(self, stream, threshold_ms: float) -> None:
        if threshold_ms <= 0:
            raise ValueError(f"threshold_ms must be > 0, got {threshold_ms}")
        self.stream = stream
        self.threshold_ms = threshold_ms
        self._lock = threading.Lock()
        self.recorded = 0

    def maybe_record(
        self,
        latency_ms: float,
        *,
        query: str,
        trace: "Span | None" = None,
        status: int | None = None,
        trace_id: str | None = None,
        plan: dict | None = None,
    ) -> bool:
        """Dump the request if it breached the threshold; True if written.

        ``plan`` is the query's physical-plan provenance payload
        (:meth:`~repro.planner.physical.PhysicalPlan.describe`): a slow
        query's log line then answers "what did the optimizer choose?"
        without re-running it.
        """
        if latency_ms < self.threshold_ms:
            return False
        SLOW_QUERIES_TOTAL.inc()
        entry: dict = {
            "ts": time.time(),
            "trace_id": trace_id
            or (getattr(trace, "trace_id", None) if trace is not None else None),
            "query": query,
            "latency_ms": round(latency_ms, 3),
            "threshold_ms": self.threshold_ms,
        }
        if status is not None:
            entry["status"] = status
        if plan is not None:
            entry["plan"] = plan
        if trace is not None:
            entry["trace"] = trace.to_dict()
        line = json.dumps(entry, ensure_ascii=False)
        try:
            with self._lock:
                print(line, file=self.stream, flush=True)
                self.recorded += 1
        except (OSError, ValueError):  # a closed/broken log never fails a request
            return False
        return True
