"""The metric catalogue: every family the serving stack records.

All instruments live here, in one place, so importing :mod:`repro.telemetry`
is enough to make every family appear in ``GET /metrics`` (at zero) before
the first event, and so the README's metrics catalogue has a single source
of truth to mirror.

Hot-path discipline: nothing in this module is called per cursor operation.
Cursor-op counters are accumulated by the existing
:class:`~repro.index.cursor.CursorStats` machinery at Python-int speed and
folded into ``repro_cursor_ops_total`` **once per query**
(:func:`observe_query`); the per-op hot loops stay untouched.
"""

from __future__ import annotations

from repro.telemetry.registry import REGISTRY

# ------------------------------------------------------------------ queries
QUERIES_TOTAL = REGISTRY.counter(
    "repro_queries_total",
    "Queries evaluated, by the engine that ran them.",
    ("engine",),
)
QUERY_SECONDS = REGISTRY.histogram(
    "repro_query_seconds",
    "Wall-clock seconds per query evaluation (executor level).",
)
CURSOR_OPS_TOTAL = REGISTRY.counter(
    "repro_cursor_ops_total",
    "Inverted-list cursor operations, by operation kind.",
    ("op",),
)
TOPK_SCORED_TOTAL = REGISTRY.counter(
    "repro_topk_scored_total",
    "Candidates fully scored by the top-k collector.",
)
TOPK_PRUNED_TOTAL = REGISTRY.counter(
    "repro_topk_pruned_total",
    "Candidates skipped by the top-k score upper-bound test.",
)
TOPK_GIVEUPS_TOTAL = REGISTRY.counter(
    "repro_topk_giveups_total",
    "Queries where the top-k bound check disabled itself as fruitless.",
)
PLANS_TOTAL = REGISTRY.counter(
    "repro_plans_total",
    "Physical plans used per query, by provenance: freshly cost-optimized, "
    "static (optimizer deferring to builtin heuristics), or served from the "
    "planner's memo.",
    ("source",),
)

# -------------------------------------------------------------------- cache
CACHE_LOOKUPS_TOTAL = REGISTRY.counter(
    "repro_cache_lookups_total",
    "Query-cache lookups, by outcome.",
    ("result",),
)
CACHE_EVICTIONS_TOTAL = REGISTRY.counter(
    "repro_cache_evictions_total",
    "Query-cache entries evicted by LRU pressure.",
)
CACHE_INVALIDATIONS_TOTAL = REGISTRY.counter(
    "repro_cache_invalidations_total",
    "Wholesale query-cache invalidations after index mutations.",
)

# ------------------------------------------------------------ write planes
WAL_APPENDS_TOTAL = REGISTRY.counter(
    "repro_wal_appends_total",
    "Records appended to any write-ahead log.",
)
WAL_FSYNCS_TOTAL = REGISTRY.counter(
    "repro_wal_fsyncs_total",
    "fsync batches forced on any write-ahead log.",
)
MEMTABLE_SEALS_TOTAL = REGISTRY.counter(
    "repro_memtable_seals_total",
    "Memtables sealed into immutable segments.",
)
COMPACTIONS_TOTAL = REGISTRY.counter(
    "repro_compactions_total",
    "Segment compaction merges completed.",
)
COMPACTION_SECONDS = REGISTRY.histogram(
    "repro_compaction_seconds",
    "Wall-clock seconds per compaction merge.",
)
COMPACTION_SEGMENTS_MERGED_TOTAL = REGISTRY.counter(
    "repro_compaction_segments_merged_total",
    "Source segments consumed by compaction merges.",
)

# ------------------------------------------------------------------ scatter
SCATTER_TASKS_TOTAL = REGISTRY.counter(
    "repro_scatter_tasks_total",
    "Per-shard scatter tasks dispatched, by worker flavour.",
    ("workers",),
)
SPOOL_RESPILLS_TOTAL = REGISTRY.counter(
    "repro_spool_respills_total",
    "Process-scatter spool (re)spills of the shard set to packed files.",
)

# ------------------------------------------------------------------- gauges
# Live-tier and server state.  Every gauge is updated with **deltas**
# (``inc``/``dec`` by the exact amount that changed), never absolute
# ``set()``: several instances of a component may coexist in one process
# (one WAL and one segment manager per live shard, one query cache per
# executor), and deltas make their contributions sum correctly.  Components
# that recompute a derived quantity (segments per tier, compaction backlog,
# spool bytes) keep a per-instance record of what they last reported and
# apply ``new - reported`` so the family always equals the sum over open
# instances.  Instance teardown (WAL close, executor close) withdraws its
# contribution.
WAL_BYTES = REGISTRY.gauge(
    "repro_wal_bytes",
    "Bytes currently held by open write-ahead logs.",
)
WAL_PENDING_RECORDS = REGISTRY.gauge(
    "repro_wal_pending_records",
    "WAL records appended since the last fsync batch, across open WALs.",
)
MEMTABLE_DOCS = REGISTRY.gauge(
    "repro_memtable_docs",
    "Live documents buffered in mutable memtables (not yet sealed).",
)
SEGMENTS = REGISTRY.gauge(
    "repro_segments",
    "Sealed segments currently live, by compaction tier.",
    ("tier",),
)
COMPACTION_BACKLOG = REGISTRY.gauge(
    "repro_compaction_backlog",
    "Tiers currently holding enough segments to trigger a compaction merge.",
)
QUERY_CACHE_ENTRIES = REGISTRY.gauge(
    "repro_query_cache_entries",
    "Entries resident in query result caches.",
)
QUERY_CACHE_CAPACITY = REGISTRY.gauge(
    "repro_query_cache_capacity",
    "Total entry capacity of open query result caches.",
)
SPOOL_BYTES = REGISTRY.gauge(
    "repro_spool_bytes",
    "Bytes of packed shard files in process-scatter spool directories.",
)
HTTP_INFLIGHT_REQUESTS = REGISTRY.gauge(
    "repro_http_inflight_requests",
    "HTTP requests currently being handled by the server.",
)

#: The gauge families surfaced in the ``/stats`` payload, name -> Gauge.
GAUGES = {
    gauge.name: gauge
    for gauge in (
        WAL_BYTES,
        WAL_PENDING_RECORDS,
        MEMTABLE_DOCS,
        SEGMENTS,
        COMPACTION_BACKLOG,
        QUERY_CACHE_ENTRIES,
        QUERY_CACHE_CAPACITY,
        SPOOL_BYTES,
        HTTP_INFLIGHT_REQUESTS,
    )
}


def gauge_snapshot() -> dict:
    """Current value of every gauge family, JSON-shaped for ``/stats``.

    Unlabelled families map to a number; labelled families map to a dict of
    ``label=value`` keys (e.g. ``{"tier=0": 3.0}``).
    """
    snapshot: dict = {}
    for name, gauge in GAUGES.items():
        if not gauge.labelnames:
            snapshot[name] = gauge.value()
            continue
        children: dict = {}
        for key, child in gauge._sorted_children():
            label = ",".join(
                f"{label_name}={value}"
                for label_name, value in zip(gauge.labelnames, key)
            )
            children[label] = child.value()
        snapshot[name] = children
    return snapshot


# --------------------------------------------------------------------- http
HTTP_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by route and status code.",
    ("path", "status"),
)
HTTP_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds",
    "Wall-clock seconds per HTTP request, by route.",
    ("path",),
)
SLOW_QUERIES_TOTAL = REGISTRY.counter(
    "repro_slow_queries_total",
    "Searches that exceeded the slow-query threshold.",
)

#: Routes allowed as ``path`` label values; anything else collapses to
#: "other" so unknown paths cannot explode label cardinality.
_KNOWN_PATHS = frozenset(("/search", "/health", "/stats", "/metrics"))


def http_path_label(path: str) -> str:
    """Collapse arbitrary request paths onto a bounded label set."""
    return path if path in _KNOWN_PATHS else "other"


def observe_query(engine_name, elapsed_seconds, cursor_stats, collector):
    """Fold one query's counters into the registry (called once per query)."""
    if not REGISTRY.enabled:
        return
    QUERIES_TOTAL.labels(engine_name).inc()
    QUERY_SECONDS.observe(elapsed_seconds)
    if cursor_stats is not None:
        if cursor_stats.next_entry_calls:
            CURSOR_OPS_TOTAL.labels("next_entry").inc(
                cursor_stats.next_entry_calls
            )
        if cursor_stats.get_positions_calls:
            CURSOR_OPS_TOTAL.labels("get_positions").inc(
                cursor_stats.get_positions_calls
            )
        if cursor_stats.positions_returned:
            CURSOR_OPS_TOTAL.labels("positions_returned").inc(
                cursor_stats.positions_returned
            )
        if cursor_stats.seek_calls:
            CURSOR_OPS_TOTAL.labels("seek").inc(cursor_stats.seek_calls)
        if cursor_stats.seek_probes:
            CURSOR_OPS_TOTAL.labels("seek_probe").inc(cursor_stats.seek_probes)
    if collector is not None:
        if collector.scored:
            TOPK_SCORED_TOTAL.inc(collector.scored)
        if collector.pruned:
            TOPK_PRUNED_TOTAL.inc(collector.pruned)
        if collector.gave_up:
            TOPK_GIVEUPS_TOTAL.inc()
