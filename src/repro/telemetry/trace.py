"""Structured tracing: monotonic span trees with a per-request trace id.

A :class:`Trace` is the root :class:`Span` of one request; spans nest into a
tree and each records ``time.perf_counter()`` start/end stamps, so span
durations are monotonic and immune to wall-clock jumps.  The wall-clock
timestamp lives only on the root (for log correlation).

**Zero cost when disabled.**  There is no "disabled recorder" object to
allocate: code paths take ``trace: Span | None`` and guard with
``if trace is not None`` -- the disabled path is a single ``is None`` test,
no allocation, no call.  The benchmark guardrail
(``benchmarks/bench_telemetry.py``) pins that property.

**Thread-safety.**  Scatter workers append child spans to a shared parent
from several threads; ``list.append`` is atomic under the GIL, and each
child span is only ever mutated by the thread that created it, so the tree
assembles safely without locks.  Process-pool shards cannot share the
parent's objects -- the parent records one span per shard around the
future's lifetime instead.
"""

from __future__ import annotations

import random
import time


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, collision-negligible)."""
    return f"{random.getrandbits(64):016x}"


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "started", "ended", "meta", "children")

    def __init__(self, name: str, **meta) -> None:
        self.name = name
        self.started = time.perf_counter()
        self.ended: float | None = None
        self.meta = meta or None
        self.children: list[Span] = []

    # ----------------------------------------------------------------- build
    def span(self, name: str, **meta) -> "Span":
        """Start a child span now (attach is atomic; see module docstring)."""
        child = Span(name, **meta)
        self.children.append(child)
        return child

    def end(self) -> "Span":
        """Close the span (idempotent: the first end wins)."""
        if self.ended is None:
            self.ended = time.perf_counter()
        return self

    def annotate(self, **meta) -> None:
        """Attach key/value metadata to the span."""
        if self.meta is None:
            self.meta = {}
        self.meta.update(meta)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()

    # ---------------------------------------------------------------- export
    @property
    def duration_ms(self) -> float:
        """Elapsed milliseconds (up to now if the span is still open)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return (end - self.started) * 1000.0

    def to_dict(self) -> dict:
        """A JSON-ready tree of ``{name, duration_ms, meta?, children?}``."""
        node: dict = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.meta:
            node["meta"] = dict(self.meta)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node


class Trace(Span):
    """The root span of one request, carrying the trace id.

    The trace id doubles as the request id on the HTTP path: accepted from
    an ``X-Request-Id`` header or generated, then stamped into the access
    log, the response payload and any slow-query dump, so client and server
    logs join on one key.
    """

    __slots__ = ("trace_id", "wall_time")

    def __init__(self, trace_id: str | None = None, name: str = "request", **meta) -> None:
        super().__init__(name, **meta)
        self.trace_id = trace_id or new_trace_id()
        self.wall_time = time.time()

    def to_dict(self) -> dict:
        node = super().to_dict()
        node["trace_id"] = self.trace_id
        node["ts"] = self.wall_time
        return node
