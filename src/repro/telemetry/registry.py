"""A process-wide metrics registry with Prometheus text exposition.

The registry implements the three Prometheus metric kinds the serving stack
needs -- :class:`Counter`, :class:`Gauge` and :class:`Histogram` -- with one
deliberate asymmetry: counters sit on query hot paths (one increment per
query, per cache lookup, per WAL append), so their cells are **per-thread
shards**.  Each incrementing thread writes only its own slot of a plain
dict keyed by thread id; under the GIL a single-writer dict store is atomic,
so increments take no lock at all, and a scrape sums the shards.  Every
shard is monotonically non-decreasing, hence so is the scraped sum --
the property the concurrency tests pin while scatter threads, process-pool
feeders and the background compactor all increment simultaneously.

Gauges and histograms are locked: they are touched per request or per
background event, never per cursor operation, so a ``threading.Lock`` is
cheap and keeps bucket counts and sums internally consistent.

A registry can be disabled wholesale (:meth:`MetricsRegistry.set_enabled`);
a disabled registry turns every ``inc``/``observe``/``set`` into an early
return, which is what the telemetry overhead benchmark measures against.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Sequence

#: Default histogram bucket bounds, in seconds (tuned for query latencies
#: from tens of microseconds to tens of seconds).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_INF = float("inf")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == _INF:
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Common child-cell management for every metric kind."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._children: dict[tuple, object] = {}
        self._children_lock = threading.Lock()
        if not self.labelnames:
            # Pre-create the single unlabelled child so hot paths can hold
            # direct references and scrapes always show the family at zero.
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    # --------------------------------------------------------------- labels
    def labels(self, *values) -> object:
        """The child cell for one label-value combination (created lazily)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._children_lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def _enabled(self) -> bool:
        registry = self._registry
        return registry is None or registry.enabled

    # --------------------------------------------------------------- scrape
    def _sorted_children(self) -> "list[tuple[tuple, object]]":
        with self._children_lock:
            items = list(self._children.items())
        return sorted(items, key=lambda item: item[0])

    def render(self) -> "list[str]":  # pragma: no cover - overridden
        raise NotImplementedError

    def _header(self) -> "list[str]":
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class _CounterChild:
    """One label combination of a counter; per-thread shard cells."""

    __slots__ = ("_metric", "_shards")

    def __init__(self, metric: "Counter") -> None:
        self._metric = metric
        self._shards: dict[int, float] = {}

    def inc(self, amount: float = 1.0) -> None:
        if not self._metric._enabled():
            return
        shards = self._shards
        tid = threading.get_ident()
        shards[tid] = shards.get(tid, 0.0) + amount

    def value(self) -> float:
        # Lock-free sum; retry if a brand-new thread inserts its shard key
        # mid-iteration (rare: once per thread per counter).
        while True:
            try:
                return sum(self._shards.values())
            except RuntimeError:
                continue


class Counter(_Metric):
    """A monotonically non-decreasing count, sharded per incrementing thread."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self)

    def inc(self, amount: float = 1.0) -> None:
        if self._default is None:
            raise ValueError(f"{self.name} is labelled; use .labels(...).inc()")
        self._default.inc(amount)

    def value(self, *label_values) -> float:
        if not label_values and self._default is not None:
            return self._default.value()
        return self.labels(*label_values).value()

    def render(self) -> "list[str]":
        lines = self._header()
        for key, child in self._sorted_children():
            labels = _render_labels(self.labelnames, key)
            lines.append(
                f"{self.name}{labels} {_format_value(child.value())}"
            )
        return lines


class _GaugeChild:
    __slots__ = ("_metric", "_value", "_lock")

    def __init__(self, metric: "Gauge") -> None:
        self._metric = metric
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not self._metric._enabled():
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._metric._enabled():
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A value that can go up and down (queue depths, spool bytes, ...)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self)

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def value(self, *label_values) -> float:
        if not label_values and self._default is not None:
            return self._default.value()
        return self.labels(*label_values).value()

    def render(self) -> "list[str]":
        lines = self._header()
        for key, child in self._sorted_children():
            labels = _render_labels(self.labelnames, key)
            lines.append(
                f"{self.name}{labels} {_format_value(child.value())}"
            )
        return lines


class _HistogramChild:
    __slots__ = ("_metric", "_counts", "_sum", "_total", "_lock")

    def __init__(self, metric: "Histogram") -> None:
        self._metric = metric
        self._counts = [0] * (len(metric.buckets) + 1)  # +Inf bucket last
        self._sum = 0.0
        self._total = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not self._metric._enabled():
            return
        index = bisect_left(self._metric.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._total += 1

    def snapshot(self) -> "tuple[list[int], float, int]":
        with self._lock:
            return list(self._counts), self._sum, self._total

    def count(self) -> int:
        with self._lock:
            return self._total

    def sum(self) -> float:
        with self._lock:
            return self._sum


class Histogram(_Metric):
    """Cumulative-bucket distribution of observed values (e.g. latencies)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.buckets = tuple(sorted(buckets))
        super().__init__(name, help_text, labelnames, registry)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self)

    def observe(self, value: float) -> None:
        if self._default is None:
            raise ValueError(
                f"{self.name} is labelled; use .labels(...).observe()"
            )
        self._default.observe(value)

    def count(self, *label_values) -> int:
        if not label_values and self._default is not None:
            return self._default.count()
        return self.labels(*label_values).count()

    def render(self) -> "list[str]":
        lines = self._header()
        for key, child in self._sorted_children():
            counts, total_sum, total = child.snapshot()
            cumulative = 0
            for bound, count in zip(self.buckets + (_INF,), counts):
                cumulative += count
                le = _render_labels(
                    self.labelnames + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{le} {cumulative}")
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{labels} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{labels} {total}")
        return lines


class MetricsRegistry:
    """Owns metric families by name; renders the Prometheus text exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()
        self.enabled = True

    # ------------------------------------------------------------- creation
    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = Histogram(
                name, help_text, labelnames, buckets, registry=self
            )
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, cls, name, help_text, labelnames):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, registry=self)
            self._metrics[name] = metric
            return metric

    # -------------------------------------------------------------- control
    def set_enabled(self, enabled: bool) -> None:
        """Globally enable/disable recording (scrapes keep working)."""
        self.enabled = bool(enabled)

    def get(self, name: str) -> "_Metric | None":
        with self._lock:
            return self._metrics.get(name)

    # --------------------------------------------------------------- scrape
    def render(self) -> str:
        """The full Prometheus text exposition (families in name order)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


#: The process-wide default registry every instrument records into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return REGISTRY


def set_enabled(enabled: bool) -> None:
    """Enable/disable recording on the default registry (the kill switch)."""
    REGISTRY.set_enabled(enabled)


def render_metrics() -> str:
    """Prometheus text exposition of the default registry."""
    return REGISTRY.render()
