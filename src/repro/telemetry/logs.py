"""Reopenable JSONL log files: logrotate-friendly access/slow-query sinks.

The access log and the slow-query log both emit one JSON object per line
with an explicit ``flush`` after every write, so a crash never loses an
acknowledged line and a ``tail -f`` always sees current traffic.  That
covers half of what logrotate needs; the other half is the *reopen*: after
rotation the old inode keeps receiving writes unless the process reopens
its path.  :class:`ReopenableLog` implements the standard contract --
``kill -HUP`` makes every registered log close its handle and reopen the
configured path, which by then points at the fresh post-rotation file.

The class quacks like a text stream (``write``/``flush``) so it drops into
every ``print(line, file=log, flush=True)`` call site unchanged.
"""

from __future__ import annotations

import signal
import threading
from pathlib import Path

#: Every live ReopenableLog, so one SIGHUP reopens all of them.
_OPEN_LOGS: "list[ReopenableLog]" = []
_OPEN_LOGS_LOCK = threading.Lock()


class ReopenableLog:
    """An append-mode text file that can be reopened in place (for SIGHUP).

    Writes are serialised by a lock: the asyncio server emits from the event
    loop while a SIGHUP may reopen from the main thread, and a line must
    never straddle the old and new file.
    """

    def __init__(self, path: str) -> None:
        self.path = str(Path(path))
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        with _OPEN_LOGS_LOCK:
            _OPEN_LOGS.append(self)

    # ------------------------------------------------------- stream protocol
    def write(self, text: str) -> int:
        with self._lock:
            return self._handle.write(text)

    def flush(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()

    # ------------------------------------------------------------- rotation
    def reopen(self) -> None:
        """Close and reopen the configured path (called on SIGHUP)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()
            self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()
        with _OPEN_LOGS_LOCK:
            if self in _OPEN_LOGS:
                _OPEN_LOGS.remove(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ReopenableLog(path={self.path!r})"


def reopen_all() -> int:
    """Reopen every registered log; returns how many were reopened."""
    with _OPEN_LOGS_LOCK:
        logs = list(_OPEN_LOGS)
    for log in logs:
        log.reopen()
    return len(logs)


def install_sighup_reopen() -> bool:
    """Route SIGHUP to :func:`reopen_all` (no-op where SIGHUP is missing).

    Returns True when the handler was installed.  Must be called from the
    main thread (a CPython ``signal`` requirement); the CLI does this once
    before starting the server.
    """
    if not hasattr(signal, "SIGHUP"):  # pragma: no cover - Windows
        return False
    try:
        signal.signal(signal.SIGHUP, lambda signum, frame: reopen_all())
    except ValueError:  # pragma: no cover - not the main thread
        return False
    return True
