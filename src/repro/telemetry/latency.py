"""Latency accounting shared by every serving surface.

Moved here from ``repro.server.metrics`` (which remains as a deprecation
shim): percentile windows are telemetry, not an HTTP-server detail, and the
stdin REPL (``repro serve``), the HTTP service (``repro serve-http``) and
the benchmark harness all report through the same arithmetic.

Two conventions, inherited from the REPL and now binding for every user:

* Percentiles come from a **bounded window** of the most recent requests
  (:data:`DEFAULT_WINDOW`), so a long-running server neither grows nor
  re-sorts an unbounded list; the mean and the count cover *every* request
  ever recorded.
* :func:`percentile` is the nearest-rank variant the REPL has always
  printed: ``sorted_values[min(len - 1, int(fraction * len))]`` -- no
  interpolation.  An **empty window yields ``None``** (and ``/stats``
  renders ``null``): before the first request there is no latency to
  report, and ``0.0`` read as "we answered in zero milliseconds".
"""

from __future__ import annotations

import threading
from collections import deque

#: Recent-request window backing the percentile estimates.
DEFAULT_WINDOW = 10_000


def percentile(sorted_values, fraction: float) -> "float | None":
    """Nearest-rank percentile of an already-sorted sequence (None if empty)."""
    if not sorted_values:
        return None
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


class LatencyRecorder:
    """Bounded-window latency statistics for one endpoint or serving loop.

    Thread-safe: the HTTP server records from the event-loop thread while
    ``/stats`` snapshots may be rendered from the engine worker thread, and
    the benchmark harness records from many client threads.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._recent: "deque[float]" = deque(maxlen=window)
        self._count = 0
        self._total_ms = 0.0
        self._lock = threading.Lock()

    def record(self, latency_ms: float) -> None:
        """Record one request's wall-clock latency in milliseconds."""
        with self._lock:
            self._recent.append(latency_ms)
            self._count += 1
            self._total_ms += latency_ms

    @property
    def count(self) -> int:
        """Requests recorded over the recorder's lifetime (not the window)."""
        return self._count

    def mean_ms(self) -> float:
        """Lifetime mean latency in milliseconds (0.0 before any request)."""
        with self._lock:
            return self._total_ms / self._count if self._count else 0.0

    def percentile_ms(self, fraction: float) -> "float | None":
        """Nearest-rank percentile over the recent window (None when empty)."""
        with self._lock:
            ordered = sorted(self._recent)
        return percentile(ordered, fraction)

    def snapshot(self) -> "dict[str, float | None]":
        """The stats dictionary every serving surface reports.

        One sort serves all three percentiles; ``count``/``mean_ms`` are
        lifetime figures while p50/p95/p99 describe the recent window
        (``None`` -- JSON ``null`` -- before the first request).
        """
        with self._lock:
            ordered = sorted(self._recent)
            count = self._count
            total = self._total_ms
        return {
            "count": count,
            "mean_ms": total / count if count else 0.0,
            "p50_ms": percentile(ordered, 0.50),
            "p95_ms": percentile(ordered, 0.95),
            "p99_ms": percentile(ordered, 0.99),
        }


def _fmt_ms(value: "float | None") -> str:
    return "n/a" if value is None else f"{value:.2f} ms"


def format_latency_summary(snapshot: "dict[str, float | None]") -> str:
    """Render a snapshot the way ``repro serve`` prints its summary line."""
    return (
        f"mean={_fmt_ms(snapshot['mean_ms'])} "
        f"p50={_fmt_ms(snapshot['p50_ms'])} "
        f"p95={_fmt_ms(snapshot['p95_ms'])}"
    )
