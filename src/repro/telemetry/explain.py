"""EXPLAIN ANALYZE payloads: build and render per-operator trees.

The paper's evaluation methodology *is* cursor-op counting -- fig3-fig8 plot
``next_entry`` / ``get_positions`` charges per query.  This module turns
that methodology into a runtime surface: after an instrumented execution,
the executor harvests each cursor it opened (one cursor per query token is
one operator leaf) and this module assembles the JSON payload that
``engine.search(..., explain=True)`` attaches to the result metadata, the
HTTP API returns under ``"explain"``, and ``repro explain`` renders as a
tree.

Contract (pinned by ``tests/telemetry/test_explain.py``): the sum of the
per-operator counts equals the result's ``CursorStats`` delta exactly, and
an explained search returns results bit-identical to ``explain=False`` --
explain *observes* the execution, it never changes it.
"""

from __future__ import annotations

from repro.index.cursor import CursorFactory, CursorStats

#: Count keys rendered for each operator, in display order.
COUNT_KEYS = (
    "next_entry_calls",
    "get_positions_calls",
    "positions_returned",
    "seek_calls",
    "seek_probes",
)

#: Short column names used by the tree renderer.
_SHORT = {
    "next_entry_calls": "next",
    "get_positions_calls": "get_pos",
    "positions_returned": "positions",
    "seek_calls": "seek",
    "seek_probes": "probes",
}


def cursor_breakdown(factory: CursorFactory) -> "list[dict]":
    """One operator row per cursor the factory opened for this query.

    Must run *before* ``factory.checkpoint()`` folds the cursors away.  A
    multi-segment cursor (live index) reports how many segment parts it
    merged; its parts share one stats object, so the row's counts already
    cover every part.
    """
    rows = []
    for cursor in factory._open_cursors:
        parts = getattr(cursor, "_parts", None)
        rows.append(
            {
                "operator": type(cursor).__name__,
                "token": cursor.token,
                "segments": len(parts) if parts is not None else 1,
                "counts": cursor.stats.as_extended_dict(),
            }
        )
    return rows


def sum_counts(operators: "list[dict]") -> CursorStats:
    """Fold operator rows back into one :class:`CursorStats` total."""
    total = CursorStats()
    for row in operators:
        counts = row["counts"]
        total.next_entry_calls += counts.get("next_entry_calls", 0)
        total.get_positions_calls += counts.get("get_positions_calls", 0)
        total.positions_returned += counts.get("positions_returned", 0)
        total.seek_calls += counts.get("seek_calls", 0)
        total.seek_probes += counts.get("seek_probes", 0)
    return total


def build_explain(
    *,
    query_text: str,
    language_class: str,
    engine: str,
    access_mode: str,
    elapsed_seconds: float,
    rows_produced: int,
    operators: "list[dict]",
    top_k: "dict | None" = None,
    note: "str | None" = None,
    plan: "dict | None" = None,
) -> dict:
    """The per-execution explain payload (one single-index evaluation).

    ``plan`` is a physical plan's
    :meth:`~repro.planner.physical.PhysicalPlan.describe` payload; when
    given, each operator row whose token the cost model estimated gains an
    ``estimated_ops`` field next to its observed counts, so the rendered
    tree shows estimate vs observation per operator.
    """
    if plan is not None:
        operators = annotate_estimates(operators, plan)
    payload = {
        "operator": "execute",
        "query": query_text,
        "language_class": language_class,
        "engine": engine,
        "access_mode": access_mode,
        "elapsed_ms": elapsed_seconds * 1000.0,
        "rows_produced": rows_produced,
        "cursor_totals": sum_counts(operators).as_extended_dict(),
        "operators": operators,
    }
    if top_k is not None:
        payload["top_k"] = top_k
    if note is not None:
        payload["note"] = note
    if plan is not None:
        payload["plan"] = plan
    return payload


def observed_ops(counts: dict) -> int:
    """The single observed op number compared against an estimate.

    Sums the op kinds the cost model prices (entry steps, position reads,
    seeks, probes) -- the same recipe as the executor's feedback harvest, so
    EXPLAIN and the feedback loop agree on what "observed cost" means.
    """
    return (
        counts.get("next_entry_calls", 0)
        + counts.get("get_positions_calls", 0)
        + counts.get("seek_calls", 0)
        + counts.get("seek_probes", 0)
    )


def annotate_estimates(operators: "list[dict]", plan: dict) -> "list[dict]":
    """Copy operator rows, attaching the plan's per-token estimated ops."""
    estimates = {
        entry["token"]: entry for entry in plan.get("tokens", [])
    }
    annotated = []
    for row in operators:
        row = dict(row)
        estimate = estimates.get(row.get("token"))
        if estimate is not None:
            row["estimated_ops"] = estimate["estimated_ops"]
            row["planned_role"] = estimate["role"]
        row["observed_ops"] = observed_ops(row.get("counts", {}))
        annotated.append(row)
    return annotated


def build_scatter_explain(
    *,
    query_text: str,
    language_class: str,
    engine: str,
    access_mode: str,
    elapsed_seconds: float,
    rows_produced: int,
    shard_payloads: "list[dict]",
    workers: str,
    cache: str,
    top_k: "dict | None" = None,
    plan: "dict | None" = None,
) -> dict:
    """The cluster-level explain payload wrapping per-shard subtrees."""
    totals = CursorStats()
    for shard in shard_payloads:
        totals.merge(sum_counts(shard.get("operators", [])))
    payload = {
        "operator": "scatter",
        "query": query_text,
        "language_class": language_class,
        "engine": engine,
        "access_mode": access_mode,
        "workers": workers,
        "cache": cache,
        "elapsed_ms": elapsed_seconds * 1000.0,
        "rows_produced": rows_produced,
        "shard_count": len(shard_payloads),
        "cursor_totals": totals.as_extended_dict(),
        "shards": shard_payloads,
    }
    if top_k is not None:
        payload["top_k"] = top_k
    if plan is not None:
        payload["plan"] = plan
    return payload


# --------------------------------------------------------------- rendering
def _counts_line(counts: dict) -> str:
    return " ".join(
        f"{_SHORT[key]}={counts.get(key, 0)}" for key in COUNT_KEYS
    )


def _render_operators(operators: "list[dict]", indent: str) -> "list[str]":
    lines = []
    for position, row in enumerate(operators):
        connector = "└─" if position == len(operators) - 1 else "├─"
        segments = row.get("segments", 1)
        seg = f" segments={segments}" if segments != 1 else ""
        cost = ""
        if "estimated_ops" in row:
            cost = (
                f" cost[est={row['estimated_ops']:g} "
                f"obs={row.get('observed_ops', 0)} "
                f"role={row.get('planned_role', '?')}]"
            )
        lines.append(
            f"{indent}{connector} {row['operator']} "
            f"token={row['token']!r}{seg} {_counts_line(row['counts'])}{cost}"
        )
    if not operators:
        lines.append(f"{indent}└─ (no instrumented cursors)")
    return lines


def _render_plan(plan: "dict | None") -> "list[str]":
    if plan is None:
        return []
    line = (
        f"plan: provenance={plan.get('provenance')} "
        f"optimizer={plan.get('optimizer')} "
        f"merge={plan.get('merge_strategy')} "
        f"bound={plan.get('bound_strategy')} "
        f"access_mode={plan.get('access_mode')}"
    )
    if plan.get("join_order"):
        line += " join_order=" + " < ".join(plan["join_order"])
    if plan.get("estimated_cost") is not None:
        line += f" est_cost={plan['estimated_cost']:g}"
    return [line]


def _render_topk(top_k: "dict | None") -> "list[str]":
    if top_k is None:
        return []
    gave_up = "yes" if top_k.get("gave_up") else "no"
    return [
        f"top-k: k={top_k.get('k')} scored={top_k.get('scored')} "
        f"pruned={top_k.get('pruned')} gave_up={gave_up}"
    ]


def render_explain(payload: dict) -> str:
    """Render an explain payload as the tree ``repro explain`` prints."""
    lines: list[str] = []
    if payload.get("operator") == "scatter":
        lines.append(f"EXPLAIN ANALYZE {payload['query']}")
        lines.append(
            f"scatter shards={payload['shard_count']} "
            f"workers={payload['workers']} cache={payload['cache']} "
            f"engine={payload['engine']} class={payload['language_class']} "
            f"access_mode={payload['access_mode']} "
            f"elapsed={payload['elapsed_ms']:.3f} ms "
            f"rows={payload['rows_produced']}"
        )
        lines.extend(_render_plan(payload.get("plan")))
        lines.extend(_render_topk(payload.get("top_k")))
        lines.append(f"cursor totals: {_counts_line(payload['cursor_totals'])}")
        shards = payload["shards"]
        for position, shard in enumerate(shards):
            last = position == len(shards) - 1
            connector = "└─" if last else "├─"
            child_indent = "   " if last else "│  "
            lines.append(
                f"{connector} shard {position}: engine={shard['engine']} "
                f"elapsed={shard['elapsed_ms']:.3f} ms "
                f"rows={shard['rows_produced']} "
                f"{_counts_line(shard['cursor_totals'])}"
            )
            lines.extend(_render_operators(shard["operators"], child_indent))
        return "\n".join(lines)
    lines.append(f"EXPLAIN ANALYZE {payload['query']}")
    lines.append(
        f"engine={payload['engine']} class={payload['language_class']} "
        f"access_mode={payload['access_mode']} "
        f"elapsed={payload['elapsed_ms']:.3f} ms "
        f"rows={payload['rows_produced']}"
    )
    lines.extend(_render_plan(payload.get("plan")))
    lines.extend(_render_topk(payload.get("top_k")))
    if payload.get("note"):
        lines.append(f"note: {payload['note']}")
    lines.append(f"cursor totals: {_counts_line(payload['cursor_totals'])}")
    lines.extend(_render_operators(payload["operators"], ""))
    return "\n".join(lines)
