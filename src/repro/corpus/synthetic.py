"""Synthetic corpus generation.

The paper's experiments (Section 6) run on the INEX 2003 IEEE article
collection, which is not redistributable.  The evaluation, however, only
depends on the *shape* of the inverted lists: the number of context nodes
(``cnodes``), the number of entries per query-token inverted list
(``entries_per_token``), the number of positions per entry
(``pos_per_entry``) and the document length (``pos_per_cnode``).  This module
generates deterministic synthetic collections that expose exactly those
knobs, so the performance curves of Figures 5--8 can be regenerated.

Two generators are provided:

* :func:`generate_collection` -- the workhorse used by the benchmark harness.
  Background text is drawn from a Zipfian vocabulary (as in natural language);
  a set of *designated query tokens* is planted with a controlled document
  frequency and a controlled number of occurrences per document, so that the
  benchmark queries touch inverted lists of known size.
* :func:`generate_inex_like_collection` -- a convenience wrapper with defaults
  approximating the INEX collection shape scaled to laptop size (used as the
  default dataset of the figures).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import CorpusError


@dataclass(frozen=True)
class SyntheticSpec:
    """Specification of a synthetic collection.

    Parameters
    ----------
    num_nodes:
        Number of context nodes (``cnodes``).
    tokens_per_node:
        Length of each document in tokens (``pos_per_cnode``).
    vocabulary_size:
        Size of the background vocabulary; background tokens are named
        ``w0000``, ``w0001``, ... and drawn with a Zipfian distribution.
    zipf_exponent:
        Exponent of the Zipf distribution of the background vocabulary.
    query_tokens:
        Names of the designated query tokens to plant.
    query_token_document_frequency:
        Fraction (0, 1] of nodes that contain each designated query token
        (controls ``entries_per_token``).
    query_token_positions_per_entry:
        Number of occurrences of each designated query token in a node that
        contains it (controls ``pos_per_entry``).
    sentence_length / paragraph_length:
        Regular structural boundaries imposed on the token stream, so the
        ``samepara`` / ``samesentence`` predicates are meaningful.
    seed:
        Seed of the pseudo-random generator; the same spec always yields the
        same collection.
    """

    num_nodes: int = 1000
    tokens_per_node: int = 200
    vocabulary_size: int = 2000
    zipf_exponent: float = 1.1
    query_tokens: Sequence[str] = field(default_factory=tuple)
    query_token_document_frequency: float = 0.5
    query_token_positions_per_entry: int = 5
    sentence_length: int = 12
    paragraph_length: int = 60
    seed: int = 20060330  # EDBT 2006 conference date, for determinism only.

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise CorpusError("num_nodes must be positive")
        if self.tokens_per_node <= 0:
            raise CorpusError("tokens_per_node must be positive")
        if self.vocabulary_size <= 0:
            raise CorpusError("vocabulary_size must be positive")
        if not 0.0 < self.query_token_document_frequency <= 1.0:
            raise CorpusError("query_token_document_frequency must be in (0, 1]")
        if self.query_token_positions_per_entry < 1:
            raise CorpusError("query_token_positions_per_entry must be >= 1")
        planted = (
            self.query_token_positions_per_entry * max(len(self.query_tokens), 1)
        )
        if planted > self.tokens_per_node:
            raise CorpusError(
                "cannot plant "
                f"{planted} query-token occurrences in documents of "
                f"{self.tokens_per_node} tokens"
            )


DEFAULT_QUERY_TOKENS: tuple[str, ...] = (
    "usability",
    "software",
    "testing",
    "efficient",
    "interface",
    "evaluation",
    "database",
    "retrieval",
)


def _zipf_weights(size: int, exponent: float) -> list[float]:
    return [1.0 / (rank**exponent) for rank in range(1, size + 1)]


def generate_collection(spec: SyntheticSpec, name: str = "synthetic") -> Collection:
    """Generate a deterministic synthetic collection from ``spec``."""
    rng = random.Random(spec.seed)
    vocabulary = [f"w{idx:05d}" for idx in range(spec.vocabulary_size)]
    weights = _zipf_weights(spec.vocabulary_size, spec.zipf_exponent)

    nodes: list[ContextNode] = []
    for node_id in range(spec.num_nodes):
        tokens = rng.choices(vocabulary, weights=weights, k=spec.tokens_per_node)
        _plant_query_tokens(tokens, spec, rng)
        nodes.append(
            ContextNode.from_tokens(
                node_id,
                tokens,
                sentence_length=spec.sentence_length,
                paragraph_length=spec.paragraph_length,
            )
        )
    return Collection.from_nodes(nodes, name)


def _plant_query_tokens(
    tokens: list[str], spec: SyntheticSpec, rng: random.Random
) -> None:
    """Overwrite background tokens with designated query tokens in place.

    Each designated token is planted in a node with probability
    ``query_token_document_frequency``; when planted, it receives
    ``query_token_positions_per_entry`` occurrences at random distinct
    offsets.  Distinct query tokens use distinct offsets so one does not
    overwrite another.
    """
    if not spec.query_tokens:
        return
    available = list(range(len(tokens)))
    rng.shuffle(available)
    cursor = 0
    for query_token in spec.query_tokens:
        if rng.random() > spec.query_token_document_frequency:
            continue
        for _ in range(spec.query_token_positions_per_entry):
            if cursor >= len(available):
                return
            tokens[available[cursor]] = query_token
            cursor += 1


def generate_inex_like_collection(
    num_nodes: int = 6000,
    tokens_per_node: int = 200,
    pos_per_entry: int = 25,
    document_frequency: float = 0.6,
    query_tokens: Sequence[str] = DEFAULT_QUERY_TOKENS,
    seed: int = 20060330,
) -> Collection:
    """A collection approximating the INEX experiment defaults.

    The paper's defaults are 6000 context nodes and query tokens with at most
    25 positions per inverted-list entry; document length is scaled down from
    full IEEE articles so the whole experiment runs in seconds on a laptop
    while keeping the relative curve shapes.
    """
    planted = pos_per_entry * len(query_tokens)
    tokens_per_node = max(tokens_per_node, planted + 20)
    spec = SyntheticSpec(
        num_nodes=num_nodes,
        tokens_per_node=tokens_per_node,
        query_tokens=tuple(query_tokens),
        query_token_document_frequency=document_frequency,
        query_token_positions_per_entry=pos_per_entry,
        seed=seed,
    )
    return generate_collection(spec, name=f"inex-like-{num_nodes}")
