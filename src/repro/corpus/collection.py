"""Collections of context nodes (the search context).

A :class:`Collection` is the paper's ``N`` -- the set of context nodes over
which the full-text condition is evaluated.  It provides ordered access by
node id (the inverted-list substrate relies on ids being sortable), corpus
statistics used by scoring (document frequency, node count), and convenience
constructors from raw texts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.corpus.document import ContextNode
from repro.corpus.tokenizer import Tokenizer, default_tokenizer
from repro.exceptions import CorpusError


@dataclass
class Collection:
    """An ordered, id-addressable set of :class:`ContextNode` objects."""

    nodes: dict[int, ContextNode]
    name: str = "collection"

    # -------------------------------------------------------------- builders
    @classmethod
    def from_nodes(
        cls, nodes: Iterable[ContextNode], name: str = "collection"
    ) -> "Collection":
        """Build a collection from context nodes, checking id uniqueness."""
        mapping: dict[int, ContextNode] = {}
        for node in nodes:
            if node.node_id in mapping:
                raise CorpusError(f"duplicate node id {node.node_id}")
            mapping[node.node_id] = node
        return cls(mapping, name)

    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        tokenizer: Tokenizer | None = None,
        name: str = "collection",
        start_id: int = 0,
    ) -> "Collection":
        """Tokenize ``texts`` and build a collection with consecutive ids."""
        tokenizer = tokenizer or default_tokenizer()
        nodes = [
            ContextNode.from_text(start_id + idx, text, tokenizer)
            for idx, text in enumerate(texts)
        ]
        return cls.from_nodes(nodes, name)

    @classmethod
    def from_named_texts(
        cls,
        named_texts: Mapping[str, str],
        tokenizer: Tokenizer | None = None,
        name: str = "collection",
    ) -> "Collection":
        """Build a collection from ``{title: text}``, storing titles as metadata."""
        tokenizer = tokenizer or default_tokenizer()
        nodes = []
        for idx, (title, text) in enumerate(named_texts.items()):
            nodes.append(
                ContextNode.from_text(idx, text, tokenizer, metadata={"title": title})
            )
        return cls.from_nodes(nodes, name)

    # --------------------------------------------------------------- updates
    def add(self, node: ContextNode) -> None:
        """Add a node to the collection; its id must not already be present."""
        if node.node_id in self.nodes:
            raise CorpusError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node

    def remove(self, node_id: int) -> ContextNode:
        """Remove and return the node with ``node_id``; raise if absent.

        Used by the live-indexing layer (:mod:`repro.segments`) to keep the
        collection in step with tombstone deletes.
        """
        try:
            return self.nodes.pop(node_id)
        except KeyError as exc:
            raise CorpusError(f"unknown node id {node_id}") from exc

    def replace(self, node: ContextNode) -> ContextNode:
        """Swap in a new revision of an existing node; return the old one."""
        if node.node_id not in self.nodes:
            raise CorpusError(f"unknown node id {node.node_id}")
        old = self.nodes[node.node_id]
        self.nodes[node.node_id] = node
        return old

    def next_node_id(self) -> int:
        """The smallest id greater than every existing node id (0 if empty)."""
        return max(self.nodes, default=-1) + 1

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[ContextNode]:
        for node_id in self.node_ids():
            yield self.nodes[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def node_ids(self) -> list[int]:
        """All node ids in ascending order."""
        return sorted(self.nodes)

    def get(self, node_id: int) -> ContextNode:
        """Return the node with ``node_id``; raise :class:`CorpusError` if absent."""
        try:
            return self.nodes[node_id]
        except KeyError as exc:
            raise CorpusError(f"unknown node id {node_id}") from exc

    def subset(self, node_ids: Iterable[int], name: str | None = None) -> "Collection":
        """A new collection restricted to ``node_ids`` (the search context)."""
        ids = list(node_ids)
        missing = [nid for nid in ids if nid not in self.nodes]
        if missing:
            raise CorpusError(f"unknown node ids in subset: {missing}")
        return Collection(
            {nid: self.nodes[nid] for nid in ids}, name or f"{self.name}-subset"
        )

    def filter(
        self, predicate: Callable[[ContextNode], bool], name: str | None = None
    ) -> "Collection":
        """A new collection with only the nodes satisfying ``predicate``."""
        return Collection(
            {nid: node for nid, node in self.nodes.items() if predicate(node)},
            name or f"{self.name}-filtered",
        )

    # ------------------------------------------------------------ statistics
    def node_count(self) -> int:
        """``db_size`` in the paper's IDF formula: the number of nodes."""
        return len(self.nodes)

    def document_frequency(self, token: str) -> int:
        """``df(t)``: number of nodes containing ``token``."""
        return sum(1 for node in self.nodes.values() if node.contains(token))

    def vocabulary(self) -> set[str]:
        """The set of all tokens appearing anywhere in the collection."""
        vocab: set[str] = set()
        for node in self.nodes.values():
            vocab.update(node.unique_tokens())
        return vocab

    def total_token_count(self) -> int:
        """Total number of token occurrences over all nodes."""
        return sum(len(node) for node in self.nodes.values())

    def max_positions_per_node(self) -> int:
        """``pos_per_cnode``: maximum number of positions in a node."""
        if not self.nodes:
            return 0
        return max(len(node) for node in self.nodes.values())

    def describe(self) -> dict[str, int]:
        """A small summary dictionary used by the benchmark harness."""
        return {
            "nodes": self.node_count(),
            "tokens": self.total_token_count(),
            "vocabulary": len(self.vocabulary()),
            "max_positions_per_node": self.max_positions_per_node(),
        }
