"""Loading collections from files on disk.

The paper indexes the INEX 2003 XML documents "as flat" text, ignoring the
XML structure.  These loaders mirror that: plain-text files become one context
node each, simple XML-ish files are stripped of their tags before
tokenization, and directory trees can be ingested wholesale.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.corpus.tokenizer import Tokenizer, default_tokenizer
from repro.exceptions import CorpusError

_TAG_RE = re.compile(r"<[^>]*>")


def strip_markup(text: str) -> str:
    """Remove XML/HTML-style tags, keeping the text content.

    This reproduces the paper's choice to index the XML collection as flat
    text (Section 6.3: "we ignored the XML structure and indexed the
    documents as flat").
    """
    return _TAG_RE.sub(" ", text)


def load_text_files(
    paths: Sequence[Path | str],
    tokenizer: Tokenizer | None = None,
    strip_tags: bool = False,
    name: str = "files",
) -> Collection:
    """Load each file in ``paths`` as one context node.

    Node ids follow the order of ``paths``; the file name is recorded in the
    node metadata under ``"path"``.
    """
    tokenizer = tokenizer or default_tokenizer()
    nodes: list[ContextNode] = []
    for node_id, raw_path in enumerate(paths):
        path = Path(raw_path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CorpusError(f"cannot read {path}: {exc}") from exc
        if strip_tags:
            text = strip_markup(text)
        nodes.append(
            ContextNode.from_text(node_id, text, tokenizer, metadata={"path": str(path)})
        )
    return Collection.from_nodes(nodes, name)


def load_directory(
    directory: Path | str,
    pattern: str = "*.txt",
    tokenizer: Tokenizer | None = None,
    strip_tags: bool = False,
) -> Collection:
    """Load every file matching ``pattern`` under ``directory`` (recursively)."""
    directory = Path(directory)
    if not directory.is_dir():
        raise CorpusError(f"{directory} is not a directory")
    paths = sorted(directory.rglob(pattern))
    if not paths:
        raise CorpusError(f"no files matching {pattern!r} under {directory}")
    return load_text_files(
        paths, tokenizer=tokenizer, strip_tags=strip_tags, name=directory.name
    )


def collection_from_strings(
    texts: Iterable[str],
    tokenizer: Tokenizer | None = None,
    strip_tags: bool = False,
    name: str = "strings",
) -> Collection:
    """Build a collection from in-memory strings (one node per string)."""
    tokenizer = tokenizer or default_tokenizer()
    cleaned = [strip_markup(text) if strip_tags else text for text in texts]
    return Collection.from_texts(cleaned, tokenizer=tokenizer, name=name)
