"""Tokenization of raw text into structured token positions.

The paper's model assigns each token a position in the context node; positions
may additionally carry sentence and paragraph structure so that predicates
such as ``samepara`` and ``samesentence`` can be expressed.  This module turns
raw text into a sequence of ``(token, Position)`` pairs.

Paragraphs are separated by blank lines; sentences are terminated by ``.``,
``!`` or ``?``.  Tokens are maximal runs of alphanumeric characters (plus a
configurable set of extra characters), lower-cased by default.  The tokenizer
also supports optional token filters (e.g. stop-word removal) as an extension
hook, although the paper pipeline does not use them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.model.positions import Position

#: A token filter maps a token to a replacement token or ``None`` to drop it.
TokenFilter = Callable[[str], "str | None"]

_PARAGRAPH_SPLIT = re.compile(r"\n\s*\n")
_SENTENCE_END = frozenset(".!?")


@dataclass(frozen=True)
class TokenOccurrence:
    """A single token occurrence: the token string and its position."""

    token: str
    position: Position


@dataclass
class Tokenizer:
    """Configurable tokenizer producing :class:`TokenOccurrence` sequences.

    Parameters
    ----------
    lowercase:
        Normalise tokens to lower case (the paper treats tokens as opaque
        strings; lower-casing matches common IR practice).
    extra_token_chars:
        Characters other than alphanumerics that are allowed inside a token
        (e.g. ``"-"`` to keep hyphenated words together).
    filters:
        Optional list of token filters applied in order.  A filter may rewrite
        a token (e.g. stemming) or return ``None`` to drop it (stop-words).
        Dropped tokens do not consume a position, mirroring how an IR system
        would build its inverted lists after stop-wording.
    """

    lowercase: bool = True
    extra_token_chars: str = ""
    filters: Sequence[TokenFilter] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        escaped = re.escape(self.extra_token_chars) if self.extra_token_chars else ""
        self._token_re = re.compile(rf"[0-9A-Za-z{escaped}]+")

    # ------------------------------------------------------------------ API
    def tokenize(self, text: str) -> list[TokenOccurrence]:
        """Tokenize ``text`` into token occurrences with structural positions."""
        return list(self.iter_tokens(text))

    def tokens_only(self, text: str) -> list[str]:
        """Return just the token strings of ``text`` in document order."""
        return [occ.token for occ in self.iter_tokens(text)]

    def iter_tokens(self, text: str) -> Iterator[TokenOccurrence]:
        """Yield token occurrences of ``text`` lazily, in document order."""
        offset = 0
        sentence = 0
        for paragraph_idx, paragraph in enumerate(self._split_paragraphs(text)):
            saw_token_in_sentence = False
            for piece in self._iter_pieces(paragraph):
                if piece in _SENTENCE_END:
                    if saw_token_in_sentence:
                        sentence += 1
                        saw_token_in_sentence = False
                    continue
                token = self._normalize(piece)
                if token is None:
                    continue
                yield TokenOccurrence(
                    token, Position(offset, sentence, paragraph_idx)
                )
                offset += 1
                saw_token_in_sentence = True
            if saw_token_in_sentence:
                # A paragraph end also terminates the current sentence.
                sentence += 1

    # ------------------------------------------------------------- internals
    def _split_paragraphs(self, text: str) -> list[str]:
        paragraphs = [p for p in _PARAGRAPH_SPLIT.split(text) if p.strip()]
        return paragraphs or ([] if not text.strip() else [text])

    def _iter_pieces(self, paragraph: str) -> Iterator[str]:
        """Yield tokens and sentence-terminator characters in order."""
        idx = 0
        length = len(paragraph)
        while idx < length:
            char = paragraph[idx]
            if char in _SENTENCE_END:
                yield char
                idx += 1
                continue
            match = self._token_re.match(paragraph, idx)
            if match:
                yield match.group(0)
                idx = match.end()
            else:
                idx += 1

    def _normalize(self, raw: str) -> str | None:
        token: str | None = raw.lower() if self.lowercase else raw
        for token_filter in self.filters:
            if token is None:
                return None
            token = token_filter(token)
        if not token:
            return None
        return token


def make_stopword_filter(stopwords: Iterable[str]) -> TokenFilter:
    """Build a filter dropping every token in ``stopwords`` (case-insensitive)."""
    lowered = {word.lower() for word in stopwords}

    def _filter(token: str) -> str | None:
        return None if token.lower() in lowered else token

    return _filter


def default_tokenizer() -> Tokenizer:
    """The tokenizer used throughout the reproduction (lower-case, no filters)."""
    return Tokenizer()
