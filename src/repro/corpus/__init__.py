"""Corpus substrate: documents, tokenization, collections, synthetic data."""

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode, node_from_paragraphs
from repro.corpus.loaders import (
    collection_from_strings,
    load_directory,
    load_text_files,
    strip_markup,
)
from repro.corpus.synthetic import (
    DEFAULT_QUERY_TOKENS,
    SyntheticSpec,
    generate_collection,
    generate_inex_like_collection,
)
from repro.corpus.tokenizer import (
    TokenOccurrence,
    Tokenizer,
    default_tokenizer,
    make_stopword_filter,
)

__all__ = [
    "Collection",
    "ContextNode",
    "node_from_paragraphs",
    "collection_from_strings",
    "load_directory",
    "load_text_files",
    "strip_markup",
    "DEFAULT_QUERY_TOKENS",
    "SyntheticSpec",
    "generate_collection",
    "generate_inex_like_collection",
    "TokenOccurrence",
    "Tokenizer",
    "default_tokenizer",
    "make_stopword_filter",
]
