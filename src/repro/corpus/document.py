"""Context nodes (documents) for full-text search.

A :class:`ContextNode` is the unit over which a full-text condition is
evaluated -- a document in an IR system, a tuple in a relational database, or
an element in an XML document (paper, Section 2).  The node exposes exactly
the two functions of the paper's formal model:

* ``Positions(n)`` -- the set of token positions in the node
  (:meth:`ContextNode.positions`);
* ``Token(p)``     -- the token stored at a position
  (:meth:`ContextNode.token_at`).

plus convenience accessors used by the index builder and scoring code
(occurrence counts, unique-token counts, per-token position lists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.corpus.tokenizer import TokenOccurrence, Tokenizer, default_tokenizer
from repro.exceptions import CorpusError
from repro.model.positions import Position


@dataclass(frozen=True)
class ContextNode:
    """A single context node: an id plus its tokenized content.

    Instances are immutable; construct them with :meth:`from_text` (raw text
    run through a tokenizer), :meth:`from_tokens` (a pre-tokenized list of
    token strings) or directly from :class:`TokenOccurrence` objects.
    """

    node_id: int
    occurrences: tuple[TokenOccurrence, ...]
    metadata: Mapping[str, str] = field(default_factory=dict)

    # -------------------------------------------------------------- builders
    @classmethod
    def from_text(
        cls,
        node_id: int,
        text: str,
        tokenizer: Tokenizer | None = None,
        metadata: Mapping[str, str] | None = None,
    ) -> "ContextNode":
        """Tokenize ``text`` and build a context node from it."""
        tokenizer = tokenizer or default_tokenizer()
        return cls(node_id, tuple(tokenizer.tokenize(text)), dict(metadata or {}))

    @classmethod
    def from_tokens(
        cls,
        node_id: int,
        tokens: Sequence[str],
        sentence_length: int | None = None,
        paragraph_length: int | None = None,
        metadata: Mapping[str, str] | None = None,
    ) -> "ContextNode":
        """Build a node from a flat token sequence.

        ``sentence_length`` / ``paragraph_length`` optionally impose a regular
        structure (every N tokens start a new sentence/paragraph); this is the
        form used by the synthetic-data generator.
        """
        occurrences = []
        for offset, token in enumerate(tokens):
            sentence = offset // sentence_length if sentence_length else 0
            paragraph = offset // paragraph_length if paragraph_length else 0
            occurrences.append(
                TokenOccurrence(token, Position(offset, sentence, paragraph))
            )
        return cls(node_id, tuple(occurrences), dict(metadata or {}))

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise CorpusError(f"node_id must be >= 0, got {self.node_id}")
        last = -1
        for occ in self.occurrences:
            if occ.position.offset <= last:
                raise CorpusError(
                    "token occurrences must have strictly increasing offsets"
                )
            last = occ.position.offset

    # ------------------------------------------------------- model functions
    def positions(self) -> list[Position]:
        """``Positions(n)``: every token position in this node, in order."""
        return [occ.position for occ in self.occurrences]

    def token_at(self, position: Position | int) -> str:
        """``Token(p)``: the token stored at ``position``.

        Raises :class:`CorpusError` if the position does not belong to the
        node.
        """
        offset = position.offset if isinstance(position, Position) else int(position)
        index = self._offset_index().get(offset)
        if index is None:
            raise CorpusError(
                f"position {offset} is not a position of node {self.node_id}"
            )
        return self.occurrences[index].token

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self.occurrences)

    def __iter__(self) -> Iterator[TokenOccurrence]:
        return iter(self.occurrences)

    @property
    def tokens(self) -> list[str]:
        """Token strings of the node in document order."""
        return [occ.token for occ in self.occurrences]

    def unique_tokens(self) -> set[str]:
        """The set of distinct tokens occurring in the node."""
        return {occ.token for occ in self.occurrences}

    def unique_token_count(self) -> int:
        """``unique_tokens(n)`` from the paper's TF-IDF formulae."""
        return len(self.unique_tokens())

    def occurrence_count(self, token: str) -> int:
        """``occurs(n, t)``: number of occurrences of ``token`` in this node."""
        return len(self.positions_of(token))

    def positions_of(self, token: str) -> list[Position]:
        """All positions of ``token`` in this node, in document order."""
        return list(self._token_positions().get(token, ()))

    def contains(self, token: str) -> bool:
        """True iff ``token`` occurs at least once in this node."""
        return token in self._token_positions()

    def term_frequency(self, token: str) -> float:
        """``tf(n, t) = occurs(n, t) / unique_tokens(n)`` (paper, Section 3.1)."""
        unique = self.unique_token_count()
        if unique == 0:
            return 0.0
        return self.occurrence_count(token) / unique

    def paragraph_count(self) -> int:
        """Number of distinct paragraphs in the node."""
        return len({occ.position.paragraph for occ in self.occurrences})

    def sentence_count(self) -> int:
        """Number of distinct sentences in the node."""
        return len({occ.position.sentence for occ in self.occurrences})

    def text_preview(self, max_tokens: int = 12) -> str:
        """A short human-readable preview of the node content."""
        words = self.tokens[:max_tokens]
        suffix = " ..." if len(self.occurrences) > max_tokens else ""
        return " ".join(words) + suffix

    # ------------------------------------------------------------- internals
    def _token_positions(self) -> dict[str, tuple[Position, ...]]:
        cached = self.__dict__.get("_token_positions_cache")
        if cached is None:
            mapping: dict[str, list[Position]] = {}
            for occ in self.occurrences:
                mapping.setdefault(occ.token, []).append(occ.position)
            cached = {token: tuple(poss) for token, poss in mapping.items()}
            object.__setattr__(self, "_token_positions_cache", cached)
        return cached

    def _offset_index(self) -> dict[int, int]:
        cached = self.__dict__.get("_offset_index_cache")
        if cached is None:
            cached = {
                occ.position.offset: idx for idx, occ in enumerate(self.occurrences)
            }
            object.__setattr__(self, "_offset_index_cache", cached)
        return cached


def node_from_paragraphs(
    node_id: int,
    paragraphs: Iterable[Sequence[str]],
    sentence_length: int | None = None,
    metadata: Mapping[str, str] | None = None,
) -> ContextNode:
    """Build a node from explicit paragraphs, each a sequence of tokens.

    Useful in tests that need precise control over paragraph boundaries
    without going through the text tokenizer.
    """
    occurrences: list[TokenOccurrence] = []
    offset = 0
    sentence = 0
    for para_idx, paragraph in enumerate(paragraphs):
        for idx_in_para, token in enumerate(paragraph):
            if sentence_length and idx_in_para and idx_in_para % sentence_length == 0:
                sentence += 1
            occurrences.append(
                TokenOccurrence(token, Position(offset, sentence, para_idx))
            )
            offset += 1
        sentence += 1
    return ContextNode(node_id, tuple(occurrences), dict(metadata or {}))
