"""The NPRED evaluation engine (paper, Section 5.6).

NPRED adds *negative* predicates (``not_distance``, ``not_ordered``,
``not_samepara``, ...).  The skip trick of PPRED -- always move the smallest
position -- no longer works: a negative predicate can only become true by
*extending* the gap between positions, so the evaluator must decide which
position to hold fixed and which to move.  The paper resolves this
non-determinism by running one evaluation thread per ordering permutation of
the query-token cursors (up to ``toks_Q!`` threads); each thread enforces its
permutation as an invariant (``p_{i1} <= ... <= p_{in}``) and, when a negative
predicate fails, moves only the cursor holding the largest position of the
predicate under that order (Algorithms 6 and 7).

Implementation note: instead of stacking the modular PPRED operators, each
conjunctive block is evaluated by a fused :class:`NPredBlockOperator` that
holds the block's scan cursors directly, performs the multi-way node merge,
enforces the permutation order and applies all predicates (positive and
negative) in one loop.  This is behaviourally identical to the paper's
per-operator formulation -- the set of cursor movements is the same -- but
far easier to reason about.  The per-operator formulation remains available
for PPRED.

The engine also supports the paper's optimisation ("our implementation
generates only the necessary partial orders"): with ``orders="minimal"`` it
permutes only the cursors that participate in negative predicates.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.exceptions import EvaluationError, UnsupportedQueryError
from repro.index.cursor import PAPER_MODE, CursorFactory, CursorStats, check_access_mode
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.model.positions import Position
from repro.model.predicates import Polarity, Predicate, PredicateRegistry, default_registry
from repro.engine import operators as ops
from repro.engine.plan import (
    BlockPlan,
    DifferencePlan,
    IntersectPlan,
    UnionPlan,
    extract_plan,
    plan_polarities,
)


class _BoundPredicate:
    """A predicate bound to the attribute indices of a block."""

    def __init__(
        self,
        predicate: Predicate,
        attr_indices: Sequence[int],
        constants: Sequence[object],
    ) -> None:
        self.predicate = predicate
        self.attr_indices = tuple(attr_indices)
        self.constants = tuple(constants)

    def holds(self, positions: Sequence[Position]) -> bool:
        return self.predicate.holds(
            [positions[idx] for idx in self.attr_indices], self.constants
        )


class NPredBlockOperator(ops.PlanOperator):
    """Fused evaluation of one conjunctive block under one cursor ordering.

    ``ordering`` lists the scan indices whose positions the thread keeps in
    non-decreasing order (``p_{i1} <= p_{i2} <= ...``).  Every scan used by a
    negative predicate must be covered by the ordering; scans outside it are
    unconstrained (they behave exactly as in the PPRED evaluation).  The NPRED
    engine runs one such operator per ordering permutation and unions the
    results.

    The operator is node-level (arity 0): ``advance_node`` returns the next
    node that contains a solution compatible with the thread's ordering.
    """

    arity = 0

    def __init__(
        self,
        scans: Sequence[ops.ScanOperator],
        predicates: Sequence[_BoundPredicate],
        ordering: Sequence[int],
        extra_inputs: Sequence[ops.PlanOperator] = (),
    ) -> None:
        if not scans:
            raise EvaluationError("an NPRED block needs at least one token scan")
        if len(set(ordering)) != len(ordering) or any(
            not 0 <= attr < len(scans) for attr in ordering
        ):
            raise EvaluationError(
                f"ordering {ordering!r} is not a list of distinct scan indices"
            )
        covered = set(ordering)
        for bound in predicates:
            if bound.predicate.polarity is Polarity.NEGATIVE and not set(
                bound.attr_indices
            ) <= covered:
                raise EvaluationError(
                    f"negative predicate {bound.predicate.name!r} uses scans "
                    "outside the thread's ordering"
                )
        self.scans = list(scans)
        self.predicates = list(predicates)
        self.ordering = tuple(ordering)
        self.extra_inputs = list(extra_inputs)
        self._node: int | None = None

    # ------------------------------------------------------------------ API
    def advance_node(self) -> int | None:
        node = self._advance_all_inputs()
        while node is not None:
            node = self._align_inputs(node)
            if node is None:
                break
            if self._enforce_order() and self._satisfy_predicates():
                self._node = node
                return node
            node = self._advance_all_inputs()
        self._node = None
        return None

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        raise EvaluationError("NPRED blocks expose node-level iteration only")

    def position(self, index: int) -> Position:
        raise EvaluationError("NPRED blocks expose node-level iteration only")

    # ------------------------------------------------------------- internals
    def _all_inputs(self) -> list[ops.PlanOperator]:
        return list(self.scans) + self.extra_inputs

    def _advance_all_inputs(self) -> int | None:
        highest: int | None = None
        for operator in self._all_inputs():
            node = operator.advance_node()
            if node is None:
                return None
            highest = node if highest is None else max(highest, node)
        return highest

    def _align_inputs(self, target: int) -> int | None:
        """Multi-way sort-merge: advance inputs until all sit on the same node.

        Skipping goes through the shared
        :meth:`~repro.engine.operators.PlanOperator.advance_node_to`
        primitive: sequential stepping (the paper's per-entry charge) for
        paper-mode cursors, one galloping seek for fast-mode cursors.
        """
        while True:
            changed = False
            for operator in self._all_inputs():
                node = operator.current_node()
                if node is not None and node < target:
                    node = operator.advance_node_to(target)
                    changed = True
                if node is None:
                    return None
                if node > target:
                    target = node
                    changed = True
            if not changed:
                return target

    def _enforce_order(self) -> bool:
        """Restore the ordering invariant ``p_{i1} <= ... <= p_{ik}``."""
        for slot in range(1, len(self.ordering)):
            previous = self.scans[self.ordering[slot - 1]].position(0)
            scan = self.scans[self.ordering[slot]]
            if scan.position(0).offset < previous.offset:
                if not scan.advance_position(0, previous.offset):
                    return False
        return True

    def _satisfy_predicates(self) -> bool:
        """Advance cursors until every predicate holds (Algorithm 7 loop)."""
        while True:
            positions = [scan.position(0) for scan in self.scans]
            failing = next(
                (bound for bound in self.predicates if not bound.holds(positions)),
                None,
            )
            if failing is None:
                return True
            if not self._advance_for(failing, positions):
                return False
            if not self._enforce_order():
                return False

    def _advance_for(
        self, bound: _BoundPredicate, positions: Sequence[Position]
    ) -> bool:
        local_positions = [positions[idx] for idx in bound.attr_indices]
        if bound.predicate.polarity is Polarity.NEGATIVE:
            # Move the cursor holding the largest position under the thread's
            # ordering (Algorithm 7): only "extending the gap" can make a
            # negative predicate true.
            latest_local = max(
                range(len(bound.attr_indices)),
                key=lambda local: self.ordering.index(bound.attr_indices[local]),
            )
            target = bound.predicate.advance_target(
                local_positions, bound.constants, latest_local
            )
            attr = bound.attr_indices[latest_local]
            return self.scans[attr].advance_position(0, target)
        hints = bound.predicate.advance_hints(local_positions, bound.constants)
        for local_index, target in hints.items():
            if target > local_positions[local_index].offset:
                attr = bound.attr_indices[local_index]
                return self.scans[attr].advance_position(0, target)
        raise EvaluationError(
            f"predicate {bound.predicate.name!r} produced no progressing hint"
        )


class NPredEngine:
    """Permutation-threaded evaluation of negative-predicate queries."""

    name = "npred"

    def __init__(
        self,
        index: InvertedIndex,
        registry: PredicateRegistry | None = None,
        orders: str = "minimal",
        access_mode: str = PAPER_MODE,
        physical=None,
    ) -> None:
        if orders not in ("minimal", "all"):
            raise EvaluationError("orders must be 'minimal' or 'all'")
        self.index = index
        self.registry = registry or default_registry()
        self.orders = orders
        self.access_mode = check_access_mode(access_mode)
        #: Optional :class:`~repro.planner.physical.PhysicalPlan`, accepted
        #: for API uniformity with the other engines.  NPRED's cursor order
        #: is *semantic* (the permutation threads enforce position orderings
        #: over specific scans), so the plan's join order is not applied
        #: here; the plan still carries the access-mode and bound-strategy
        #: choices, which the executor applies around the engine.
        self.physical = physical

    # ------------------------------------------------------------------ API
    def evaluate(self, query: ast.QueryNode) -> list[int]:
        """Node ids satisfying ``query``, ascending."""
        return self.evaluate_with_stats(query)[0]

    def evaluate_with_stats(
        self,
        query: ast.QueryNode,
        factory: CursorFactory | None = None,
        plan=None,
        observer=None,
    ) -> tuple[list[int], CursorStats]:
        """Evaluate; ``observer`` sees each result node exactly once.

        The permutation threads can each rediscover the same node, so the
        observer is fed from the deduplicated, sorted union -- never from
        inside a thread.
        """
        if plan is None:
            plan = extract_plan(query, self.registry)
        polarities = plan_polarities(plan, self.registry)
        if Polarity.GENERAL in polarities:
            raise UnsupportedQueryError(
                "query uses predicates without positive/negative advance "
                "semantics; use the COMP engine"
            )
        if factory is None:
            factory = CursorFactory(mode=self.access_mode)
        nodes = sorted(self._evaluate_plan(plan, factory))
        if observer is not None:
            for node_id in nodes:
                observer(node_id)
        return nodes, factory.collect_stats()

    # ------------------------------------------------------------- internals
    def _evaluate_plan(self, plan, factory: CursorFactory) -> set[int]:
        if isinstance(plan, BlockPlan):
            return self._evaluate_block(plan, factory)
        if isinstance(plan, UnionPlan):
            return self._evaluate_plan(plan.left, factory) | self._evaluate_plan(
                plan.right, factory
            )
        if isinstance(plan, IntersectPlan):
            return self._evaluate_plan(plan.left, factory) & self._evaluate_plan(
                plan.right, factory
            )
        if isinstance(plan, DifferencePlan):
            return self._evaluate_plan(plan.left, factory) - self._evaluate_plan(
                plan.right, factory
            )
        raise UnsupportedQueryError(f"unknown plan node {type(plan).__name__}")

    def _evaluate_block(self, block: BlockPlan, factory: CursorFactory) -> set[int]:
        bound_predicates = [
            _BoundPredicate(
                self.registry.get(spec.name),
                [block.attribute_of(var) for var in spec.variables],
                spec.constants,
            )
            for spec in block.predicates
        ]
        results: set[int] = set()
        for permutation in self._permutations(block, bound_predicates):
            scans = [
                ops.ScanOperator(self.index.open_cursor(token, factory))
                for _, token in block.bindings
            ]
            extra = [
                self._closed_operator(conjunct, factory)
                for conjunct in block.closed_conjuncts
            ]
            operator = NPredBlockOperator(scans, bound_predicates, permutation, extra)
            results.update(ops.collect_nodes(operator))
        for negated in block.negated:
            results -= self._evaluate_plan(negated, factory)
        return results

    def _closed_operator(self, plan, factory: CursorFactory) -> ops.PlanOperator:
        """Closed conjuncts carry no position variables; evaluate them once and
        replay the resulting node set as a node-level input of the block."""
        nodes = sorted(self._evaluate_plan(plan, factory))
        return _NodeSetOperator(nodes)

    def _permutations(
        self, block: BlockPlan, bound_predicates: Sequence[_BoundPredicate]
    ) -> Iterable[tuple[int, ...]]:
        """Cursor orderings to evaluate: one evaluation thread per ordering.

        With ``orders="all"`` every permutation of all query-token cursors is
        used, as in the paper's basic algorithm (up to ``toks_Q!`` threads).
        With ``orders="minimal"`` (the paper's "only the necessary partial
        orders" optimisation) only the cursors that participate in negative
        predicates are ordered -- cursors outside the ordering are left
        unconstrained, so positive-only blocks run as a single thread with no
        ordering at all.
        """
        count = len(block.bindings)
        everything = tuple(range(count))
        if self.orders == "all":
            yield from itertools.permutations(everything)
            return
        negative_attrs: list[int] = []
        for bound in bound_predicates:
            if bound.predicate.polarity is Polarity.NEGATIVE:
                for attr in bound.attr_indices:
                    if attr not in negative_attrs:
                        negative_attrs.append(attr)
        if not negative_attrs:
            yield ()
            return
        yield from itertools.permutations(negative_attrs)


class _NodeSetOperator(ops.PlanOperator):
    """Replay a precomputed, sorted node-id list through the operator API."""

    arity = 0

    def __init__(self, nodes: Sequence[int]) -> None:
        self._nodes = list(nodes)
        self._index = -1

    def advance_node(self) -> int | None:
        self._index += 1
        if self._index >= len(self._nodes):
            return None
        return self._nodes[self._index]

    def current_node(self) -> int | None:
        if 0 <= self._index < len(self._nodes):
            return self._nodes[self._index]
        return None

    def advance_position(self, index: int, min_offset: int) -> bool:
        raise EvaluationError("node-set operators expose node-level iteration only")

    def position(self, index: int) -> Position:
        raise EvaluationError("node-set operators have no position attributes")
