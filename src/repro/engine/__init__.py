"""Evaluation engines: BOOL merge, PPRED single-scan, NPRED threads, naive COMP."""

from repro.engine.bool_engine import BoolEngine
from repro.engine.executor import (
    AUTO,
    ENGINE_CLASS,
    NATIVE_ENGINE,
    EvaluationResult,
    Executor,
)
from repro.engine.naive_engine import NaiveCompEngine, NaiveEvaluation
from repro.engine.npred_engine import NPredBlockOperator, NPredEngine
from repro.engine.operators import (
    JoinOperator,
    NodeDifferenceOperator,
    NodeUnionOperator,
    PlanOperator,
    ProjectOperator,
    ScanOperator,
    SelectOperator,
    ZigZagJoinOperator,
    collect_nodes,
    rarest_first_order,
    zigzag_node_intersect,
)
from repro.engine.plan import (
    BlockPlan,
    DifferencePlan,
    IntersectPlan,
    PredicateSpec,
    UnionPlan,
    describe_plan,
    extract_plan,
    plan_blocks,
    plan_polarities,
)
from repro.engine.ppred_engine import PPredEngine
from repro.engine.topk import TopKCollector, check_top_k

__all__ = [
    "TopKCollector",
    "check_top_k",
    "BoolEngine",
    "AUTO",
    "ENGINE_CLASS",
    "NATIVE_ENGINE",
    "EvaluationResult",
    "Executor",
    "NaiveCompEngine",
    "NaiveEvaluation",
    "NPredBlockOperator",
    "NPredEngine",
    "JoinOperator",
    "NodeDifferenceOperator",
    "NodeUnionOperator",
    "PlanOperator",
    "ProjectOperator",
    "ScanOperator",
    "SelectOperator",
    "ZigZagJoinOperator",
    "collect_nodes",
    "rarest_first_order",
    "zigzag_node_intersect",
    "BlockPlan",
    "DifferencePlan",
    "IntersectPlan",
    "PredicateSpec",
    "UnionPlan",
    "describe_plan",
    "extract_plan",
    "plan_blocks",
    "plan_polarities",
    "PPredEngine",
]
