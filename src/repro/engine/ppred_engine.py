"""The PPRED evaluation engine (paper, Section 5.5).

PPRED queries -- positive predicates only, negation restricted to closed
subqueries -- are evaluated in a *single* forward scan over the query-token
inverted lists.  The engine turns the extracted plan
(:mod:`repro.engine.plan`) into a tree of pipelined operators
(:mod:`repro.engine.operators`): one :class:`ScanOperator` per token binding,
a left-deep chain of :class:`JoinOperator`, one :class:`SelectOperator` per
predicate, and a final projection to CNode, exactly as in Figure 4 of the
paper.  Closed OR/AND-NOT subqueries become node-level union / difference.

Complexity: ``O(entries_per_token · pos_per_entry · toks_Q ·
(preds_Q + ops_Q + 1))`` -- linear in the inverted-list data touched.
"""

from __future__ import annotations

from repro.exceptions import UnsupportedQueryError
from repro.index.cursor import FAST_MODE, PAPER_MODE, CursorFactory, CursorStats, check_access_mode
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.model.predicates import Polarity, PredicateRegistry, default_registry
from repro.engine import operators as ops
from repro.engine.plan import (
    BlockPlan,
    DifferencePlan,
    IntersectPlan,
    PredicateSpec,
    UnionPlan,
    extract_plan,
    plan_polarities,
)


class PPredEngine:
    """Single-scan evaluation of positive-predicate queries.

    In ``"paper"`` access mode each conjunctive block is the left-deep chain
    of pairwise :class:`~repro.engine.operators.JoinOperator` of the paper's
    Figure 4, driven by sequential cursors.  In ``"fast"`` mode the block's
    inputs are merged by one n-ary
    :class:`~repro.engine.operators.ZigZagJoinOperator` over seek-capable
    cursors, visiting the rarest inverted list first.
    """

    name = "ppred"

    def __init__(
        self,
        index: InvertedIndex,
        registry: PredicateRegistry | None = None,
        access_mode: str = PAPER_MODE,
        physical=None,
    ) -> None:
        self.index = index
        self.registry = registry or default_registry()
        self.access_mode = check_access_mode(access_mode)
        #: Optional :class:`~repro.planner.physical.PhysicalPlan`.  Supplies
        #: the zig-zag merge order of a block's token scans (cheapest
        #: feedback-corrected list leads); attribute numbering -- and with it
        #: every predicate binding -- follows input order regardless, so the
        #: plan can only redirect cursor traffic, never change results.
        self.physical = physical

    # ------------------------------------------------------------------ API
    def evaluate(self, query: ast.QueryNode) -> list[int]:
        """Node ids satisfying ``query``, ascending."""
        return self.evaluate_with_stats(query)[0]

    def evaluate_with_stats(
        self,
        query: ast.QueryNode,
        factory: CursorFactory | None = None,
        plan=None,
        observer=None,
    ) -> tuple[list[int], CursorStats]:
        """Evaluate and also report how much inverted-list data was scanned.

        ``factory`` and ``plan`` let a batch driver share one cursor factory
        and reuse an extracted plan across calls (see
        :meth:`repro.engine.executor.Executor.execute_many`).  ``observer``
        sees every result node exactly once, streamed from the root operator
        while the single forward scan is still running -- each node the plan
        produces is final, so the top-k pushdown can score-and-prune it
        immediately.
        """
        if plan is None:
            plan = extract_plan(query, self.registry)
        self._check_polarities(plan)
        if factory is None:
            factory = CursorFactory(mode=self.access_mode)
        operator = self.build_operator(plan, factory)
        nodes = ops.collect_nodes(operator, observer)
        return nodes, factory.collect_stats()

    # ----------------------------------------------------------- plan -> ops
    def build_operator(self, plan, factory: CursorFactory) -> ops.PlanOperator:
        """Build the pipelined operator tree for an extracted plan."""
        if isinstance(plan, BlockPlan):
            return self._build_block(plan, factory)
        if isinstance(plan, UnionPlan):
            return ops.NodeUnionOperator(
                self.build_operator(plan.left, factory),
                self.build_operator(plan.right, factory),
            )
        if isinstance(plan, DifferencePlan):
            return ops.NodeDifferenceOperator(
                self.build_operator(plan.left, factory),
                self.build_operator(plan.right, factory),
            )
        if isinstance(plan, IntersectPlan):
            return ops.JoinOperator(
                self.build_operator(plan.left, factory),
                self.build_operator(plan.right, factory),
            )
        raise UnsupportedQueryError(f"unknown plan node {type(plan).__name__}")

    def _build_block(self, block: BlockPlan, factory: CursorFactory) -> ops.PlanOperator:
        tree = self._build_positive_part(block, factory)
        tree = ops.ProjectOperator(tree, keep=())
        for negated in block.negated:
            tree = ops.NodeDifferenceOperator(
                tree, self.build_operator(negated, factory)
            )
        return tree

    def _build_positive_part(
        self, block: BlockPlan, factory: CursorFactory
    ) -> ops.PlanOperator:
        scans = [
            ops.ScanOperator(self.index.open_cursor(token, factory))
            for _, token in block.bindings
        ]
        closed = [
            self.build_operator(conjunct, factory)
            for conjunct in block.closed_conjuncts
        ]
        inputs: list[ops.PlanOperator] = scans + closed
        if not inputs:
            raise UnsupportedQueryError("empty conjunctive block")
        tree: ops.PlanOperator
        if self.access_mode == FAST_MODE and len(inputs) > 1:
            # One n-ary zig-zag merge, rarest inverted list first (or the
            # planner's feedback-corrected order when the plan covers this
            # block's tokens).  Input order (and with it the attribute
            # numbering used by the predicate selections below) is unchanged.
            merge_order = self._planned_order(block, scans, inputs)
            if merge_order is None:
                merge_order = ops.rarest_first_order(inputs)
            tree = ops.ZigZagJoinOperator(inputs, merge_order=merge_order)
        else:
            chain: ops.PlanOperator | None = None
            for operator in inputs:
                chain = (
                    operator
                    if chain is None
                    else ops.JoinOperator(chain, operator)
                )
            tree = chain
        for spec in block.predicates:
            tree = self._apply_predicate(tree, block, spec)
        return tree

    def _planned_order(
        self,
        block: BlockPlan,
        scans: list[ops.ScanOperator],
        inputs: list[ops.PlanOperator],
    ) -> list[int] | None:
        """The plan's merge order for this block, or None for the builtin.

        The plan orders token scans only; closed-conjunct subplans (unsized)
        stay after all scans, mirroring :func:`ops.rarest_first_order`.  A
        token mismatch (multi-block plans where this block holds a subset of
        the query's tokens) falls back to the builtin order.
        """
        if self.physical is None or not scans:
            return None
        tokens = [token for _, token in block.bindings]
        scan_order = self.physical.order_for(tokens)
        if scan_order is None:
            return None
        return scan_order + list(range(len(scans), len(inputs)))

    def _apply_predicate(
        self, tree: ops.PlanOperator, block: BlockPlan, spec: PredicateSpec
    ) -> ops.PlanOperator:
        predicate = self.registry.get(spec.name)
        attr_indices = [block.attribute_of(var) for var in spec.variables]
        return ops.SelectOperator(tree, predicate, attr_indices, spec.constants)

    # ------------------------------------------------------------- validation
    def _check_polarities(self, plan) -> None:
        polarities = plan_polarities(plan, self.registry)
        if Polarity.NEGATIVE in polarities:
            raise UnsupportedQueryError(
                "query uses negative predicates; use the NPRED engine"
            )
        if Polarity.GENERAL in polarities:
            raise UnsupportedQueryError(
                "query uses predicates without positive advance semantics; "
                "use the COMP engine"
            )
