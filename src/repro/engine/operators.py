"""Pipelined plan operators over inverted-list cursors (PPRED, Algorithms 1–5).

The PPRED evaluation strategy (paper, Section 5.5.3) evaluates an operator
tree without materialising intermediate relations.  Every operator exposes the
same cursor-style API:

* ``advance_node()``      -- move to the next context node that has at least
  one result tuple and position the operator on that node's lexicographically
  smallest tuple; returns the node id or ``None``;
* ``current_node()``      -- the node the operator is currently on;
* ``advance_position(i, min_offset)`` -- within the current node, move to the
  smallest result tuple whose ``i``-th position has offset ``>= min_offset``
  (all other positions at least their current values); returns ``False`` when
  no such tuple exists in the node;
* ``position(i)``         -- the current value of the ``i``-th position.

The operators implemented here are the scan (over one inverted list), the
CNode sort-merge join, the predicate selection driven by positive-predicate
*advance hints*, projection, and the node-level union / difference used for
``OR`` and ``AND NOT`` of closed subqueries.

The API uses ``min_offset`` (advance to *at least* this offset) rather than
the paper's strict ``> pos`` convention; the two are interchangeable
(``> pos`` ≡ ``>= pos + 1``) and the inclusive form composes directly with
the predicates' advance hints.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import EvaluationError
from repro.index.cursor import InvertedListCursor
from repro.model.positions import Position
from repro.model.predicates import Predicate


class PlanOperator:
    """Base class of pipelined plan operators."""

    arity: int = 0

    def advance_node(self) -> int | None:
        raise NotImplementedError

    def current_node(self) -> int | None:
        raise NotImplementedError

    def advance_position(self, index: int, min_offset: int) -> bool:
        raise NotImplementedError

    def position(self, index: int) -> Position:
        raise NotImplementedError

    def positions(self) -> list[Position]:
        """All current positions (convenience for predicates and tests)."""
        return [self.position(i) for i in range(self.arity)]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.arity:
            raise EvaluationError(
                f"position index {index} out of range for arity {self.arity}"
            )


class ScanOperator(PlanOperator):
    """Sequential scan over one token inverted list (one position attribute)."""

    arity = 1

    def __init__(self, cursor: InvertedListCursor) -> None:
        self._cursor = cursor
        self._node: int | None = None
        self._positions: list[Position] = []
        self._pointer = 0

    def advance_node(self) -> int | None:
        node = self._cursor.next_entry()
        self._node = node
        if node is None:
            self._positions = []
            self._pointer = 0
            return None
        self._positions = self._cursor.get_positions()
        self._pointer = 0
        return node

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        if self._node is None:
            return False
        while (
            self._pointer < len(self._positions)
            and self._positions[self._pointer].offset < min_offset
        ):
            self._pointer += 1
        return self._pointer < len(self._positions)

    def position(self, index: int) -> Position:
        self._check_index(index)
        if self._node is None or self._pointer >= len(self._positions):
            raise EvaluationError("scan operator has no current position")
        return self._positions[self._pointer]


class JoinOperator(PlanOperator):
    """CNode sort-merge join (paper, Algorithm 1)."""

    def __init__(self, left: PlanOperator, right: PlanOperator) -> None:
        self.left = left
        self.right = right
        self.arity = left.arity + right.arity
        self._node: int | None = None

    def advance_node(self) -> int | None:
        left_node = self.left.advance_node()
        right_node = self.right.advance_node()
        while (
            left_node is not None
            and right_node is not None
            and left_node != right_node
        ):
            if left_node < right_node:
                left_node = self.left.advance_node()
            else:
                right_node = self.right.advance_node()
        if left_node is None or right_node is None:
            self._node = None
            return None
        self._node = left_node
        return left_node

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        if index < self.left.arity:
            return self.left.advance_position(index, min_offset)
        return self.right.advance_position(index - self.left.arity, min_offset)

    def position(self, index: int) -> Position:
        self._check_index(index)
        if index < self.left.arity:
            return self.left.position(index)
        return self.right.position(index - self.left.arity)


class SelectOperator(PlanOperator):
    """Predicate selection driven by positive-predicate advance hints
    (paper, Algorithm 2)."""

    def __init__(
        self,
        operand: PlanOperator,
        predicate: Predicate,
        attr_indices: Sequence[int],
        constants: Sequence[object] = (),
    ) -> None:
        self.operand = operand
        self.predicate = predicate
        self.attr_indices = tuple(attr_indices)
        self.constants = tuple(constants)
        self.arity = operand.arity
        for idx in self.attr_indices:
            if not 0 <= idx < self.arity:
                raise EvaluationError(
                    f"selection attribute {idx} out of range for arity {self.arity}"
                )

    def advance_node(self) -> int | None:
        node = self.operand.advance_node()
        while node is not None and not self._advance_until_satisfied():
            node = self.operand.advance_node()
        return node

    def current_node(self) -> int | None:
        return self.operand.current_node()

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        if not self.operand.advance_position(index, min_offset):
            return False
        return self._advance_until_satisfied()

    def position(self, index: int) -> Position:
        return self.operand.position(index)

    # ------------------------------------------------------------- internals
    def _advance_until_satisfied(self) -> bool:
        """Advance the input until the predicate holds (single forward scan)."""
        while True:
            current = [self.operand.position(idx) for idx in self.attr_indices]
            if self.predicate.holds(current, self.constants):
                return True
            hints = self.predicate.advance_hints(current, self.constants)
            moved = False
            for local_index, target in hints.items():
                if target > current[local_index].offset:
                    attr = self.attr_indices[local_index]
                    if not self.operand.advance_position(attr, target):
                        return False
                    moved = True
                    break
            if not moved:
                raise EvaluationError(
                    f"predicate {self.predicate.name!r} produced no progressing "
                    "advance hint; it does not satisfy the positive-predicate "
                    "property"
                )


class ProjectOperator(PlanOperator):
    """Projection (paper, Algorithm 3).  ``keep`` lists the attributes retained.

    The common use in query plans is the final projection to ``CNode`` only
    (``keep = ()``), for which only node-level iteration is needed.
    """

    def __init__(self, operand: PlanOperator, keep: Sequence[int] = ()) -> None:
        self.operand = operand
        self.keep = tuple(keep)
        for idx in self.keep:
            if not 0 <= idx < operand.arity:
                raise EvaluationError(
                    f"projection attribute {idx} out of range for arity "
                    f"{operand.arity}"
                )
        self.arity = len(self.keep)

    def advance_node(self) -> int | None:
        return self.operand.advance_node()

    def current_node(self) -> int | None:
        return self.operand.current_node()

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        return self.operand.advance_position(self.keep[index], min_offset)

    def position(self, index: int) -> Position:
        self._check_index(index)
        return self.operand.position(self.keep[index])


class NodeUnionOperator(PlanOperator):
    """Node-level union of two closed subplans (paper, Algorithm 4).

    Both inputs must already be node-level (arity 0); each node id is
    produced exactly once, in ascending order.
    """

    arity = 0

    def __init__(self, left: PlanOperator, right: PlanOperator) -> None:
        if left.arity != 0 or right.arity != 0:
            raise EvaluationError("node-level union requires arity-0 inputs")
        self.left = left
        self.right = right
        self._left_node: int | None = None
        self._right_node: int | None = None
        self._started = False
        self._node: int | None = None

    def advance_node(self) -> int | None:
        if not self._started:
            self._left_node = self.left.advance_node()
            self._right_node = self.right.advance_node()
            self._started = True
        else:
            if self._node is not None:
                if self._left_node == self._node:
                    self._left_node = self.left.advance_node()
                if self._right_node == self._node:
                    self._right_node = self.right.advance_node()
        if self._left_node is None and self._right_node is None:
            self._node = None
        elif self._left_node is None:
            self._node = self._right_node
        elif self._right_node is None:
            self._node = self._left_node
        else:
            self._node = min(self._left_node, self._right_node)
        return self._node

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        raise EvaluationError("node-level union supports node iteration only")

    def position(self, index: int) -> Position:
        raise EvaluationError("node-level union has no position attributes")


class NodeDifferenceOperator(PlanOperator):
    """Node-level set difference (paper, Algorithm 5): left nodes not in right."""

    arity = 0

    def __init__(self, left: PlanOperator, right: PlanOperator) -> None:
        if right.arity != 0:
            raise EvaluationError("node-level difference requires an arity-0 right input")
        self.left = left
        self.right = right
        self._right_node: int | None = None
        self._right_started = False
        self._node: int | None = None

    def advance_node(self) -> int | None:
        while True:
            node = self.left.advance_node()
            if node is None:
                self._node = None
                return None
            if not self._right_started:
                self._right_node = self.right.advance_node()
                self._right_started = True
            while self._right_node is not None and self._right_node < node:
                self._right_node = self.right.advance_node()
            if self._right_node is None or self._right_node != node:
                self._node = node
                return node

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        raise EvaluationError("node-level difference supports node iteration only")

    def position(self, index: int) -> Position:
        raise EvaluationError("node-level difference has no position attributes")


def collect_nodes(operator: PlanOperator) -> list[int]:
    """Drive ``advance_node`` to exhaustion and collect the node ids."""
    result: list[int] = []
    node = operator.advance_node()
    while node is not None:
        result.append(node)
        node = operator.advance_node()
    return result
