"""Pipelined plan operators over inverted-list cursors (PPRED, Algorithms 1–5).

The PPRED evaluation strategy (paper, Section 5.5.3) evaluates an operator
tree without materialising intermediate relations.  Every operator exposes the
same cursor-style API:

* ``advance_node()``      -- move to the next context node that has at least
  one result tuple and position the operator on that node's lexicographically
  smallest tuple; returns the node id or ``None``;
* ``current_node()``      -- the node the operator is currently on;
* ``advance_position(i, min_offset)`` -- within the current node, move to the
  smallest result tuple whose ``i``-th position has offset ``>= min_offset``
  (all other positions at least their current values); returns ``False`` when
  no such tuple exists in the node;
* ``position(i)``         -- the current value of the ``i``-th position.

The operators implemented here are the scan (over one inverted list), the
CNode sort-merge join, the predicate selection driven by positive-predicate
*advance hints*, projection, and the node-level union / difference used for
``OR`` and ``AND NOT`` of closed subqueries.

The API uses ``min_offset`` (advance to *at least* this offset) rather than
the paper's strict ``> pos`` convention; the two are interchangeable
(``> pos`` ≡ ``>= pos + 1``) and the inclusive form composes directly with
the predicates' advance hints.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.exceptions import EvaluationError
from repro.index.cursor import FAST_MODE, InvertedListCursor
from repro.model.positions import Position
from repro.model.predicates import Predicate


class PlanOperator:
    """Base class of pipelined plan operators."""

    arity: int = 0

    def advance_node(self) -> int | None:
        raise NotImplementedError

    def current_node(self) -> int | None:
        raise NotImplementedError

    def advance_node_to(self, target: int) -> int | None:
        """Advance until the current node id is ``>= target``; return it.

        The default implementation steps :meth:`advance_node` repeatedly --
        the paper's sequential cost model.  Operators backed by seek-capable
        cursors override this to skip in O(log n) when the cursor is in fast
        access mode.
        """
        node = self.current_node()
        if node is not None and node >= target:
            return node
        while True:
            node = self.advance_node()
            if node is None or node >= target:
                return node

    def advance_position(self, index: int, min_offset: int) -> bool:
        raise NotImplementedError

    def position(self, index: int) -> Position:
        raise NotImplementedError

    def positions(self) -> list[Position]:
        """All current positions (convenience for predicates and tests)."""
        return [self.position(i) for i in range(self.arity)]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.arity:
            raise EvaluationError(
                f"position index {index} out of range for arity {self.arity}"
            )


class ScanOperator(PlanOperator):
    """Sequential scan over one token inverted list (one position attribute)."""

    arity = 1

    def __init__(self, cursor: InvertedListCursor) -> None:
        self._cursor = cursor
        self._node: int | None = None
        self._positions: list[Position] = []
        self._pointer = 0

    def advance_node(self) -> int | None:
        node = self._cursor.next_entry()
        self._node = node
        if node is None:
            self._positions = []
            self._pointer = 0
            return None
        self._positions = self._cursor.get_positions()
        self._pointer = 0
        return node

    def current_node(self) -> int | None:
        return self._node

    def advance_node_to(self, target: int) -> int | None:
        """Skip to the first entry with node id ``>= target``.

        With a fast-mode cursor this is one galloping seek plus a single
        position fetch at the landing entry; skipped entries never have their
        positions materialised.  With a paper-mode cursor it falls back to
        the sequential stepping of the base class, so the per-entry cost
        accounting of the original implementation is preserved exactly.
        """
        node = self._node
        if node is not None and node >= target:
            return node
        if self._cursor.mode != FAST_MODE:
            # Inline the base class's sequential stepping: this is the
            # innermost loop of every paper-mode merge.
            advance = self.advance_node
            while True:
                node = advance()
                if node is None or node >= target:
                    return node
        if self._cursor.exhausted():
            return None
        node = self._cursor.seek(target)
        self._node = node
        if node is None:
            self._positions = []
            self._pointer = 0
            return None
        self._positions = self._cursor.get_positions()
        self._pointer = 0
        return node

    def entry_count(self) -> int:
        """Length of the underlying inverted list (for rarest-first ordering)."""
        return self._cursor.entry_count()

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        if self._node is None:
            return False
        while (
            self._pointer < len(self._positions)
            and self._positions[self._pointer].offset < min_offset
        ):
            self._pointer += 1
        return self._pointer < len(self._positions)

    def position(self, index: int) -> Position:
        self._check_index(index)
        if self._node is None or self._pointer >= len(self._positions):
            raise EvaluationError("scan operator has no current position")
        return self._positions[self._pointer]


class JoinOperator(PlanOperator):
    """CNode sort-merge join (paper, Algorithm 1)."""

    def __init__(self, left: PlanOperator, right: PlanOperator) -> None:
        self.left = left
        self.right = right
        self.arity = left.arity + right.arity
        self._node: int | None = None

    def advance_node(self) -> int | None:
        left_node = self.left.advance_node()
        right_node = self.right.advance_node()
        while (
            left_node is not None
            and right_node is not None
            and left_node != right_node
        ):
            # Zig-zag: skip the side that is behind up to the other side's
            # node.  With paper-mode cursors this performs (and charges)
            # exactly the sequential steps of the original pairwise loop;
            # with fast-mode cursors each skip is one galloping seek.
            if left_node < right_node:
                left_node = self.left.advance_node_to(right_node)
            else:
                right_node = self.right.advance_node_to(left_node)
        if left_node is None or right_node is None:
            self._node = None
            return None
        self._node = left_node
        return left_node

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        if index < self.left.arity:
            return self.left.advance_position(index, min_offset)
        return self.right.advance_position(index - self.left.arity, min_offset)

    def position(self, index: int) -> Position:
        self._check_index(index)
        if index < self.left.arity:
            return self.left.position(index)
        return self.right.position(index - self.left.arity)


class SelectOperator(PlanOperator):
    """Predicate selection driven by positive-predicate advance hints
    (paper, Algorithm 2)."""

    def __init__(
        self,
        operand: PlanOperator,
        predicate: Predicate,
        attr_indices: Sequence[int],
        constants: Sequence[object] = (),
    ) -> None:
        self.operand = operand
        self.predicate = predicate
        self.attr_indices = tuple(attr_indices)
        self.constants = tuple(constants)
        self.arity = operand.arity
        for idx in self.attr_indices:
            if not 0 <= idx < self.arity:
                raise EvaluationError(
                    f"selection attribute {idx} out of range for arity {self.arity}"
                )

    def advance_node(self) -> int | None:
        node = self.operand.advance_node()
        while node is not None and not self._advance_until_satisfied():
            node = self.operand.advance_node()
        return node

    def current_node(self) -> int | None:
        return self.operand.current_node()

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        if not self.operand.advance_position(index, min_offset):
            return False
        return self._advance_until_satisfied()

    def position(self, index: int) -> Position:
        return self.operand.position(index)

    # ------------------------------------------------------------- internals
    def _advance_until_satisfied(self) -> bool:
        """Advance the input until the predicate holds (single forward scan)."""
        while True:
            current = [self.operand.position(idx) for idx in self.attr_indices]
            if self.predicate.holds(current, self.constants):
                return True
            hints = self.predicate.advance_hints(current, self.constants)
            moved = False
            for local_index, target in hints.items():
                if target > current[local_index].offset:
                    attr = self.attr_indices[local_index]
                    if not self.operand.advance_position(attr, target):
                        return False
                    moved = True
                    break
            if not moved:
                raise EvaluationError(
                    f"predicate {self.predicate.name!r} produced no progressing "
                    "advance hint; it does not satisfy the positive-predicate "
                    "property"
                )


class ProjectOperator(PlanOperator):
    """Projection (paper, Algorithm 3).  ``keep`` lists the attributes retained.

    The common use in query plans is the final projection to ``CNode`` only
    (``keep = ()``), for which only node-level iteration is needed.
    """

    def __init__(self, operand: PlanOperator, keep: Sequence[int] = ()) -> None:
        self.operand = operand
        self.keep = tuple(keep)
        for idx in self.keep:
            if not 0 <= idx < operand.arity:
                raise EvaluationError(
                    f"projection attribute {idx} out of range for arity "
                    f"{operand.arity}"
                )
        self.arity = len(self.keep)

    def advance_node(self) -> int | None:
        return self.operand.advance_node()

    def current_node(self) -> int | None:
        return self.operand.current_node()

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        return self.operand.advance_position(self.keep[index], min_offset)

    def position(self, index: int) -> Position:
        self._check_index(index)
        return self.operand.position(self.keep[index])


class NodeUnionOperator(PlanOperator):
    """Node-level union of two closed subplans (paper, Algorithm 4).

    Both inputs must already be node-level (arity 0); each node id is
    produced exactly once, in ascending order.
    """

    arity = 0

    def __init__(self, left: PlanOperator, right: PlanOperator) -> None:
        if left.arity != 0 or right.arity != 0:
            raise EvaluationError("node-level union requires arity-0 inputs")
        self.left = left
        self.right = right
        self._left_node: int | None = None
        self._right_node: int | None = None
        self._started = False
        self._node: int | None = None

    def advance_node(self) -> int | None:
        if not self._started:
            self._left_node = self.left.advance_node()
            self._right_node = self.right.advance_node()
            self._started = True
        else:
            if self._node is not None:
                if self._left_node == self._node:
                    self._left_node = self.left.advance_node()
                if self._right_node == self._node:
                    self._right_node = self.right.advance_node()
        if self._left_node is None and self._right_node is None:
            self._node = None
        elif self._left_node is None:
            self._node = self._right_node
        elif self._right_node is None:
            self._node = self._left_node
        else:
            self._node = min(self._left_node, self._right_node)
        return self._node

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        raise EvaluationError("node-level union supports node iteration only")

    def position(self, index: int) -> Position:
        raise EvaluationError("node-level union has no position attributes")


class NodeDifferenceOperator(PlanOperator):
    """Node-level set difference (paper, Algorithm 5): left nodes not in right."""

    arity = 0

    def __init__(self, left: PlanOperator, right: PlanOperator) -> None:
        if right.arity != 0:
            raise EvaluationError("node-level difference requires an arity-0 right input")
        self.left = left
        self.right = right
        self._right_node: int | None = None
        self._right_started = False
        self._node: int | None = None

    def advance_node(self) -> int | None:
        while True:
            node = self.left.advance_node()
            if node is None:
                self._node = None
                return None
            if not self._right_started:
                self._right_node = self.right.advance_node()
                self._right_started = True
            while self._right_node is not None and self._right_node < node:
                self._right_node = self.right.advance_node()
            if self._right_node is None or self._right_node != node:
                self._node = node
                return node

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        raise EvaluationError("node-level difference supports node iteration only")

    def position(self, index: int) -> Position:
        raise EvaluationError("node-level difference has no position attributes")


class ZigZagJoinOperator(PlanOperator):
    """N-ary zig-zag (leapfrog) node merge over seek-capable inputs.

    Generalises :class:`JoinOperator` to ``n`` inputs: instead of a left-deep
    chain of pairwise sort-merges, one merge loop advances whichever input is
    behind the current candidate node directly to it via
    :meth:`PlanOperator.advance_node_to` -- a galloping seek when the input
    is a fast-mode :class:`ScanOperator`.  ``merge_order`` fixes the order in
    which inputs are visited (rarest list first pays off: the rarest input
    generates candidates, so the common inputs only ever seek); attribute
    indices are *not* affected by it -- they follow the input order, exactly
    as in a left-deep join chain.
    """

    def __init__(
        self,
        inputs: Sequence[PlanOperator],
        merge_order: Sequence[int] | None = None,
    ) -> None:
        if not inputs:
            raise EvaluationError("a zig-zag join needs at least one input")
        self.inputs = list(inputs)
        self.arity = sum(op.arity for op in self.inputs)
        offsets = []
        total = 0
        for op in self.inputs:
            offsets.append(total)
            total += op.arity
        self._attr_offsets = offsets
        order = (
            list(merge_order)
            if merge_order is not None
            else list(range(len(self.inputs)))
        )
        if sorted(order) != list(range(len(self.inputs))):
            raise EvaluationError(
                f"merge order {order!r} is not a permutation of the "
                f"{len(self.inputs)} inputs"
            )
        self._order = order
        self._node: int | None = None

    def advance_node(self) -> int | None:
        lead = self.inputs[self._order[0]]
        candidate = lead.advance_node()
        if candidate is None:
            self._node = None
            return None
        self._node = self._align(candidate)
        return self._node

    def _align(self, candidate: int) -> int | None:
        """Advance inputs (in merge order) until all sit on one node."""
        while True:
            aligned = True
            for index in self._order:
                # advance_node_to returns the current node unchanged (and
                # uncharged) when it is already >= candidate.
                node = self.inputs[index].advance_node_to(candidate)
                if node is None:
                    return None
                if node > candidate:
                    candidate = node
                    aligned = False
            if aligned:
                return candidate

    def current_node(self) -> int | None:
        return self._node

    def advance_position(self, index: int, min_offset: int) -> bool:
        self._check_index(index)
        operator, local = self._locate(index)
        return operator.advance_position(local, min_offset)

    def position(self, index: int) -> Position:
        self._check_index(index)
        operator, local = self._locate(index)
        return operator.position(local)

    def _locate(self, index: int) -> tuple[PlanOperator, int]:
        """Map a global attribute index to (input operator, local index)."""
        for op_index in range(len(self.inputs) - 1, -1, -1):
            offset = self._attr_offsets[op_index]
            if index >= offset:
                return self.inputs[op_index], index - offset
        raise EvaluationError(f"attribute {index} does not map to any input")


def rarest_first_order(inputs: Sequence[PlanOperator]) -> list[int]:
    """Merge order visiting the smallest inverted lists first.

    Inputs that expose :meth:`ScanOperator.entry_count` are sorted by list
    length; inputs without a size estimate (closed subplans, nested joins)
    keep their relative order after all sized inputs.
    """
    def sort_key(pair: tuple[int, PlanOperator]) -> tuple[int, int, int]:
        index, operator = pair
        count = getattr(operator, "entry_count", None)
        if callable(count):
            return (0, count(), index)
        return (1, 0, index)

    return [index for index, _ in sorted(enumerate(inputs), key=sort_key)]


def zigzag_node_intersect(
    cursors: Sequence[InvertedListCursor],
    merge_order: Sequence[int] | None = None,
) -> list[int]:
    """Node-granularity intersection of inverted lists by zig-zag merge.

    The shared merge kernel of the BOOL fast path: cursors are visited
    rarest-list-first, the rarest cursor generates candidate nodes and every
    other cursor seeks to them, so the work is bounded by the shortest list
    (times a logarithmic seek factor) instead of the sum of all list lengths.

    ``merge_order`` (a permutation of cursor indices, lead first) overrides
    the builtin entry-count ordering -- the hook the cost-based planner uses
    to lead with the feedback-corrected cheapest list.  The intersection
    result is the same set either way; only the cursor-op profile changes.
    """
    if not cursors:
        return []
    if merge_order is not None:
        if sorted(merge_order) != list(range(len(cursors))):
            raise EvaluationError(
                f"merge order {list(merge_order)!r} is not a permutation of "
                f"the {len(cursors)} cursors"
            )
        order = [cursors[index] for index in merge_order]
    else:
        order = sorted(cursors, key=lambda cursor: cursor.entry_count())
    lead = order[0]
    result: list[int] = []
    candidate = lead.next_entry()
    if candidate is None:
        return result
    while True:
        aligned = True
        for cursor in order:
            # seek returns the current node unchanged (and uncharged) when
            # it is already at or past the candidate.
            node = cursor.seek(candidate)
            if node is None:
                return result
            if node > candidate:
                candidate = node
                aligned = False
        if aligned:
            result.append(candidate)
            candidate = lead.next_entry()
            if candidate is None:
                return result


def collect_nodes(
    operator: PlanOperator, observer: "Callable[[int], None] | None" = None
) -> list[int]:
    """Drive ``advance_node`` to exhaustion and collect the node ids.

    ``observer`` is called with each node id as it is produced -- the hook
    the top-k pushdown uses to score-and-prune candidates *while* the cursor
    merge is still running, instead of in a second pass over the finished
    list.  Pass it only when every produced node is a final result (the
    PPRED root operator); intermediate merges must not observe.
    """
    result: list[int] = []
    node = operator.advance_node()
    if observer is None:
        while node is not None:
            result.append(node)
            node = operator.advance_node()
        return result
    while node is not None:
        result.append(node)
        observer(node)
        node = operator.advance_node()
    return result
