"""The BOOL / BOOL-NONEG evaluation engine (paper, Section 5.3).

BOOL queries ignore positions entirely, so evaluation is a merge of the
query-token inverted lists at the granularity of node ids:

* a string literal contributes the node ids of its inverted list;
* ``ANY`` contributes the node ids of ``IL_ANY``;
* ``AND`` intersects, ``OR`` unites;
* ``NOT`` complements with respect to the search context (which is why BOOL
  with unrestricted negation is charged for a scan of ``IL_ANY`` /
  ``SearchContext`` in the complexity model, while BOOL-NONEG -- negation
  only as ``... AND NOT ...`` -- never needs it).

Scoring: following Section 5.3 ("a scoring formula is associated with each
Boolean operator"), the engine can propagate per-node scores through the
Boolean operators of the query using a :class:`~repro.scoring.base.ScoringModel`:
token leaves start from the model's per-token document score, AND uses the
model's intersection rule, OR its union rule, and NOT complements
probabilistic scores (``1 - s``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import UnsupportedQueryError
from repro.index.cursor import CursorFactory, CursorStats
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.languages.bool_lang import is_bool_query
from repro.scoring.base import ScoringModel


@dataclass
class _NodeSet:
    """A sorted node-id list with optional per-node scores."""

    nodes: list[int]
    scores: dict[int, float]


class BoolEngine:
    """Merge-based evaluation of BOOL queries over inverted lists."""

    name = "bool"

    def __init__(self, index: InvertedIndex, scoring: ScoringModel | None = None) -> None:
        self.index = index
        self.scoring = scoring

    # ------------------------------------------------------------------ API
    def evaluate(self, query: ast.QueryNode) -> list[int]:
        """Node ids satisfying ``query``, ascending."""
        return self.evaluate_with_stats(query)[0]

    def evaluate_scored(self, query: ast.QueryNode) -> dict[int, float]:
        """Node id -> propagated score for the matching nodes."""
        result, _ = self._evaluate(query)
        return {node: result.scores.get(node, 0.0) for node in result.nodes}

    def evaluate_with_stats(
        self, query: ast.QueryNode
    ) -> tuple[list[int], CursorStats]:
        result, stats = self._evaluate(query)
        return result.nodes, stats

    # ------------------------------------------------------------- internals
    def _evaluate(self, query: ast.QueryNode) -> tuple[_NodeSet, CursorStats]:
        if not is_bool_query(query):
            raise UnsupportedQueryError(
                "the BOOL engine only evaluates BOOL queries (string literals, "
                "ANY, NOT, AND, OR)"
            )
        factory = CursorFactory()
        result = self._eval(query, factory)
        return result, factory.collect_stats()

    def _eval(self, node: ast.QueryNode, factory: CursorFactory) -> _NodeSet:
        if isinstance(node, ast.TokenQuery):
            return self._token_leaf(node.token, factory)
        if isinstance(node, ast.AnyQuery):
            return self._any_leaf(factory)
        if isinstance(node, ast.AndQuery):
            return self._intersect(
                self._eval(node.left, factory), self._eval(node.right, factory)
            )
        if isinstance(node, ast.OrQuery):
            return self._union(
                self._eval(node.left, factory), self._eval(node.right, factory)
            )
        if isinstance(node, ast.NotQuery):
            return self._complement(self._eval(node.operand, factory))
        raise UnsupportedQueryError(
            f"construct {type(node).__name__} is outside the BOOL grammar"
        )

    # ---------------------------------------------------------------- leaves
    def _token_leaf(self, token: str, factory: CursorFactory) -> _NodeSet:
        cursor = self.index.open_cursor(token, factory)
        nodes: list[int] = []
        node = cursor.next_entry()
        while node is not None:
            nodes.append(node)
            node = cursor.next_entry()
        scores: dict[int, float] = {}
        if self.scoring is not None:
            previous = self.scoring.query_tokens
            self.scoring.prepare([token])
            scores = {nid: self.scoring.document_score(nid) for nid in nodes}
            self.scoring.prepare(previous)
        return _NodeSet(nodes, scores)

    def _any_leaf(self, factory: CursorFactory) -> _NodeSet:
        cursor = self.index.open_any_cursor(factory)
        nodes: list[int] = []
        node = cursor.next_entry()
        while node is not None:
            nodes.append(node)
            node = cursor.next_entry()
        return _NodeSet(nodes, {nid: 1.0 for nid in nodes} if self.scoring else {})

    # ------------------------------------------------------------ operators
    def _intersect(self, left: _NodeSet, right: _NodeSet) -> _NodeSet:
        right_set = set(right.nodes)
        nodes = [nid for nid in left.nodes if nid in right_set]
        scores = {}
        if self.scoring is not None:
            scores = {
                nid: self.scoring.combine_intersection(
                    left.scores.get(nid, 0.0), right.scores.get(nid, 0.0)
                )
                for nid in nodes
            }
        return _NodeSet(nodes, scores)

    def _union(self, left: _NodeSet, right: _NodeSet) -> _NodeSet:
        nodes = sorted(set(left.nodes) | set(right.nodes))
        scores = {}
        if self.scoring is not None:
            scores = {
                nid: self.scoring.combine_union(
                    left.scores.get(nid, 0.0), right.scores.get(nid, 0.0)
                )
                for nid in nodes
            }
        return _NodeSet(nodes, scores)

    def _complement(self, operand: _NodeSet) -> _NodeSet:
        matched = set(operand.nodes)
        nodes = [nid for nid in self.index.node_ids() if nid not in matched]
        scores = {}
        if self.scoring is not None:
            scores = {
                nid: 1.0 - operand.scores.get(nid, 0.0) for nid in nodes
            }
        return _NodeSet(nodes, scores)
