"""The BOOL / BOOL-NONEG evaluation engine (paper, Section 5.3).

BOOL queries ignore positions entirely, so evaluation is a merge of the
query-token inverted lists at the granularity of node ids:

* a string literal contributes the node ids of its inverted list;
* ``ANY`` contributes the node ids of ``IL_ANY``;
* ``AND`` intersects, ``OR`` unites;
* ``NOT`` complements with respect to the search context (which is why BOOL
  with unrestricted negation is charged for a scan of ``IL_ANY`` /
  ``SearchContext`` in the complexity model, while BOOL-NONEG -- negation
  only as ``... AND NOT ...`` -- never needs it).

Scoring: following Section 5.3 ("a scoring formula is associated with each
Boolean operator"), the engine can propagate per-node scores through the
Boolean operators of the query using a :class:`~repro.scoring.base.ScoringModel`:
token leaves start from the model's per-token document score, AND uses the
model's intersection rule, OR its union rule, and NOT complements
probabilistic scores (``1 - s``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import UnsupportedQueryError
from repro.index.cursor import FAST_MODE, PAPER_MODE, CursorFactory, CursorStats, check_access_mode
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.languages.bool_lang import is_bool_query
from repro.scoring.base import ScoringModel
from repro.engine.operators import zigzag_node_intersect
from repro.planner.optimizer import ANY_TOKEN
from repro.planner.physical import PhysicalPlan


@dataclass
class _NodeSet:
    """A sorted node-id list with optional per-node scores."""

    nodes: list[int]
    scores: dict[int, float]


class BoolEngine:
    """Merge-based evaluation of BOOL queries over inverted lists.

    ``access_mode`` selects how conjunctions read the inverted lists: in
    ``"paper"`` mode every query-token list is scanned to the end and the
    node sets are merged (the cost model of Section 5.3); in ``"fast"`` mode
    AND chains run the shared zig-zag merge over seek-capable cursors
    (:func:`repro.engine.operators.zigzag_node_intersect`), rarest list
    first, which touches only a logarithmic fraction of the longer lists.
    """

    name = "bool"

    def __init__(
        self,
        index: InvertedIndex,
        scoring: ScoringModel | None = None,
        access_mode: str = PAPER_MODE,
        physical: PhysicalPlan | None = None,
    ) -> None:
        self.index = index
        self.scoring = scoring
        self.access_mode = check_access_mode(access_mode)
        #: The planner's physical plan, when one was produced.  The engine
        #: consults it for the merge strategy and join order of conjunction
        #: leaves; ``None`` (optimizer off) and "auto" choices defer to the
        #: builtin static heuristics below.  Either way the node sets and
        #: scores are identical -- the plan only redirects cursor traffic.
        self.physical = physical

    # ------------------------------------------------------------------ API
    def evaluate(self, query: ast.QueryNode) -> list[int]:
        """Node ids satisfying ``query``, ascending."""
        return self.evaluate_with_stats(query)[0]

    def evaluate_scored(self, query: ast.QueryNode) -> dict[int, float]:
        """Node id -> propagated score for the matching nodes."""
        result, _ = self._evaluate(query)
        return {node: result.scores.get(node, 0.0) for node in result.nodes}

    def evaluate_with_stats(
        self,
        query: ast.QueryNode,
        factory: CursorFactory | None = None,
        observer=None,
    ) -> tuple[list[int], CursorStats]:
        """Evaluate; ``observer`` sees each result node exactly once.

        BOOL evaluation materialises node sets (OR / NOT / nested
        conjuncts), so unlike the PPRED pipeline the observer is fed after
        the merge finishes -- the top-k collector behind it only needs every
        final node once, in any order.
        """
        result, stats = self._evaluate(query, factory)
        if observer is not None:
            for node_id in result.nodes:
                observer(node_id)
        return result.nodes, stats

    # ------------------------------------------------------------- internals
    def _evaluate(
        self, query: ast.QueryNode, factory: CursorFactory | None = None
    ) -> tuple[_NodeSet, CursorStats]:
        if not is_bool_query(query):
            raise UnsupportedQueryError(
                "the BOOL engine only evaluates BOOL queries (string literals, "
                "ANY, NOT, AND, OR)"
            )
        if factory is None:
            factory = CursorFactory(mode=self.access_mode)
        result = self._eval(query, factory)
        return result, factory.collect_stats()

    def _eval(self, node: ast.QueryNode, factory: CursorFactory) -> _NodeSet:
        if isinstance(node, ast.TokenQuery):
            return self._token_leaf(node.token, factory)
        if isinstance(node, ast.AnyQuery):
            return self._any_leaf(factory)
        if isinstance(node, ast.AndQuery):
            if self.access_mode == FAST_MODE:
                return self._intersect_fast(node, factory)
            return self._intersect(
                self._eval(node.left, factory), self._eval(node.right, factory)
            )
        if isinstance(node, ast.OrQuery):
            return self._union(
                self._eval(node.left, factory), self._eval(node.right, factory)
            )
        if isinstance(node, ast.NotQuery):
            return self._complement(self._eval(node.operand, factory))
        raise UnsupportedQueryError(
            f"construct {type(node).__name__} is outside the BOOL grammar"
        )

    # ---------------------------------------------------------------- leaves
    def _token_leaf(self, token: str, factory: CursorFactory) -> _NodeSet:
        cursor = self.index.open_cursor(token, factory)
        nodes: list[int] = []
        node = cursor.next_entry()
        while node is not None:
            nodes.append(node)
            node = cursor.next_entry()
        scores: dict[int, float] = {}
        if self.scoring is not None:
            previous = self.scoring.query_tokens
            self.scoring.prepare([token])
            scores = {nid: self.scoring.document_score(nid) for nid in nodes}
            self.scoring.prepare(previous)
        return _NodeSet(nodes, scores)

    def _any_leaf(self, factory: CursorFactory) -> _NodeSet:
        cursor = self.index.open_any_cursor(factory)
        nodes: list[int] = []
        node = cursor.next_entry()
        while node is not None:
            nodes.append(node)
            node = cursor.next_entry()
        return _NodeSet(nodes, {nid: 1.0 for nid in nodes} if self.scoring else {})

    #: The zig-zag merge pays off when the rarest list is at most this
    #: fraction of the longest one; above it, skip gaps are so short that
    #: the sequential full-scan merge is cheaper than per-entry seeks.
    ZIGZAG_SELECTIVITY_RATIO = 6

    # ------------------------------------------------------------ operators
    def _intersect_fast(self, node: ast.AndQuery, factory: CursorFactory) -> _NodeSet:
        """Evaluate an AND chain with the shared zig-zag cursor merge.

        The chain is flattened; token/ANY leaves are merged in one n-ary
        zig-zag pass (rarest list first), and any non-leaf conjuncts (OR and
        NOT subqueries) are evaluated recursively and intersected at node
        level.  Scores are folded left-to-right over the original conjunct
        order, so scored results match the pairwise evaluation exactly.

        The zig-zag is only engaged when the leaf lists have a real
        selectivity gap (see ``ZIGZAG_SELECTIVITY_RATIO``); near-equal list
        lengths fall back to the sequential merge, which the cost model and
        measurements agree is faster there.
        """
        conjuncts = _flatten_and(node)
        leaf_indices = [
            index
            for index, conjunct in enumerate(conjuncts)
            if isinstance(conjunct, (ast.TokenQuery, ast.AnyQuery))
        ]
        leaves = [conjuncts[index] for index in leaf_indices]
        planned = self.physical.use_zigzag() if self.physical is not None else None
        if planned is None:
            use_zigzag = len(leaf_indices) >= 2 and self._zigzag_pays_off(leaves)
        else:
            use_zigzag = planned and len(leaf_indices) >= 2
        if not use_zigzag:
            return self._intersect(
                self._eval(node.left, factory), self._eval(node.right, factory)
            )
        cursors = [
            self.index.open_any_cursor(factory)
            if isinstance(conjuncts[index], ast.AnyQuery)
            else self.index.open_cursor(conjuncts[index].token, factory)
            for index in leaf_indices
        ]
        merge_order = None
        if self.physical is not None:
            leaf_names = [
                ANY_TOKEN if isinstance(leaf, ast.AnyQuery) else leaf.token
                for leaf in leaves
            ]
            merge_order = self.physical.order_for(leaf_names)
        nodes = zigzag_node_intersect(cursors, merge_order)
        leaf_set = set(leaf_indices)
        evaluated: dict[int, _NodeSet] = {
            index: self._eval(conjunct, factory)
            for index, conjunct in enumerate(conjuncts)
            if index not in leaf_set
        }
        for other in evaluated.values():
            members = set(other.nodes)
            nodes = [nid for nid in nodes if nid in members]
        scores: dict[int, float] = {}
        if self.scoring is not None and nodes:
            folded: dict[int, float] | None = None
            for index, conjunct in enumerate(conjuncts):
                current = self._conjunct_scores(conjunct, nodes, evaluated.get(index))
                if folded is None:
                    folded = current
                else:
                    folded = {
                        nid: self.scoring.combine_intersection(
                            folded[nid], current[nid]
                        )
                        for nid in nodes
                    }
            scores = folded or {}
        return _NodeSet(nodes, scores)

    def _zigzag_pays_off(self, leaves: list[ast.QueryNode]) -> bool:
        """Cost-based choice between the zig-zag merge and full scans."""
        counts = [
            len(self.index.any_list())
            if isinstance(leaf, ast.AnyQuery)
            else self.index.posting_list(leaf.token).document_frequency()
            for leaf in leaves
        ]
        smallest = min(counts)
        if smallest == 0:
            return True  # an empty list short-circuits the merge immediately
        return smallest * self.ZIGZAG_SELECTIVITY_RATIO <= max(counts)

    def _conjunct_scores(
        self,
        conjunct: ast.QueryNode,
        nodes: list[int],
        evaluated: _NodeSet | None,
    ) -> dict[int, float]:
        """Per-node scores of one AND conjunct, restricted to ``nodes``."""
        if evaluated is not None:
            return {nid: evaluated.scores.get(nid, 0.0) for nid in nodes}
        if isinstance(conjunct, ast.AnyQuery):
            return {nid: 1.0 for nid in nodes}
        previous = self.scoring.query_tokens
        self.scoring.prepare([conjunct.token])
        scores = {nid: self.scoring.document_score(nid) for nid in nodes}
        self.scoring.prepare(previous)
        return scores

    def _intersect(self, left: _NodeSet, right: _NodeSet) -> _NodeSet:
        right_set = set(right.nodes)
        nodes = [nid for nid in left.nodes if nid in right_set]
        scores = {}
        if self.scoring is not None:
            scores = {
                nid: self.scoring.combine_intersection(
                    left.scores.get(nid, 0.0), right.scores.get(nid, 0.0)
                )
                for nid in nodes
            }
        return _NodeSet(nodes, scores)

    def _union(self, left: _NodeSet, right: _NodeSet) -> _NodeSet:
        nodes = sorted(set(left.nodes) | set(right.nodes))
        scores = {}
        if self.scoring is not None:
            scores = {
                nid: self.scoring.combine_union(
                    left.scores.get(nid, 0.0), right.scores.get(nid, 0.0)
                )
                for nid in nodes
            }
        return _NodeSet(nodes, scores)

    def _complement(self, operand: _NodeSet) -> _NodeSet:
        matched = set(operand.nodes)
        nodes = [nid for nid in self.index.node_ids() if nid not in matched]
        scores = {}
        if self.scoring is not None:
            scores = {
                nid: 1.0 - operand.scores.get(nid, 0.0) for nid in nodes
            }
        return _NodeSet(nodes, scores)


def _flatten_and(node: ast.QueryNode) -> list[ast.QueryNode]:
    """The conjuncts of an AND chain in left-to-right (tree) order."""
    if isinstance(node, ast.AndQuery):
        return _flatten_and(node.left) + _flatten_and(node.right)
    return [node]
