"""Query plans for the pipelined engines (PPRED and NPRED).

The PPRED/NPRED grammars are, in practice, built from *conjunctive blocks*:
a group of ``SOME`` quantifiers binding position variables to tokens
(``var HAS 'tok'`` or bare string literals), a set of position predicates
over those variables, optional ``AND NOT closed-subquery`` conjuncts
(evaluated independently and subtracted at node level), and optional closed
conjuncts such as a parenthesised ``OR`` of keywords (joined at node level).
``OR`` combines closed blocks at node level.

:func:`extract_plan` converts a (closed) surface query into this structure
-- a tree of :class:`BlockPlan`, :class:`UnionPlan`, :class:`DifferencePlan`
and :class:`IntersectPlan` nodes -- and reports *why* a query falls outside
the supported shape via :class:`~repro.exceptions.UnsupportedQueryError`
(the executor then falls back to the naive COMP engine).

The mapping from a block plan to operator trees (Figure 4 of the paper) is
done by the engines themselves, because PPRED and NPRED build different
operators for the same block.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import UnsupportedQueryError
from repro.languages import ast
from repro.model.predicates import Polarity, PredicateRegistry, default_registry


@dataclass(frozen=True)
class PredicateSpec:
    """One predicate application inside a block, referring to block variables."""

    name: str
    variables: tuple[str, ...]
    constants: tuple = ()


@dataclass
class BlockPlan:
    """A conjunctive block: token bindings, predicates, and node-level extras."""

    #: ordered (variable, token) bindings; anonymous literals get fresh names.
    bindings: list[tuple[str, str]] = field(default_factory=list)
    predicates: list[PredicateSpec] = field(default_factory=list)
    #: closed subqueries subtracted from the block at node level (AND NOT ...).
    negated: list["PlanNode"] = field(default_factory=list)
    #: closed subplans intersected with the block at node level.
    closed_conjuncts: list["PlanNode"] = field(default_factory=list)

    def variables(self) -> list[str]:
        return [var for var, _ in self.bindings]

    def attribute_of(self, var: str) -> int:
        try:
            return self.variables().index(var)
        except ValueError as exc:
            raise UnsupportedQueryError(
                f"predicate variable {var!r} is not bound to a token in its block"
            ) from exc

    def polarities(self, registry: PredicateRegistry) -> set[Polarity]:
        return {registry.polarity_of(spec.name) for spec in self.predicates}


@dataclass
class UnionPlan:
    """Node-level union of two closed subplans (OR)."""

    left: "PlanNode"
    right: "PlanNode"


@dataclass
class DifferencePlan:
    """Node-level difference: ``left AND NOT right`` for closed subplans."""

    left: "PlanNode"
    right: "PlanNode"


@dataclass
class IntersectPlan:
    """Node-level intersection of two closed subplans (AND of closed queries)."""

    left: "PlanNode"
    right: "PlanNode"


PlanNode = "BlockPlan | UnionPlan | DifferencePlan | IntersectPlan"


def extract_plan(
    query: ast.QueryNode, registry: PredicateRegistry | None = None
) -> "BlockPlan | UnionPlan | DifferencePlan | IntersectPlan":
    """Build the pipelined-engine plan of a closed surface query.

    Raises :class:`UnsupportedQueryError` when the query uses constructs the
    pipelined engines cannot evaluate over inverted lists without ``IL_ANY``
    (EVERY, ANY, free-standing negation, open OR branches, ...).
    """
    registry = registry or default_registry()
    if not query.is_closed():
        raise UnsupportedQueryError(
            f"query has unbound position variables: {sorted(query.free_variables())}"
        )
    builder = _PlanBuilder(registry)
    return builder.build(query)


class _PlanBuilder:
    def __init__(self, registry: PredicateRegistry) -> None:
        self.registry = registry
        self._fresh = itertools.count(1)

    # ------------------------------------------------------------------ API
    def build(self, node: ast.QueryNode):
        if isinstance(node, ast.OrQuery):
            left, right = node.left, node.right
            if not left.is_closed() or not right.is_closed():
                raise UnsupportedQueryError(
                    "OR branches sharing position variables bound outside the OR "
                    "are not supported by the pipelined engines"
                )
            return UnionPlan(self.build(left), self.build(right))
        if isinstance(node, ast.NotQuery):
            raise UnsupportedQueryError(
                "free-standing negation requires the IL_ANY list (BOOL/COMP only)"
            )
        return self._build_block(node)

    # ------------------------------------------------------------- internals
    def _build_block(self, node: ast.QueryNode) -> "BlockPlan":
        block = BlockPlan()
        self._collect(node, block)
        if not block.bindings and not block.closed_conjuncts:
            raise UnsupportedQueryError(
                "a conjunctive block needs at least one positive token "
                "or closed conjunct"
            )
        # Every predicate variable must be bound to a scanned token.
        for spec in block.predicates:
            for var in spec.variables:
                block.attribute_of(var)
        return block

    def _collect(self, node: ast.QueryNode, block: "BlockPlan") -> None:
        if isinstance(node, ast.SomeQuery):
            self._collect(node.operand, block)
            return
        if isinstance(node, ast.AndQuery):
            self._collect(node.left, block)
            self._collect(node.right, block)
            return
        if isinstance(node, ast.VarHasToken):
            block.bindings.append((node.var, node.token))
            return
        if isinstance(node, ast.TokenQuery):
            block.bindings.append((self._fresh_var(), node.token))
            return
        if isinstance(node, ast.PredQuery):
            block.predicates.append(
                PredicateSpec(node.name, node.variables, node.constants)
            )
            return
        if isinstance(node, ast.DistQuery):
            if node.first is None or node.second is None:
                raise UnsupportedQueryError(
                    "dist() with ANY requires the IL_ANY list (BOOL/COMP only)"
                )
            first_var = self._fresh_var()
            second_var = self._fresh_var()
            block.bindings.append((first_var, node.first))
            block.bindings.append((second_var, node.second))
            block.predicates.append(
                PredicateSpec("distance", (first_var, second_var), (node.limit,))
            )
            return
        if isinstance(node, ast.NotQuery):
            if not node.operand.is_closed():
                raise UnsupportedQueryError(
                    "negated subqueries must be closed (no free position variables)"
                )
            block.negated.append(self.build(node.operand))
            return
        if isinstance(node, ast.OrQuery):
            if not node.is_closed():
                raise UnsupportedQueryError(
                    "an OR conjunct inside a block must be closed"
                )
            block.closed_conjuncts.append(self.build(node))
            return
        if isinstance(node, (ast.AnyQuery, ast.VarHasAny)):
            raise UnsupportedQueryError(
                "the universal token ANY requires the IL_ANY list (BOOL/COMP only)"
            )
        if isinstance(node, ast.EveryQuery):
            raise UnsupportedQueryError(
                "the EVERY quantifier is only supported by the COMP engine"
            )
        raise UnsupportedQueryError(
            f"unsupported construct {type(node).__name__} in a conjunctive block"
        )

    def _fresh_var(self) -> str:
        return f"_tok{next(self._fresh)}"


def plan_blocks(plan) -> list[BlockPlan]:
    """All conjunctive blocks reachable from a plan (for classification/stats)."""
    if isinstance(plan, BlockPlan):
        result = [plan]
        for nested in plan.negated + plan.closed_conjuncts:
            result.extend(plan_blocks(nested))
        return result
    if isinstance(plan, (UnionPlan, DifferencePlan, IntersectPlan)):
        return plan_blocks(plan.left) + plan_blocks(plan.right)
    return []


def plan_polarities(plan, registry: PredicateRegistry | None = None) -> set[Polarity]:
    """Union of predicate polarities over every block of a plan."""
    registry = registry or default_registry()
    polarities: set[Polarity] = set()
    for block in plan_blocks(plan):
        polarities |= block.polarities(registry)
    return polarities


def describe_plan(plan, indent: int = 0) -> str:
    """Human-readable rendering of a plan tree (used by examples and docs)."""
    pad = "  " * indent
    if isinstance(plan, BlockPlan):
        lines = [f"{pad}Block"]
        for var, token in plan.bindings:
            lines.append(f"{pad}  scan {var} <- '{token}'")
        for spec in plan.predicates:
            args = ", ".join(spec.variables) + "".join(
                f", {const}" for const in spec.constants
            )
            lines.append(f"{pad}  select {spec.name}({args})")
        for nested in plan.closed_conjuncts:
            lines.append(f"{pad}  intersect-with:")
            lines.append(describe_plan(nested, indent + 2))
        for nested in plan.negated:
            lines.append(f"{pad}  minus:")
            lines.append(describe_plan(nested, indent + 2))
        return "\n".join(lines)
    name = type(plan).__name__.replace("Plan", "").lower()
    return "\n".join(
        [
            f"{pad}{name}",
            describe_plan(plan.left, indent + 1),
            describe_plan(plan.right, indent + 1),
        ]
    )
