"""Score-bounded top-k collection (the ranked-search pushdown).

Rank-then-truncate scores **every** matching node, sorts the full list and
throws away all but ``k`` pairs -- on a broad query that is the dominant
cost of a ``top_k=10`` search.  :class:`TopKCollector` replaces it with a
bounded min-heap maintained *during* evaluation:

* the engines feed every matching node id to the collector exactly once (in
  any order -- the heap does not care);
* once the heap holds ``k`` candidates, a new node is first checked against
  the model's :meth:`~repro.scoring.base.ScoringModel.score_upper_bound`;
  when the bound cannot beat the heap floor the node is skipped without ever
  computing its document score (MaxScore-style pruning);
* surviving nodes get their exact :meth:`document_score` and displace the
  floor when they beat it under the global ``(-score, node_id)`` ranking
  order.

Exactness: because a skipped node's true score is ``<=`` its upper bound
``<`` the floor, and the floor never decreases, the final heap contains
precisely the ``k`` best ``(score, node_id)`` pairs -- ids, scores and order
are identical to sorting the full ranking and slicing ``[:k]``.  This is the
contract the equivalence suite (``tests/engine/test_topk_pushdown.py`` and
``tests/cluster/test_topk_equivalence.py``) pins across every engine, access
mode, scoring model and shard count.
"""

from __future__ import annotations

import heapq

from repro.scoring.base import ScoringModel


def check_top_k(top_k: "int | None") -> "int | None":
    """Validate a ``top_k`` argument (``None`` = unbounded, else ``>= 1``).

    Shared by every entry point that accepts a top-k cut
    (:class:`~repro.core.engine.FullTextEngine`,
    :class:`~repro.engine.executor.Executor`,
    :class:`~repro.cluster.scatter.ScatterGatherExecutor` and the CLI), so a
    non-positive ``k`` fails loudly and identically everywhere instead of
    silently returning an empty -- or, for negative slices, truncated --
    ranking on some paths only.
    """
    if top_k is None:
        return None
    if not isinstance(top_k, int) or isinstance(top_k, bool):
        raise ValueError(f"top_k must be a positive integer or None, got {top_k!r}")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    return top_k


class TopKCollector:
    """Exact best-``k`` ``(node_id, score)`` pairs of a node stream.

    Heap entries are ``(score, -node_id)`` so the heap minimum is always the
    *worst* retained candidate under the ranking order "higher score first,
    ties by lower node id" -- the exact comparator of
    :meth:`~repro.engine.executor.EvaluationResult.ranked`.

    With ``scoring=None`` results rank by node id alone (all scores 0.0),
    matching the unscored full path; the heap then simply retains the ``k``
    smallest ids.
    """

    #: Stop computing upper bounds after this many full-heap candidates in a
    #: row survived the bound test without a single prune: on workloads
    #: where the bound cannot discriminate (e.g. every document near the
    #: per-token occurrence cap) the check is pure overhead, and a floor
    #: that has not pruned anything across this many candidates is very
    #: unlikely to start.  Results are unaffected -- pruning is only ever an
    #: optimisation -- the query just degrades to score-everything + heap.
    GIVE_UP_AFTER = 1024

    def __init__(
        self,
        k: int,
        scoring: ScoringModel | None,
        give_up_after: int | None = None,
    ) -> None:
        self.k = check_top_k(k)
        self.scoring = scoring
        self._heap: list[tuple[float, int]] = []
        #: The give-up threshold is plan-selectable: the planner ships 0 for
        #: queries whose bounds it already knows to be non-discriminating
        #: (plain-heap strategy -- no bound probes at all), and ``None``
        #: keeps the class default.  Results never depend on this knob.
        self.give_up_after = (
            self.GIVE_UP_AFTER if give_up_after is None else give_up_after
        )
        self._bounds_enabled = scoring is not None and self.give_up_after > 0
        self._fruitless_checks = 0
        #: Nodes whose document score was actually computed / skipped via the
        #: upper-bound test -- the observability hook the benchmark reports.
        self.scored = 0
        self.pruned = 0

    # ------------------------------------------------------------------ feed
    def add(self, node_id: int) -> None:
        """Offer one matching node (each result node exactly once)."""
        heap = self._heap
        full = len(heap) >= self.k
        if self.scoring is None:
            entry = (0.0, -node_id)
            if not full:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
            return
        if full and self._bounds_enabled:
            floor_score, neg_floor_id = heap[0]
            bound = self.scoring.score_upper_bound(node_id)
            if bound < floor_score or (
                bound == floor_score and node_id > -neg_floor_id
            ):
                # Even a best-case score cannot displace the current floor:
                # either it is strictly below it, or it ties and loses the
                # node-id tie-break.  Skip the document score entirely.
                self.pruned += 1
                self._fruitless_checks = 0
                return
            self._fruitless_checks += 1
            if self._fruitless_checks >= self.give_up_after:
                self._bounds_enabled = False
        score = self.scoring.document_score(node_id)
        self.scored += 1
        entry = (score, -node_id)
        if not full:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)

    @property
    def gave_up(self) -> bool:
        """Whether the bound check disabled itself as fruitless (see above)."""
        return self.scoring is not None and not self._bounds_enabled

    # --------------------------------------------------------------- results
    def ranked(self) -> list[tuple[int, float]]:
        """The retained pairs, best first -- the pruned ranking prefix."""
        ordered = sorted(self._heap, reverse=True)
        return [(-neg_id, score) for score, neg_id in ordered]

    def scores(self) -> dict[int, float]:
        """Node id -> score for the retained candidates only.

        A pruned result's ``scores`` mapping is intentionally partial; the
        ranking prefix is carried separately (``EvaluationResult._ranked``)
        and consumers must not reconstruct it from ``scores``.  Unscored
        collection returns ``{}``, matching the full path.
        """
        if self.scoring is None:
            return {}
        return {-neg_id: score for score, neg_id in self._heap}
