"""Engine selection and query execution.

The :class:`Executor` ties the pieces together: it classifies a parsed query
into the language hierarchy (BOOL-NONEG / BOOL / PPRED / NPRED / COMP),
selects the cheapest engine able to evaluate it (or a caller-forced engine,
validated against the hierarchy), runs the evaluation, optionally ranks the
matching nodes with a scoring model, and reports timing plus inverted-list
I/O statistics.  This is the layer the benchmark harness drives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import UnsupportedQueryError
from repro.index.cursor import PAPER_MODE, CursorFactory, CursorStats, check_access_mode
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.languages.classify import LanguageClass, can_evaluate, classify_query
from repro.model.predicates import PredicateRegistry, default_registry
from repro.scoring.base import ScoringModel
from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.engine.npred_engine import NPredEngine
from repro.engine.ppred_engine import PPredEngine
from repro.engine.topk import TopKCollector, check_top_k
from repro.planner import (
    DEFAULT_OPTIMIZER,
    OPTIMIZER_OFF,
    check_optimizer_mode,
)
from repro.planner.ir import canonical_key
from repro.planner.optimizer import ANY_TOKEN, QueryPlanner
from repro.planner.physical import BOUND_HEAP, PhysicalPlan
from repro.telemetry import instruments

#: Engine name accepted by :meth:`Executor.execute` for automatic selection.
AUTO = "auto"

#: Map of language class -> the engine name that natively evaluates it.
NATIVE_ENGINE = {
    LanguageClass.BOOL_NONEG: "bool",
    LanguageClass.BOOL: "bool",
    LanguageClass.PPRED: "ppred",
    LanguageClass.NPRED: "npred",
    LanguageClass.COMP: "comp",
}

#: Map of engine name -> the language class it implements.
ENGINE_CLASS = {
    "bool": LanguageClass.BOOL,
    "ppred": LanguageClass.PPRED,
    "npred": LanguageClass.NPRED,
    "comp": LanguageClass.COMP,
}


@dataclass
class EvaluationResult:
    """Outcome of evaluating one query.

    ``node_ids`` always covers *every* match (``total_matches`` stays exact
    even under top-k pushdown); with ``ranked_limit`` set, the ranking was
    pruned during evaluation and :meth:`ranked` returns the precomputed best
    ``ranked_limit`` pairs -- identical to sorting the full ranking and
    slicing, see :mod:`repro.engine.topk`.  ``scores`` is partial on a
    pruned result (the skipped nodes were never scored, that is the point).
    """

    node_ids: list[int]
    language_class: LanguageClass
    engine: str
    elapsed_seconds: float
    scores: dict[int, float] = field(default_factory=dict)
    cursor_stats: CursorStats | None = None
    ranked_limit: int | None = None
    #: EXPLAIN ANALYZE payload (see :mod:`repro.telemetry.explain`), only
    #: populated by instrumented executions; a plain dict so it pickles
    #: through the process-scatter workers unchanged.
    explain: dict | None = None
    #: The physical plan's :meth:`~repro.planner.physical.PhysicalPlan.describe`
    #: payload (provenance, strategy choices, per-token estimates) when a
    #: planner was involved; plain dict for the same pickling reason.
    plan: dict | None = None
    #: Per-token observed cursor ops, harvested only for ``optimizer="on"``
    #: executions -- the raw material of the planner's feedback loop.  Shard
    #: workers ship this back so the coordinator's planner learns from the
    #: whole cluster's cursors.
    token_ops: dict[str, float] | None = None
    _ranked: list[tuple[int, float]] | None = None

    def __len__(self) -> int:
        return len(self.node_ids)

    def ranked(self) -> list[tuple[int, float]]:
        """Node ids with scores, best first (unscored results keep id order)."""
        if self._ranked is not None:
            return self._ranked
        if not self.scores:
            return [(node_id, 0.0) for node_id in self.node_ids]
        return sorted(
            ((nid, self.scores.get(nid, 0.0)) for nid in self.node_ids),
            key=lambda pair: (-pair[1], pair[0]),
        )


class Executor:
    """Classify queries, pick an engine, evaluate, optionally score."""

    def __init__(
        self,
        index: InvertedIndex,
        registry: PredicateRegistry | None = None,
        scoring: ScoringModel | None = None,
        npred_orders: str = "minimal",
        access_mode: str = PAPER_MODE,
        optimizer: str = DEFAULT_OPTIMIZER,
    ) -> None:
        self.index = index
        self.registry = registry or default_registry()
        self.scoring = scoring
        self.npred_orders = npred_orders
        self.access_mode = check_access_mode(access_mode)
        #: ``"on"`` = cost-based planning with runtime feedback, ``"static"``
        #: = a plan artifact is built for provenance/EXPLAIN but every choice
        #: defers to the engines' builtin heuristics, ``"off"`` = no planner
        #: at all.  All three are pinned bit-identical in ids/scores/order.
        self.optimizer = check_optimizer_mode(optimizer)
        self.planner: QueryPlanner | None = (
            QueryPlanner(self._df) if self.optimizer != OPTIMIZER_OFF else None
        )

    # ------------------------------------------------------------------ API
    def execute(
        self,
        query: ast.QueryNode,
        engine: str = AUTO,
        top_k: int | None = None,
        explain: bool = False,
        trace=None,
        plan: PhysicalPlan | None = None,
    ) -> EvaluationResult:
        """Evaluate a parsed (closed) surface query.

        ``engine`` may be ``"auto"`` (default) or one of ``"bool"``,
        ``"ppred"``, ``"npred"``, ``"comp"`` to force a specific evaluation
        algorithm; forcing an engine below the query's class raises
        :class:`UnsupportedQueryError`.

        ``top_k`` pushes the ranking cut into execution: matching nodes are
        fed to a score-bounded :class:`~repro.engine.topk.TopKCollector`
        while the engines run, so only candidates whose score upper bound
        can still reach the current top-``k`` floor are actually scored.
        ``node_ids`` (and with it the match count) stays complete; the
        returned ranking is the exact best-``k`` prefix of the full one.

        ``explain=True`` attaches an EXPLAIN ANALYZE payload (per-cursor
        operation counts, top-k collector statistics) to the result's
        ``explain`` field; ``trace`` is an optional
        :class:`~repro.telemetry.trace.Span` receiving an execution span.
        Both observe the run without changing any returned byte.

        ``plan`` injects a precomputed :class:`PhysicalPlan` (the scatter
        layer ships the coordinator's plan to every shard this way); when
        omitted, this executor's own planner produces one per its
        ``optimizer`` mode.
        """
        return self._execute(
            query, engine, top_k=top_k, explain=explain, trace=trace, plan=plan
        )

    def execute_many(
        self,
        queries: Sequence[ast.QueryNode],
        engine: str = AUTO,
        top_k: int | None = None,
        explain: bool = False,
        trace=None,
        plans: "Sequence[PhysicalPlan | None] | None" = None,
    ) -> list[EvaluationResult]:
        """Evaluate a batch of queries, amortising per-query setup.

        One :class:`CursorFactory` is shared by the whole batch (each
        result's ``cursor_stats`` reports only its own query's delta) and
        extracted plans are cached by canonical query key, so a batch that
        repeats query shapes -- including commuted variants of one shape --
        skips re-planning.  ``top_k`` applies the pushdown of
        :meth:`execute` to every query in the batch; ``explain``/``trace``
        instrument each query exactly as in :meth:`execute`.  ``plans``
        optionally supplies one precomputed physical plan (or ``None``) per
        query, aligned by position.
        """
        check_top_k(top_k)
        if plans is not None and len(plans) != len(queries):
            raise ValueError(
                f"got {len(plans)} plans for {len(queries)} queries"
            )
        factory = CursorFactory(mode=self.access_mode)
        plan_cache: dict[tuple[str, str], object] = {}
        results = []
        snapshot = factory.checkpoint()
        for position, query in enumerate(queries):
            result = self._execute(
                query, engine, factory, plan_cache, top_k,
                explain=explain, trace=trace,
                plan=plans[position] if plans is not None else None,
            )
            total = factory.checkpoint()
            if result.cursor_stats is not None:
                result.cursor_stats = total.delta_since(snapshot)
            snapshot = total
            results.append(result)
        return results

    # ------------------------------------------------------------- internals
    def _current_index(self) -> InvertedIndex:
        """The index view this query should evaluate against.

        A live index (:class:`repro.segments.live_index.LiveIndex`) hands
        out per-query snapshots: every cursor the query opens then reads one
        consistent set of segments, no matter what concurrent writers do.
        Static indexes are their own (trivially consistent) view.
        """
        snapshot = getattr(self.index, "snapshot", None)
        if snapshot is not None:
            return snapshot()
        return self.index

    def _execute(
        self,
        query: ast.QueryNode,
        engine: str,
        factory: CursorFactory | None = None,
        plan_cache: dict | None = None,
        top_k: int | None = None,
        explain: bool = False,
        trace=None,
        plan: PhysicalPlan | None = None,
    ) -> EvaluationResult:
        check_top_k(top_k)
        language_class = classify_query(query, self.registry)
        engine_name = self._resolve_engine(language_class, engine)
        index = self._current_index()
        shipped = plan is not None
        if not shipped and self.planner is not None and engine_name != "comp":
            plan = self.planner.plan(
                query,
                engine=engine_name,
                language_class=language_class.value,
                optimizer=self.optimizer,
                access_mode=self.access_mode,
                top_k=top_k,
                scored=self.scoring is not None,
            )
        effective_mode = plan.access_mode if plan is not None else self.access_mode
        collector = self._make_collector(query, top_k, plan)
        # Feedback is harvested only for freshly optimized plans: a memo hit
        # ("cached") means the planner already folded an observation for this
        # canonical query, and re-harvesting per-cursor ops on every hit costs
        # more than the corrections are worth.  Generation bumps invalidate
        # the memo, so changed corpora still trigger re-observation.
        harvest_feedback = (
            plan is not None
            and plan.optimizer == "on"
            and plan.provenance != "cached"
        )
        if factory is None and (explain or harvest_feedback):
            # Explain and the feedback loop need per-cursor visibility:
            # inject a factory so the engine registers its cursors here
            # instead of in a private one.  Results are unaffected --
            # engines use a given factory verbatim.
            factory = CursorFactory(mode=effective_mode)
        if factory is not None:
            # Cursors snapshot the mode when opened, so a per-query override
            # on a shared batch factory only affects this query's cursors;
            # restored below so later queries see the configured mode.
            factory.mode = effective_mode
        span = (
            trace.span("executor.execute", engine=engine_name)
            if trace is not None
            else None
        )
        started = time.perf_counter()
        try:
            try:
                node_ids, stats = self._run(
                    index, query, engine_name, factory, plan_cache, collector,
                    access_mode=effective_mode, physical=plan,
                )
            except UnsupportedQueryError:
                # The classifier is intentionally syntactic; if a corner case
                # slips past it (or a caller forced a pipelined engine onto a
                # query it cannot plan), fall back to the always-applicable
                # naive COMP engine rather than failing the search.  A
                # partially fed collector is discarded with the failed
                # attempt, and so is the physical plan -- COMP uses node
                # scans, which the plan has nothing to say about.
                if engine != AUTO and engine_name != "comp":
                    raise
                engine_name = "comp"
                plan = None
                shipped = False
                harvest_feedback = False
                collector = self._make_collector(query, top_k, None)
                node_ids, stats = self._run(
                    index, query, engine_name, factory, plan_cache, collector,
                    access_mode=effective_mode, physical=None,
                )
        finally:
            if factory is not None:
                factory.mode = self.access_mode
        elapsed = time.perf_counter() - started
        if span is not None:
            span.annotate(rows=len(node_ids))
            span.end()
        if collector is not None:
            scores = collector.scores()
            ranked = collector.ranked()
        else:
            scores = self._score(query, node_ids, engine_name)
            ranked = None
        token_ops = None
        if harvest_feedback and factory is not None:
            token_ops = self._token_ops(factory)
            if self.planner is not None and not shipped:
                self.planner.observe(plan, token_ops)
                if (
                    collector is not None
                    and collector.gave_up
                    and plan.bound_strategy != BOUND_HEAP
                ):
                    self.planner.record_give_up(plan)
        explain_payload = None
        if explain:
            explain_payload = self._build_explain(
                query, language_class, engine_name, elapsed,
                node_ids, factory, collector, top_k,
                plan=plan, access_mode=effective_mode,
            )
        self._observe(engine_name, elapsed, stats, factory, collector)
        if plan is not None and not shipped and instruments.REGISTRY.enabled:
            # Shipped plans are counted once by the coordinator that built
            # them, not again by every shard that executes them.
            instruments.PLANS_TOTAL.labels(plan.provenance).inc()
        plan_payload = None
        if plan is not None:
            plan_payload = plan.describe()
            if collector is not None and collector.gave_up:
                # Surfaced so a coordinator folding shard results can teach
                # its planner that this canonical query defeats bound
                # pruning (workers run with their own planner off).
                plan_payload["gave_up"] = True
        return EvaluationResult(
            node_ids=node_ids,
            language_class=language_class,
            engine=engine_name,
            elapsed_seconds=elapsed,
            scores=scores,
            cursor_stats=stats,
            ranked_limit=top_k if collector is not None else None,
            explain=explain_payload,
            plan=plan_payload,
            token_ops=token_ops,
            _ranked=ranked,
        )

    def _token_ops(self, factory: CursorFactory) -> dict[str, float]:
        """Observed cursor ops per token for this query's open cursors.

        One number per token -- the sum of every op kind ``CursorStats``
        counts -- in the same unit the cost model estimates in, so the
        feedback loop can divide observed by estimated directly.
        """
        ops: dict[str, float] = {}
        for cursor in factory._open_cursors:
            token = cursor.token if cursor.token is not None else ANY_TOKEN
            stats = cursor.stats
            total = (
                stats.next_entry_calls
                + stats.get_positions_calls
                + stats.seek_calls
                + stats.seek_probes
            )
            ops[token] = ops.get(token, 0.0) + float(total)
        return ops

    def _build_explain(
        self,
        query: ast.QueryNode,
        language_class: LanguageClass,
        engine_name: str,
        elapsed: float,
        node_ids: list[int],
        factory: CursorFactory | None,
        collector: TopKCollector | None,
        top_k: int | None,
        plan: PhysicalPlan | None = None,
        access_mode: str | None = None,
    ) -> dict:
        """Assemble the EXPLAIN ANALYZE payload for one finished execution.

        Runs *before* any ``factory.checkpoint()``: the factory's open
        cursors are exactly the ones this query opened (batch drivers
        checkpoint between queries), so the per-operator rows sum to this
        query's ``CursorStats`` delta -- the contract the explain tests pin.
        """
        from repro.telemetry.explain import build_explain, cursor_breakdown

        operators = cursor_breakdown(factory) if factory is not None else []
        top_k_info = None
        if collector is not None:
            top_k_info = {
                "k": collector.k,
                "scored": collector.scored,
                "pruned": collector.pruned,
                "gave_up": collector.gave_up,
            }
        note = None
        if engine_name == "comp":
            note = (
                "comp engine evaluates via node scans, not inverted-list "
                "cursors; no per-cursor counts are available"
            )
        return build_explain(
            query_text=query.to_text(),
            language_class=language_class.value,
            engine=engine_name,
            access_mode=access_mode if access_mode is not None else self.access_mode,
            elapsed_seconds=elapsed,
            rows_produced=len(node_ids),
            operators=operators,
            top_k=top_k_info,
            note=note,
            plan=plan.describe() if plan is not None else None,
        )

    def _observe(
        self,
        engine_name: str,
        elapsed: float,
        stats: CursorStats | None,
        factory: CursorFactory | None,
        collector: TopKCollector | None,
    ) -> None:
        """Fold one query's counters into the metrics registry.

        With a shared batch factory the engine-reported ``stats`` are
        cumulative over the whole batch so far; the cursors this query
        opened are still in ``_open_cursors`` (the batch driver checkpoints
        *after* ``_execute`` returns), so their sum is the per-query delta.
        """
        if not instruments.REGISTRY.enabled:
            return
        per_query = stats
        if stats is not None and factory is not None:
            per_query = CursorStats()
            for cursor in factory._open_cursors:
                per_query.merge(cursor.stats)
        instruments.observe_query(engine_name, elapsed, per_query, collector)

    def _make_collector(
        self,
        query: ast.QueryNode,
        top_k: int | None,
        plan: PhysicalPlan | None = None,
    ) -> TopKCollector | None:
        """The score-bounded collector for one pushdown execution.

        The scoring model is prepared for the query *before* evaluation
        starts (the non-pushdown path prepares it after), so the collector
        can score and bound candidates as the engines produce them.  The
        plan's bound strategy selects the give-up threshold (``"heap"``
        disables bound probes outright); results never depend on it.
        """
        if top_k is None:
            return None
        scoring = self.scoring
        if scoring is not None:
            scoring.prepare(sorted(ast.query_tokens(query)))
        give_up_after = plan.give_up_after if plan is not None else None
        return TopKCollector(top_k, scoring, give_up_after=give_up_after)

    def _resolve_engine(self, language_class: LanguageClass, engine: str) -> str:
        if engine == AUTO:
            return NATIVE_ENGINE[language_class]
        engine = engine.lower()
        if engine not in ENGINE_CLASS:
            raise UnsupportedQueryError(
                f"unknown engine {engine!r}; expected one of "
                f"{sorted(ENGINE_CLASS)} or 'auto'"
            )
        if not can_evaluate(language_class, ENGINE_CLASS[engine]):
            raise UnsupportedQueryError(
                f"the {engine} engine cannot evaluate {language_class.value} queries"
            )
        return engine

    def _run(
        self,
        index: InvertedIndex,
        query: ast.QueryNode,
        engine_name: str,
        factory: CursorFactory | None = None,
        plan_cache: dict | None = None,
        collector: TopKCollector | None = None,
        access_mode: str | None = None,
        physical: PhysicalPlan | None = None,
    ) -> tuple[list[int], CursorStats | None]:
        observer = collector.add if collector is not None else None
        mode = access_mode if access_mode is not None else self.access_mode
        if engine_name == "bool":
            engine = BoolEngine(
                index, scoring=None, access_mode=mode, physical=physical
            )
            return engine.evaluate_with_stats(
                query, factory=factory, observer=observer
            )
        if engine_name == "ppred":
            engine = PPredEngine(
                index, self.registry, access_mode=mode, physical=physical
            )
            plan = self._cached_plan(query, engine_name, plan_cache)
            return engine.evaluate_with_stats(
                query, factory=factory, plan=plan, observer=observer
            )
        if engine_name == "npred":
            engine = NPredEngine(
                index,
                self.registry,
                orders=self.npred_orders,
                access_mode=mode,
                physical=physical,
            )
            plan = self._cached_plan(query, engine_name, plan_cache)
            return engine.evaluate_with_stats(
                query, factory=factory, plan=plan, observer=observer
            )
        engine = NaiveCompEngine(index, self.registry)
        node_ids = engine.evaluate(query)
        if observer is not None:
            for node_id in node_ids:
                observer(node_id)
        return node_ids, None

    def _cached_plan(
        self, query: ast.QueryNode, engine_name: str, plan_cache: dict | None
    ):
        """Extract (or fetch from the batch cache) the pipelined plan.

        Keyed by the *canonical* plan IR text, not the surface text, so
        commuted-but-equivalent queries (``a AND b`` vs ``b AND a``) share
        one cache entry.  The cached artifact is still extracted from the
        query as written -- canonicalisation only names the slot.
        """
        if plan_cache is None:
            return None
        from repro.engine.plan import extract_plan

        key = (engine_name, canonical_key(query))
        plan = plan_cache.get(key)
        if plan is None:
            plan = extract_plan(query, self.registry)
            plan_cache[key] = plan
        return plan

    def _df(self, token: "str | None") -> int:
        """Document frequency for the planner (``None`` = the ANY list).

        Prefers the scoring model's statistics -- which are the *global*
        statistics in sharded and live deployments
        (:class:`~repro.cluster.stats.AggregatedStatistics`,
        :class:`~repro.segments.stats.LiveStatistics`) -- and falls back to
        the index's posting lists for unscored executors.
        """
        statistics = getattr(self.scoring, "statistics", None)
        if token is None:
            if statistics is not None:
                return statistics.node_count
            return len(self._current_index().any_list())
        if statistics is not None:
            return statistics.document_frequency(token)
        return self._current_index().posting_list(token).document_frequency()

    def _score(
        self, query: ast.QueryNode, node_ids: list[int], engine_name: str
    ) -> dict[int, float]:
        if self.scoring is None or not node_ids:
            return {}
        self.scoring.prepare(sorted(ast.query_tokens(query)))
        return {node_id: self.scoring.document_score(node_id) for node_id in node_ids}
