"""Engine selection and query execution.

The :class:`Executor` ties the pieces together: it classifies a parsed query
into the language hierarchy (BOOL-NONEG / BOOL / PPRED / NPRED / COMP),
selects the cheapest engine able to evaluate it (or a caller-forced engine,
validated against the hierarchy), runs the evaluation, optionally ranks the
matching nodes with a scoring model, and reports timing plus inverted-list
I/O statistics.  This is the layer the benchmark harness drives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.exceptions import UnsupportedQueryError
from repro.index.cursor import CursorStats
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.languages.classify import LanguageClass, can_evaluate, classify_query
from repro.model.predicates import PredicateRegistry, default_registry
from repro.scoring.base import ScoringModel
from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.engine.npred_engine import NPredEngine
from repro.engine.ppred_engine import PPredEngine

#: Engine name accepted by :meth:`Executor.execute` for automatic selection.
AUTO = "auto"

#: Map of language class -> the engine name that natively evaluates it.
NATIVE_ENGINE = {
    LanguageClass.BOOL_NONEG: "bool",
    LanguageClass.BOOL: "bool",
    LanguageClass.PPRED: "ppred",
    LanguageClass.NPRED: "npred",
    LanguageClass.COMP: "comp",
}

#: Map of engine name -> the language class it implements.
ENGINE_CLASS = {
    "bool": LanguageClass.BOOL,
    "ppred": LanguageClass.PPRED,
    "npred": LanguageClass.NPRED,
    "comp": LanguageClass.COMP,
}


@dataclass
class EvaluationResult:
    """Outcome of evaluating one query."""

    node_ids: list[int]
    language_class: LanguageClass
    engine: str
    elapsed_seconds: float
    scores: dict[int, float] = field(default_factory=dict)
    cursor_stats: CursorStats | None = None

    def __len__(self) -> int:
        return len(self.node_ids)

    def ranked(self) -> list[tuple[int, float]]:
        """Node ids with scores, best first (unscored results keep id order)."""
        if not self.scores:
            return [(node_id, 0.0) for node_id in self.node_ids]
        return sorted(
            ((nid, self.scores.get(nid, 0.0)) for nid in self.node_ids),
            key=lambda pair: (-pair[1], pair[0]),
        )


class Executor:
    """Classify queries, pick an engine, evaluate, optionally score."""

    def __init__(
        self,
        index: InvertedIndex,
        registry: PredicateRegistry | None = None,
        scoring: ScoringModel | None = None,
        npred_orders: str = "minimal",
    ) -> None:
        self.index = index
        self.registry = registry or default_registry()
        self.scoring = scoring
        self.npred_orders = npred_orders

    # ------------------------------------------------------------------ API
    def execute(self, query: ast.QueryNode, engine: str = AUTO) -> EvaluationResult:
        """Evaluate a parsed (closed) surface query.

        ``engine`` may be ``"auto"`` (default) or one of ``"bool"``,
        ``"ppred"``, ``"npred"``, ``"comp"`` to force a specific evaluation
        algorithm; forcing an engine below the query's class raises
        :class:`UnsupportedQueryError`.
        """
        language_class = classify_query(query, self.registry)
        engine_name = self._resolve_engine(language_class, engine)
        started = time.perf_counter()
        try:
            node_ids, stats = self._run(query, engine_name)
        except UnsupportedQueryError:
            # The classifier is intentionally syntactic; if a corner case
            # slips past it (or a caller forced a pipelined engine onto a
            # query it cannot plan), fall back to the always-applicable
            # naive COMP engine rather than failing the search.
            if engine != AUTO and engine_name != "comp":
                raise
            engine_name = "comp"
            node_ids, stats = self._run(query, engine_name)
        elapsed = time.perf_counter() - started
        scores = self._score(query, node_ids, engine_name)
        return EvaluationResult(
            node_ids=node_ids,
            language_class=language_class,
            engine=engine_name,
            elapsed_seconds=elapsed,
            scores=scores,
            cursor_stats=stats,
        )

    # ------------------------------------------------------------- internals
    def _resolve_engine(self, language_class: LanguageClass, engine: str) -> str:
        if engine == AUTO:
            return NATIVE_ENGINE[language_class]
        engine = engine.lower()
        if engine not in ENGINE_CLASS:
            raise UnsupportedQueryError(
                f"unknown engine {engine!r}; expected one of "
                f"{sorted(ENGINE_CLASS)} or 'auto'"
            )
        if not can_evaluate(language_class, ENGINE_CLASS[engine]):
            raise UnsupportedQueryError(
                f"the {engine} engine cannot evaluate {language_class.value} queries"
            )
        return engine

    def _run(
        self, query: ast.QueryNode, engine_name: str
    ) -> tuple[list[int], CursorStats | None]:
        if engine_name == "bool":
            engine = BoolEngine(self.index, scoring=None)
            return engine.evaluate_with_stats(query)
        if engine_name == "ppred":
            engine = PPredEngine(self.index, self.registry)
            return engine.evaluate_with_stats(query)
        if engine_name == "npred":
            engine = NPredEngine(self.index, self.registry, orders=self.npred_orders)
            return engine.evaluate_with_stats(query)
        engine = NaiveCompEngine(self.index, self.registry)
        return engine.evaluate(query), None

    def _score(
        self, query: ast.QueryNode, node_ids: list[int], engine_name: str
    ) -> dict[int, float]:
        if self.scoring is None or not node_ids:
            return {}
        self.scoring.prepare(sorted(ast.query_tokens(query)))
        return {node_id: self.scoring.document_score(node_id) for node_id in node_ids}
