"""The naive COMP evaluation engine (paper, Section 5.4).

COMP is evaluated by translating the query into the full-text calculus
(Section 4.3 semantics), from there into the full-text algebra (Theorem 1 /
Lemma 2), and evaluating the algebra expression with ordinary materialising
relational operators.  The join computes, per node, the cartesian product of
its inputs' position tuples, which is where the
``O(cnodes · pos_per_cnode^{toks_Q} · (preds_Q + ops_Q + 1))`` complexity
bound comes from; the engine makes no attempt to be clever -- that is its
role in the experiments.

When a :class:`~repro.scoring.base.ScoringModel` is supplied, per-tuple
scores are propagated through every operator using the model's
transformations (Section 3), and per-node scores of the final relation are
reported alongside the node ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.collection import Collection
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.model.algebra import AlgebraEvaluator, AlgebraQuery
from repro.model.calculus import CalculusQuery
from repro.model.predicates import PredicateRegistry, default_registry
from repro.model.translation import calculus_query_to_algebra
from repro.scoring.base import ScoringModel


@dataclass
class NaiveEvaluation:
    """Result of a naive evaluation: node ids, optional scores, and the plan."""

    node_ids: list[int]
    scores: dict[int, float] = field(default_factory=dict)
    algebra_text: str = ""


class NaiveCompEngine:
    """Materialising FTA evaluation of arbitrary COMP queries."""

    name = "comp"

    def __init__(
        self,
        index: InvertedIndex,
        registry: PredicateRegistry | None = None,
        scoring: ScoringModel | None = None,
    ) -> None:
        self.index = index
        self.registry = registry or default_registry()
        self.scoring = scoring

    @property
    def collection(self) -> Collection:
        return self.index.collection

    # ------------------------------------------------------------------ API
    def evaluate(self, query: ast.QueryNode) -> list[int]:
        """Node ids satisfying ``query``, ascending."""
        return self.evaluate_full(query).node_ids

    def evaluate_full(self, query: ast.QueryNode) -> NaiveEvaluation:
        """Evaluate and return node ids, per-node scores and the algebra plan."""
        calculus_query = query.to_calculus_query()
        return self.evaluate_calculus(calculus_query, query_tokens=ast.query_tokens(query))

    def evaluate_calculus(
        self, calculus_query: CalculusQuery, query_tokens: set[str] | None = None
    ) -> NaiveEvaluation:
        """Evaluate an already-translated calculus query."""
        algebra_query = self.to_algebra(calculus_query)
        evaluator = self._make_evaluator(query_tokens or set())
        relation = evaluator.evaluate(algebra_query.expr)
        scores: dict[int, float] = {}
        if self.scoring is not None and relation.scores is not None:
            scores = relation.node_scores()
        return NaiveEvaluation(
            node_ids=relation.node_ids(),
            scores=scores,
            algebra_text=algebra_query.to_text(),
        )

    def to_algebra(self, calculus_query: CalculusQuery) -> AlgebraQuery:
        """The FTA expression the engine will evaluate (exposed for inspection)."""
        return calculus_query_to_algebra(calculus_query, self.registry)

    # ------------------------------------------------------------- internals
    def _make_evaluator(self, query_tokens: set[str]) -> AlgebraEvaluator:
        if self.scoring is None:
            return AlgebraEvaluator(self.collection, self.registry)
        self.scoring.prepare(sorted(query_tokens))
        return AlgebraEvaluator(
            self.collection,
            self.registry,
            combiner=self.scoring,
            base_scores=self.scoring.base_score,
        )
