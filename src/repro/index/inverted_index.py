"""The inverted index: ``IL_tok`` lists for every token plus ``IL_ANY``.

This is the physical storage substrate of all evaluation algorithms in the
paper.  It is built once from a :class:`~repro.corpus.collection.Collection`
and then accessed only through sequential cursors
(:class:`~repro.index.cursor.InvertedListCursor`).

Conceptually, ``IL_tok`` is the physical representation of the algebra
relation ``R_tok`` and ``IL_ANY`` is the physical representation of
``HasPos`` (paper, Section 5.1.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.corpus.collection import Collection
from repro.exceptions import IndexError_
from repro.index.cursor import PAPER_MODE, CursorFactory, InvertedListCursor
from repro.index.postings import EmptyPostingList, PostingEntry, PostingList
from repro.index.statistics import IndexStatistics

#: Reserved token name for the universal inverted list (all positions).
ANY_TOKEN = "*ANY*"

#: Shared immutable empty list handed out for every absent-token lookup, so a
#: miss does not allocate (the cursor layer carries the requested token).
_EMPTY_LIST = EmptyPostingList("")


class InvertedIndex:
    """Inverted lists over a collection of context nodes."""

    def __init__(self, collection: Collection) -> None:
        self.collection = collection
        self._lists: dict[str, PostingList] = {}
        self._any_list = PostingList(ANY_TOKEN)
        self._build()
        self._statistics: IndexStatistics | None = None

    # --------------------------------------------------------------- builder
    def _build(self) -> None:
        builders: dict[str, PostingList] = {}
        for node in self.collection:  # nodes iterate in ascending id order
            all_positions = node.positions()
            if all_positions:
                self._any_list.add_occurrences(node.node_id, all_positions)
            per_token: dict[str, list] = {}
            for occurrence in node:
                per_token.setdefault(occurrence.token, []).append(occurrence.position)
            for token, positions in per_token.items():
                posting_list = builders.get(token)
                if posting_list is None:
                    posting_list = PostingList(token)
                    builders[token] = posting_list
                posting_list.add_occurrences(node.node_id, positions)
        self._lists = builders

    @classmethod
    def from_collection(cls, collection: Collection) -> "InvertedIndex":
        """Build an index (alias of the constructor, for symmetry with storage)."""
        return cls(collection)

    # ---------------------------------------------------- incremental updates
    def add_node(self, node) -> None:
        """Index one additional context node.

        Inverted lists store entries in ascending node-id order, so documents
        can only be *appended*: the new node's id must be larger than every id
        already indexed (use :meth:`next_node_id` to pick one).  Statistics
        are invalidated and recomputed lazily on next access.
        """
        existing = self.collection.node_ids()
        if existing and node.node_id <= existing[-1]:
            raise IndexError_(
                f"cannot append node {node.node_id}: ids must be strictly "
                f"increasing (largest existing id is {existing[-1]})"
            )
        self.collection.add(node)
        all_positions = node.positions()
        if all_positions:
            self._any_list.add_occurrences(node.node_id, all_positions)
        per_token: dict[str, list] = {}
        for occurrence in node:
            per_token.setdefault(occurrence.token, []).append(occurrence.position)
        for token, positions in per_token.items():
            posting_list = self._lists.get(token)
            if posting_list is None:
                posting_list = PostingList(token)
                self._lists[token] = posting_list
            posting_list.add_occurrences(node.node_id, positions)
        self._statistics = None

    def add_text(self, text: str, tokenizer=None, metadata=None) -> int:
        """Tokenize ``text``, append it as a new node, and return its id."""
        from repro.corpus.document import ContextNode

        node_id = self.next_node_id()
        node = ContextNode.from_text(node_id, text, tokenizer, metadata=metadata)
        self.add_node(node)
        return node_id

    def next_node_id(self) -> int:
        """The id that :meth:`add_text` would assign to the next document."""
        return self.collection.next_node_id()

    # ------------------------------------------------------------- accessors
    def tokens(self) -> list[str]:
        """Every token that has a non-empty inverted list, sorted."""
        return sorted(self._lists)

    def __contains__(self, token: str) -> bool:
        return token in self._lists

    def posting_list(self, token: str) -> PostingList:
        """``IL_tok`` for ``token``; an empty list if the token never occurs.

        The paper notes that only the finite set of non-empty ``R_token``
        relations is ever materialised; querying an absent token yields a
        shared immutable empty list instead of a fresh allocation per miss.
        """
        existing = self._lists.get(token)
        if existing is not None:
            return existing
        return _EMPTY_LIST

    def any_list(self) -> PostingList:
        """``IL_ANY``: one entry per node with all of its positions."""
        return self._any_list

    def posting_lists(self) -> Iterator[PostingList]:
        """Iterate over every non-empty token inverted list."""
        return iter(self._lists.values())

    def node_count(self) -> int:
        """``cnodes``: the number of context nodes in the search context."""
        return len(self.collection)

    def node_ids(self) -> list[int]:
        """All node ids, ascending."""
        return self.collection.node_ids()

    def document_frequency(self, token: str) -> int:
        """``df(t)`` straight from the posting list."""
        return self.posting_list(token).document_frequency()

    # --------------------------------------------------------------- cursors
    def open_cursor(
        self,
        token: str,
        factory: CursorFactory | None = None,
        mode: str = PAPER_MODE,
    ) -> InvertedListCursor:
        """Open a cursor over ``IL_tok`` (or ``IL_ANY`` for ANY_TOKEN).

        When a factory is given, it fixes the access mode; ``mode`` only
        applies to factory-less cursors.
        """
        posting_list = (
            self._any_list if token == ANY_TOKEN else self.posting_list(token)
        )
        if factory is not None:
            return factory.open(posting_list, token=token)
        return InvertedListCursor(posting_list, mode=mode, token=token)

    def open_any_cursor(
        self, factory: CursorFactory | None = None, mode: str = PAPER_MODE
    ) -> InvertedListCursor:
        """Open a cursor over ``IL_ANY``."""
        return self.open_cursor(ANY_TOKEN, factory, mode)

    # ------------------------------------------------------------ statistics
    @property
    def statistics(self) -> IndexStatistics:
        """Lazily-computed corpus statistics (scoring + complexity parameters)."""
        if self._statistics is None:
            self._statistics = IndexStatistics(self)
        return self._statistics

    # ------------------------------------------------------------ footprint
    def memory_footprint(self) -> dict[str, int]:
        """Estimated byte sizes of the columnar posting storage.

        Reports the payload bytes of the columnar arrays (node ids, entry
        bounds, delta-encoded offsets, sentence/paragraph ordinals) summed
        over every token list plus ``IL_ANY``.  Python object overhead of the
        :class:`PostingList` shells themselves is excluded -- the point of
        the columnar layout is that it no longer grows with the data.
        """
        totals = {
            "node_ids_bytes": 0,
            "entry_bounds_bytes": 0,
            "offsets_bytes": 0,
            "structure_bytes": 0,
        }
        for posting_list in list(self._lists.values()) + [self._any_list]:
            for key, value in posting_list.memory_breakdown().items():
                totals[key] += value
        totals["total_bytes"] = sum(totals.values())
        return totals

    # ----------------------------------------------------- integrity checks
    def validate(self) -> None:
        """Check index invariants against the collection; raise on violation.

        Used by tests and by :mod:`repro.index.storage` after loading an index
        from disk.
        """
        for token, posting_list in self._lists.items():
            posting_list.validate()
            for entry in posting_list:
                node = self.collection.get(entry.node_id)
                for position in entry.positions:
                    if node.token_at(position) != token:
                        raise IndexError_(
                            f"index corrupt: node {entry.node_id} position "
                            f"{position.offset} does not hold token {token!r}"
                        )
        self._any_list.validate()
        any_nodes = self._any_list.node_ids()
        expected = [nid for nid in self.collection.node_ids()
                    if len(self.collection.get(nid)) > 0]
        if any_nodes != expected:
            raise IndexError_("IL_ANY does not cover exactly the non-empty nodes")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"InvertedIndex(nodes={self.node_count()}, "
            f"tokens={len(self._lists)})"
        )


def build_index(collection: Collection) -> InvertedIndex:
    """Convenience function: build an :class:`InvertedIndex` for a collection."""
    return InvertedIndex(collection)


def merge_node_ids(lists: Iterable[PostingList]) -> list[int]:
    """Union of node ids over several posting lists (sorted).

    A small utility used by tests and by the BOOL engine's OR handling.
    """
    result: set[int] = set()
    for posting_list in lists:
        result.update(posting_list.node_ids())
    return sorted(result)
