"""Sequential cursors over inverted lists.

The paper restricts access to inverted lists to *sequential scans* through a
cursor API (Section 5.1.2):

* ``nextEntry()``   -- advance to the next entry and return its node id
  (``None`` when exhausted);
* ``getPositions()`` -- the position list of the current entry.

Both operations are O(1).  All evaluation engines in :mod:`repro.engine` read
inverted lists exclusively through this API, so the number of cursor
operations is a faithful proxy for the paper's complexity parameters.  The
cursor counts its operations (entries and positions touched) to support the
cost-accounting benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.postings import PostingEntry, PostingList
from repro.model.positions import Position


@dataclass
class CursorStats:
    """Operation counters of a cursor (or aggregated over many cursors)."""

    next_entry_calls: int = 0
    get_positions_calls: int = 0
    positions_returned: int = 0

    def merge(self, other: "CursorStats") -> None:
        """Accumulate another counter set into this one."""
        self.next_entry_calls += other.next_entry_calls
        self.get_positions_calls += other.get_positions_calls
        self.positions_returned += other.positions_returned

    def as_dict(self) -> dict[str, int]:
        return {
            "next_entry_calls": self.next_entry_calls,
            "get_positions_calls": self.get_positions_calls,
            "positions_returned": self.positions_returned,
        }


class InvertedListCursor:
    """A forward-only cursor over a :class:`PostingList`.

    The cursor starts *before* the first entry: the first ``next_entry()``
    call moves to the first entry.  ``get_positions()`` may only be called
    when the cursor is on an entry.
    """

    __slots__ = ("_entries", "_index", "stats", "token")

    def __init__(self, posting_list: PostingList) -> None:
        self.token = posting_list.token
        self._entries = posting_list.entries()
        self._index = -1
        self.stats = CursorStats()

    # ----------------------------------------------------------- paper API
    def next_entry(self) -> int | None:
        """Advance to the next entry; return its node id or ``None`` at the end."""
        self.stats.next_entry_calls += 1
        self._index += 1
        if self._index >= len(self._entries):
            self._index = len(self._entries)
            return None
        return self._entries[self._index].node_id

    def get_positions(self) -> list[Position]:
        """Positions of the current entry (requires a prior successful next_entry)."""
        entry = self._current_entry()
        self.stats.get_positions_calls += 1
        self.stats.positions_returned += len(entry.positions)
        return list(entry.positions)

    # -------------------------------------------------------- conveniences
    def current_node(self) -> int | None:
        """Node id of the current entry, or ``None`` before the start / at the end."""
        if 0 <= self._index < len(self._entries):
            return self._entries[self._index].node_id
        return None

    def exhausted(self) -> bool:
        """True once ``next_entry()`` has returned ``None``."""
        return self._index >= len(self._entries)

    def advance_to(self, node_id: int) -> int | None:
        """Advance (by repeated ``next_entry``) until the current node id is
        ``>= node_id``; return it, or ``None`` if the list is exhausted.

        This is sugar used by merge-style operators; it still performs only
        sequential accesses and is charged per entry skipped.
        """
        current = self.current_node()
        if current is not None and current >= node_id:
            return current
        while True:
            current = self.next_entry()
            if current is None or current >= node_id:
                return current

    def _current_entry(self) -> PostingEntry:
        if not 0 <= self._index < len(self._entries):
            raise RuntimeError(
                "get_positions() called while the cursor is not on an entry"
            )
        return self._entries[self._index]


@dataclass
class CursorFactory:
    """Creates cursors for an index and aggregates their statistics.

    Evaluation engines obtain every cursor through a factory so that the
    total amount of inverted-list I/O per query can be reported, mirroring
    the paper's complexity parameters.
    """

    aggregate: CursorStats = field(default_factory=CursorStats)
    _open_cursors: list[InvertedListCursor] = field(default_factory=list)

    def open(self, posting_list: PostingList) -> InvertedListCursor:
        cursor = InvertedListCursor(posting_list)
        self._open_cursors.append(cursor)
        return cursor

    def collect_stats(self) -> CursorStats:
        """Aggregate statistics over every cursor opened through this factory."""
        total = CursorStats()
        total.merge(self.aggregate)
        for cursor in self._open_cursors:
            total.merge(cursor.stats)
        return total
