"""Sequential and seek-capable cursors over inverted lists.

The paper restricts access to inverted lists to *sequential scans* through a
cursor API (Section 5.1.2):

* ``nextEntry()``   -- advance to the next entry and return its node id
  (``None`` when exhausted);
* ``getPositions()`` -- the position list of the current entry.

Both operations are O(1).  All evaluation engines in :mod:`repro.engine` read
inverted lists exclusively through this API, so the number of cursor
operations is a faithful proxy for the paper's complexity parameters.

On top of the sequential API the cursor offers :meth:`InvertedListCursor.seek`
(galloping/binary search over the columnar node-id array).  How a seek is
*charged* is governed by the cursor's access mode:

* ``"paper"`` (default) -- the physical skip still happens, but the cursor is
  charged one ``next_entry`` per entry it moved over, exactly as if it had
  walked sequentially.  Counter streams are byte-identical to the original
  sequential implementation, which is what the Figure 3--8 cost-accounting
  benchmarks rely on.
* ``"fast"`` -- the production path: a seek is charged as one ``seek`` plus
  its O(log n) search probes, and nothing is added to the sequential
  counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import EvaluationError
from repro.index.postings import PostingList
from repro.model.positions import Position

#: Charge seeks as sequential per-entry scans (the paper's cost model).
PAPER_MODE = "paper"
#: Charge seeks as O(log n) searches (the production path).
FAST_MODE = "fast"
#: The valid access modes, in documentation order.
ACCESS_MODES = (PAPER_MODE, FAST_MODE)


def check_access_mode(mode: str) -> str:
    """Validate an access-mode name and return it."""
    if mode not in ACCESS_MODES:
        raise EvaluationError(
            f"unknown access mode {mode!r}; expected one of {ACCESS_MODES}"
        )
    return mode


@dataclass(slots=True)
class CursorStats:
    """Operation counters of a cursor (or aggregated over many cursors).

    ``next_entry_calls`` / ``get_positions_calls`` / ``positions_returned``
    are the paper's sequential-access charges.  ``seek_calls`` and
    ``seek_probes`` are only incremented by fast-mode seeks; in paper mode
    they stay zero, so paper-mode reports are unchanged from the original
    implementation.
    """

    next_entry_calls: int = 0
    get_positions_calls: int = 0
    positions_returned: int = 0
    seek_calls: int = 0
    seek_probes: int = 0

    def merge(self, other: "CursorStats") -> None:
        """Accumulate another counter set into this one."""
        self.next_entry_calls += other.next_entry_calls
        self.get_positions_calls += other.get_positions_calls
        self.positions_returned += other.positions_returned
        self.seek_calls += other.seek_calls
        self.seek_probes += other.seek_probes

    def as_dict(self) -> dict[str, int]:
        """The paper's sequential counters (stable across access modes)."""
        return {
            "next_entry_calls": self.next_entry_calls,
            "get_positions_calls": self.get_positions_calls,
            "positions_returned": self.positions_returned,
        }

    def as_extended_dict(self) -> dict[str, int]:
        """All counters, including the fast-mode seek charges."""
        extended = self.as_dict()
        extended["seek_calls"] = self.seek_calls
        extended["seek_probes"] = self.seek_probes
        return extended

    def delta_since(self, snapshot: "CursorStats") -> "CursorStats":
        """The counters accumulated since ``snapshot`` was taken."""
        return CursorStats(
            self.next_entry_calls - snapshot.next_entry_calls,
            self.get_positions_calls - snapshot.get_positions_calls,
            self.positions_returned - snapshot.positions_returned,
            self.seek_calls - snapshot.seek_calls,
            self.seek_probes - snapshot.seek_probes,
        )

    def copy(self) -> "CursorStats":
        """An independent snapshot of the current counters."""
        return CursorStats(
            self.next_entry_calls,
            self.get_positions_calls,
            self.positions_returned,
            self.seek_calls,
            self.seek_probes,
        )


class InvertedListCursor:
    """A forward-only cursor over a :class:`PostingList`.

    The cursor starts *before* the first entry: the first ``next_entry()``
    call moves to the first entry.  ``get_positions()`` may only be called
    when the cursor is on an entry.  :meth:`seek` never moves backwards.
    """

    __slots__ = (
        "_list",
        "_node_ids",
        "_decoded",
        "_length",
        "_index",
        "stats",
        "token",
        "mode",
    )

    def __init__(
        self,
        posting_list: PostingList,
        mode: str = PAPER_MODE,
        token: str | None = None,
    ) -> None:
        self.token = posting_list.token if token is None else token
        self.mode = check_access_mode(mode)
        self._list = posting_list
        # Snapshot views of the columns (paired with the snapshot length, so
        # later appends/widenings of the list never affect this cursor).
        self._node_ids = posting_list.node_id_column()
        self._decoded = posting_list.decoded_cache()
        self._length = len(posting_list)
        self._index = -1
        self.stats = CursorStats()

    # ----------------------------------------------------------- paper API
    def next_entry(self) -> int | None:
        """Advance to the next entry; return its node id or ``None`` at the end."""
        self.stats.next_entry_calls += 1
        self._index += 1
        if self._index >= self._length:
            self._index = self._length
            return None
        return self._node_ids[self._index]

    def get_positions(self) -> list[Position]:
        """Positions of the current entry (requires a prior successful next_entry)."""
        index = self._index
        if not 0 <= index < self._length:
            raise RuntimeError(
                "get_positions() called while the cursor is not on an entry"
            )
        positions = self._decoded.get(index)
        if positions is None:
            positions = self._list.positions_at(index)
        self.stats.get_positions_calls += 1
        self.stats.positions_returned += len(positions)
        return list(positions)

    # -------------------------------------------------------- conveniences
    def current_node(self) -> int | None:
        """Node id of the current entry, or ``None`` before the start / at the end."""
        if 0 <= self._index < self._length:
            return self._node_ids[self._index]
        return None

    def exhausted(self) -> bool:
        """True once ``next_entry()`` has returned ``None``."""
        return self._index >= self._length

    def entry_count(self) -> int:
        """Total entries of the underlying list (used for rarest-first order)."""
        return self._length

    def seek(self, node_id: int) -> int | None:
        """Move forward to the first entry with node id ``>= node_id``.

        Returns the landing node id, or ``None`` when the list is exhausted.
        The physical movement is a galloping + binary search over the node-id
        column in both modes; only the *charging* differs (see the module
        docstring).
        """
        index = self._index
        if 0 <= index < self._length:
            current = self._node_ids[index]
            if current >= node_id:
                return current
        landing, probes = self._list.seek_index(max(index, 0), node_id, self._length)
        if self.mode == FAST_MODE:
            self.stats.seek_calls += 1
            self.stats.seek_probes += probes
        else:
            # Sequential charging: one next_entry per entry moved over, with
            # a minimum of one call (an exhausted cursor still pays for the
            # call that discovers there is nothing left).
            self.stats.next_entry_calls += max(landing - index, 1)
        if landing >= self._length:
            self._index = self._length
            return None
        self._index = landing
        return self._node_ids[landing]

    def advance_to(self, node_id: int) -> int | None:
        """Advance until the current node id is ``>= node_id``; return it, or
        ``None`` if the list is exhausted.

        This is the merge-style skip primitive.  In paper mode it is charged
        per entry skipped (identical to repeated ``next_entry`` calls); in
        fast mode it delegates to the O(log n) :meth:`seek` charge.
        """
        return self.seek(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"InvertedListCursor(token={self.token!r}, mode={self.mode!r}, "
            f"index={self._index}/{self._length})"
        )


class MultiSegmentCursor:
    """One logical cursor over the same token's list in several segments.

    The live-indexing layer (:mod:`repro.segments`) stores an index as a
    sequence of immutable segments plus a mutable memtable; a token's logical
    inverted list is the k-way merge of its per-segment lists with tombstoned
    entries removed.  This cursor presents that merge through the exact
    sequential-cursor API of :class:`InvertedListCursor`, so every evaluation
    engine works unchanged on a live index.

    ``parts`` is a sequence of ``(cursor, dead)`` pairs, one per segment, in
    any order: ``cursor`` is a plain :class:`InvertedListCursor` over that
    segment's list and ``dead`` is ``None`` or a predicate ``node_id -> bool``
    marking entries tombstoned *as of the snapshot* this cursor belongs to.
    Visible node ids are unique across segments (at most one live revision of
    a node exists), so the merge is a disjoint union.

    Accounting: all child cursors share this cursor's :class:`CursorStats`
    object, so every per-segment ``next_entry`` / ``get_positions`` / seek
    charge (including entries skipped over tombstones) is counted once, here.
    More segments therefore mean measurably more cursor work for the same
    query -- which is exactly the overhead background compaction removes.
    """

    __slots__ = (
        "token",
        "mode",
        "stats",
        "_parts",
        "_currents",
        "_primed",
        "_on_entry",
        "_current",
        "_current_part",
        "_done",
    )

    def __init__(self, parts, mode: str = PAPER_MODE, token: str | None = None) -> None:
        self.mode = check_access_mode(mode)
        self.token = token
        self.stats = CursorStats()
        self._parts = list(parts)
        for cursor, _ in self._parts:
            if token is None:
                self.token = cursor.token
            cursor.stats = self.stats
        #: Node id each part is currently on (None = exhausted); filled lazily
        #: on first access so an unread cursor charges nothing.
        self._currents: list[int | None] = [None] * len(self._parts)
        self._primed = False
        self._on_entry = False
        self._current: int | None = None
        self._current_part = -1
        self._done = False

    # ------------------------------------------------------------- internals
    def _advance_part(self, index: int) -> int | None:
        """Move part ``index`` to its next *visible* entry; return its id."""
        cursor, dead = self._parts[index]
        while True:
            node = cursor.next_entry()
            if node is None:
                return None
            if dead is None or not dead(node):
                return node

    def _prime(self) -> None:
        if self._primed:
            return
        self._primed = True
        for index in range(len(self._parts)):
            self._currents[index] = self._advance_part(index)

    def _settle(self) -> int | None:
        """Pick the smallest current id over all parts (None = exhausted)."""
        best: int | None = None
        best_part = -1
        for index, current in enumerate(self._currents):
            if current is not None and (best is None or current < best):
                best = current
                best_part = index
        self._current = best
        self._current_part = best_part
        if best is None:
            self._done = True
            self._on_entry = False
        else:
            self._on_entry = True
        return best

    # ----------------------------------------------------------- paper API
    def next_entry(self) -> int | None:
        """Advance to the next visible entry; return its id or ``None``."""
        charged_before = self.stats.next_entry_calls
        if not self._primed:
            self._prime()
        elif self._on_entry:
            # Advance every part sitting on the current id (normally exactly
            # one -- visible ids are unique across segments -- but duplicates
            # are merged defensively rather than emitted twice).
            current = self._current
            for index, value in enumerate(self._currents):
                if value == current:
                    self._currents[index] = self._advance_part(index)
        if self.stats.next_entry_calls == charged_before:
            # Every part was already exhausted: still pay for the call that
            # discovers there is nothing left (the sequential convention).
            self.stats.next_entry_calls += 1
        return self._settle()

    def get_positions(self) -> list[Position]:
        """Positions of the current entry (from the segment that holds it)."""
        if not self._on_entry:
            raise RuntimeError(
                "get_positions() called while the cursor is not on an entry"
            )
        return self._parts[self._current_part][0].get_positions()

    # -------------------------------------------------------- conveniences
    def current_node(self) -> int | None:
        return self._current if self._on_entry else None

    def exhausted(self) -> bool:
        return self._done

    def entry_count(self) -> int:
        """Total entries over all segment lists (tombstones included).

        An upper bound on the visible length; used only for rarest-first
        ordering heuristics, exactly like the single-list count.
        """
        return sum(cursor.entry_count() for cursor, _ in self._parts)

    def seek(self, node_id: int) -> int | None:
        """Move forward to the first visible entry with id ``>= node_id``."""
        if self._on_entry and self._current is not None and self._current >= node_id:
            return self._current
        charged_before = self.stats.next_entry_calls + self.stats.seek_calls
        if not self._primed:
            self._prime()
        for index, current in enumerate(self._currents):
            if current is None or current >= node_id:
                continue
            cursor, dead = self._parts[index]
            landing = cursor.seek(node_id)
            while landing is not None and dead is not None and dead(landing):
                landing = self._advance_part(index)
            self._currents[index] = landing
        if (self.stats.next_entry_calls + self.stats.seek_calls) == charged_before:
            if self.mode == FAST_MODE:
                self.stats.seek_calls += 1
            else:
                self.stats.next_entry_calls += 1
        return self._settle()

    def advance_to(self, node_id: int) -> int | None:
        """Merge-style skip primitive (alias of :meth:`seek`)."""
        return self.seek(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MultiSegmentCursor(token={self.token!r}, mode={self.mode!r}, "
            f"parts={len(self._parts)}, current={self._current})"
        )


@dataclass
class CursorFactory:
    """Creates cursors for an index and aggregates their statistics.

    Evaluation engines obtain every cursor through a factory so that the
    total amount of inverted-list I/O per query can be reported, mirroring
    the paper's complexity parameters.  The factory fixes the access mode of
    every cursor it opens, so one engine run is uniformly ``"paper"`` or
    ``"fast"``.
    """

    mode: str = PAPER_MODE
    aggregate: CursorStats = field(default_factory=CursorStats)
    _open_cursors: list[InvertedListCursor] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_access_mode(self.mode)

    def open(
        self, posting_list: PostingList, token: str | None = None
    ) -> InvertedListCursor:
        cursor = InvertedListCursor(posting_list, mode=self.mode, token=token)
        self._open_cursors.append(cursor)
        return cursor

    def adopt(self, cursor) -> "MultiSegmentCursor | InvertedListCursor":
        """Register an externally-built cursor (e.g. a multi-segment merge).

        The live-index snapshot layer builds :class:`MultiSegmentCursor`
        objects itself (they wrap several per-segment lists, not one posting
        list) and adopts them here so their charges appear in the factory's
        aggregate exactly like directly-opened cursors.
        """
        self._open_cursors.append(cursor)
        return cursor

    def collect_stats(self) -> CursorStats:
        """Aggregate statistics over every cursor opened through this factory."""
        total = CursorStats()
        total.merge(self.aggregate)
        for cursor in self._open_cursors:
            total.merge(cursor.stats)
        return total

    def checkpoint(self) -> CursorStats:
        """Fold finished cursors into the aggregate and return the totals.

        Batch drivers call this between queries so the per-query stats delta
        stays O(cursors opened by that query) instead of walking every cursor
        the factory ever opened.  The folded cursors must not be used again.
        """
        for cursor in self._open_cursors:
            self.aggregate.merge(cursor.stats)
        self._open_cursors.clear()
        return self.aggregate.copy()
