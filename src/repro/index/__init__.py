"""Inverted-list substrate: postings, cursors, index, statistics, storage."""

from repro.index.cursor import (
    ACCESS_MODES,
    FAST_MODE,
    PAPER_MODE,
    CursorFactory,
    CursorStats,
    InvertedListCursor,
    check_access_mode,
)
from repro.index.inverted_index import (
    ANY_TOKEN,
    InvertedIndex,
    build_index,
    merge_node_ids,
)
from repro.index.packed import (
    PACKED_SEGMENT_VERSION,
    PackedPostingList,
    PackedSegmentReader,
    build_packed_segment,
    is_packed_segment,
    open_packed_segment,
    write_packed_segment,
)
from repro.index.packed_index import (
    LazyCollection,
    PackedInvertedIndex,
    open_packed_index,
    save_packed_index,
)
from repro.index.postings import EmptyPostingList, PostingEntry, PostingList
from repro.index.statistics import ComplexityParameters, IndexStatistics
from repro.index.storage import (
    load_collection,
    load_index,
    save_collection,
    save_index,
)

__all__ = [
    "LazyCollection",
    "PACKED_SEGMENT_VERSION",
    "PackedInvertedIndex",
    "PackedPostingList",
    "PackedSegmentReader",
    "build_packed_segment",
    "is_packed_segment",
    "open_packed_index",
    "open_packed_segment",
    "save_packed_index",
    "write_packed_segment",
    "ACCESS_MODES",
    "FAST_MODE",
    "PAPER_MODE",
    "CursorFactory",
    "CursorStats",
    "InvertedListCursor",
    "check_access_mode",
    "ANY_TOKEN",
    "EmptyPostingList",
    "InvertedIndex",
    "build_index",
    "merge_node_ids",
    "PostingEntry",
    "PostingList",
    "ComplexityParameters",
    "IndexStatistics",
    "load_collection",
    "load_index",
    "save_collection",
    "save_index",
]
