"""Posting lists: the physical representation of inverted lists.

The paper's data model (Section 5.1.2): for each token ``tok`` there is an
inverted list ``IL_tok`` whose entries are ``(cn, PosList)`` pairs -- a
context node id plus the ordered list of positions of ``tok`` in that node.
Entries are ordered by node id, positions by document order.  There is also
``IL_ANY`` holding *all* positions of every node.

:class:`PostingEntry` and :class:`PostingList` implement that model, including
the invariants (sorted node ids, sorted positions, non-empty position lists).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import IndexError_
from repro.model.positions import Position


@dataclass(frozen=True)
class PostingEntry:
    """One ``(cn, PosList)`` entry of an inverted list."""

    node_id: int
    positions: tuple[Position, ...]

    def __post_init__(self) -> None:
        if not self.positions:
            raise IndexError_(
                f"posting entry for node {self.node_id} has no positions"
            )
        offsets = [pos.offset for pos in self.positions]
        if offsets != sorted(offsets):
            raise IndexError_(
                f"positions of node {self.node_id} must be sorted by offset"
            )
        if len(set(offsets)) != len(offsets):
            raise IndexError_(
                f"positions of node {self.node_id} contain duplicates"
            )

    def __len__(self) -> int:
        return len(self.positions)

    def position_offsets(self) -> list[int]:
        """The raw integer offsets of this entry's positions."""
        return [pos.offset for pos in self.positions]


class PostingList:
    """An ordered sequence of :class:`PostingEntry` objects for one token."""

    __slots__ = ("token", "_entries", "_node_ids")

    def __init__(self, token: str, entries: Iterable[PostingEntry] = ()) -> None:
        self.token = token
        self._entries: list[PostingEntry] = []
        self._node_ids: list[int] = []
        for entry in entries:
            self.append(entry)

    # --------------------------------------------------------------- builder
    def append(self, entry: PostingEntry) -> None:
        """Append an entry; node ids must arrive in strictly increasing order."""
        if self._node_ids and entry.node_id <= self._node_ids[-1]:
            raise IndexError_(
                f"posting entries for {self.token!r} must have strictly "
                f"increasing node ids (got {entry.node_id} after "
                f"{self._node_ids[-1]})"
            )
        self._entries.append(entry)
        self._node_ids.append(entry.node_id)

    def add_occurrences(self, node_id: int, positions: Sequence[Position]) -> None:
        """Convenience: build and append an entry from raw positions."""
        self.append(PostingEntry(node_id, tuple(positions)))

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PostingEntry]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def entries(self) -> list[PostingEntry]:
        """All entries in node-id order (a copy)."""
        return list(self._entries)

    def node_ids(self) -> list[int]:
        """The node ids having at least one occurrence of the token."""
        return list(self._node_ids)

    def entry_for(self, node_id: int) -> PostingEntry | None:
        """The entry of ``node_id`` or ``None`` (random access; testing only).

        Query evaluation never uses this -- the paper restricts inverted
        lists to sequential access -- but tests and scoring setup do.
        """
        idx = bisect.bisect_left(self._node_ids, node_id)
        if idx < len(self._node_ids) and self._node_ids[idx] == node_id:
            return self._entries[idx]
        return None

    def document_frequency(self) -> int:
        """``df(t)``: the number of entries (nodes containing the token)."""
        return len(self._entries)

    def total_positions(self) -> int:
        """Total number of positions over all entries."""
        return sum(len(entry) for entry in self._entries)

    def max_positions_per_entry(self) -> int:
        """``pos_per_entry`` restricted to this list."""
        if not self._entries:
            return 0
        return max(len(entry) for entry in self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PostingList(token={self.token!r}, entries={len(self._entries)}, "
            f"positions={self.total_positions()})"
        )
