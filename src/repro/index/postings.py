"""Posting lists: the physical representation of inverted lists.

The paper's data model (Section 5.1.2): for each token ``tok`` there is an
inverted list ``IL_tok`` whose entries are ``(cn, PosList)`` pairs -- a
context node id plus the ordered list of positions of ``tok`` in that node.
Entries are ordered by node id, positions by document order.  There is also
``IL_ANY`` holding *all* positions of every node.

Physically, a :class:`PostingList` is *columnar*: node ids live in one flat
``array``, position offsets (delta-encoded within each entry), sentence and
paragraph ordinals in three parallel flat ``array`` columns, and a boundary
column maps entry index -> slice of the position columns.  This keeps the
per-position cost at a few machine words instead of a Python object, which
is what index build time and memory footprint are dominated by.

:class:`PostingEntry` remains the logical ``(cn, PosList)`` view of one
entry; it is materialised lazily (and transiently) from the columns, so the
object API of the original implementation keeps working.  The per-entry
invariants (sorted node ids, sorted positions, no duplicates, non-empty
position lists) are enforced cheaply during encoding -- a delta that is not
strictly positive is exactly an out-of-order or duplicate position -- and can
be re-checked on demand with :meth:`PostingList.validate`.
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import IndexError_
from repro.model.positions import Position, fast_position

#: Typecode of the columnar arrays; widened to "Q" on overflow so arbitrarily
#: large node ids / offsets still round-trip (at double the per-value cost).
_NARROW = "I"
_WIDE = "Q"


@dataclass(frozen=True)
class PostingEntry:
    """One ``(cn, PosList)`` entry of an inverted list."""

    node_id: int
    positions: tuple[Position, ...]

    def __post_init__(self) -> None:
        if not self.positions:
            raise IndexError_(
                f"posting entry for node {self.node_id} has no positions"
            )
        offsets = [pos.offset for pos in self.positions]
        if offsets != sorted(offsets):
            raise IndexError_(
                f"positions of node {self.node_id} must be sorted by offset"
            )
        if len(set(offsets)) != len(offsets):
            raise IndexError_(
                f"positions of node {self.node_id} contain duplicates"
            )

    def __len__(self) -> int:
        return len(self.positions)

    def position_offsets(self) -> list[int]:
        """The raw integer offsets of this entry's positions."""
        return [pos.offset for pos in self.positions]


class PostingList:
    """An ordered sequence of posting entries for one token, stored columnar."""

    __slots__ = (
        "token",
        "_node_ids",
        "_entry_bounds",
        "_offset_deltas",
        "_sentences",
        "_paragraphs",
        "_decoded",
    )

    #: Bound on the decoded-entry cache.  Multi-pass evaluation (the NPRED
    #: engine re-scans its lists once per permutation thread) hits the same
    #: entries repeatedly; caching their decoded position tuples avoids a
    #: decode storm while keeping the materialised-object memory bounded.
    DECODE_CACHE_LIMIT = 1024

    def __init__(self, token: str, entries: Iterable[PostingEntry] = ()) -> None:
        self.token = token
        self._node_ids = array(_NARROW)
        #: ``_entry_bounds[i] .. _entry_bounds[i+1]`` is entry ``i``'s slice of
        #: the position columns; always starts with the sentinel 0.
        self._entry_bounds = array(_NARROW, [0])
        #: First offset of an entry is absolute; the rest are deltas to the
        #: previous offset (strictly positive by the sortedness invariant).
        self._offset_deltas = array(_NARROW)
        self._sentences = array(_NARROW)
        self._paragraphs = array(_NARROW)
        self._decoded: dict[int, tuple[Position, ...]] = {}
        for entry in entries:
            self.append(entry)

    # --------------------------------------------------------------- builder
    def append(self, entry: PostingEntry) -> None:
        """Append an entry; node ids must arrive in strictly increasing order."""
        self.add_occurrences(entry.node_id, entry.positions)

    def add_occurrences(self, node_id: int, positions: Sequence[Position]) -> None:
        """Append an entry from raw positions (the hot build path).

        Positions may be :class:`Position` objects or plain integer offsets.
        The entry invariants are enforced as part of delta encoding: an
        unsorted or duplicate offset shows up as a non-positive delta.
        """
        if not positions:
            raise IndexError_(
                f"posting entry for node {node_id} has no positions"
            )
        node_ids = self._node_ids
        if len(node_ids) and node_id <= node_ids[-1]:
            raise IndexError_(
                f"posting entries for {self.token!r} must have strictly "
                f"increasing node ids (got {node_id} after {node_ids[-1]})"
            )
        start = len(self._offset_deltas)
        previous = -1
        try:
            for pos in positions:
                if isinstance(pos, Position):
                    offset, sentence, paragraph = pos.offset, pos.sentence, pos.paragraph
                else:
                    offset, sentence, paragraph = int(pos), 0, 0
                if offset <= previous:
                    self._rollback(start)
                    if offset == previous:
                        raise IndexError_(
                            f"positions of node {node_id} contain duplicates"
                        )
                    raise IndexError_(
                        f"positions of node {node_id} must be sorted by offset"
                    )
                delta = offset if previous < 0 else offset - previous
                self._push("_offset_deltas", delta)
                self._push("_sentences", sentence)
                self._push("_paragraphs", paragraph)
                previous = offset
            self._push("_node_ids", node_id)
            try:
                self._push("_entry_bounds", len(self._offset_deltas))
            except Exception:
                del self._node_ids[-1:]
                raise
        except IndexError_:
            raise
        except Exception:
            self._rollback(start)
            raise

    def _push(self, name: str, value: int) -> None:
        """Append ``value`` to a column, widening its typecode on overflow."""
        column: array = getattr(self, name)
        try:
            column.append(value)
        except OverflowError:
            if column.typecode != _NARROW or value > 2**64 - 1 or value < 0:
                raise
            widened = array(_WIDE, column)
            widened.append(value)
            setattr(self, name, widened)

    def _rollback(self, start: int) -> None:
        """Discard partially-appended position values after a failed entry."""
        del self._offset_deltas[start:]
        del self._sentences[start:]
        del self._paragraphs[start:]

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self._node_ids)

    def __iter__(self) -> Iterator[PostingEntry]:
        for index in range(len(self._node_ids)):
            yield self.entry(index)

    def __bool__(self) -> bool:
        return bool(len(self._node_ids))

    def entry(self, index: int) -> PostingEntry:
        """Materialise the logical view of entry ``index`` (lazy object API)."""
        return PostingEntry(self._node_ids[index], self.positions_at(index))

    def entries(self) -> list[PostingEntry]:
        """All entries in node-id order, materialised (compatibility path)."""
        return [self.entry(index) for index in range(len(self._node_ids))]

    def node_ids(self) -> list[int]:
        """The node ids having at least one occurrence of the token."""
        return list(self._node_ids)

    def node_id_column(self):
        """The node-id column as a snapshot view for cursors.

        Values already written never change (appends only; a typecode
        widening copies into a fresh array and leaves this one intact), so a
        cursor that also snapshots the entry count at open time can index
        this array safely for its whole lifetime.
        """
        return self._node_ids

    def decoded_cache(self) -> dict[int, tuple[Position, ...]]:
        """The decoded-entry cache (stable dict identity; see cursor layer)."""
        return self._decoded

    def positions_at(self, index: int) -> tuple[Position, ...]:
        """Decode entry ``index``'s positions (bounded cache, see above).

        Entries are immutable once appended, so cached tuples never go
        stale; the cache is cleared wholesale when it reaches its bound.
        """
        cached = self._decoded.get(index)
        if cached is not None:
            return cached
        lo = self._entry_bounds[index]
        hi = self._entry_bounds[index + 1]
        deltas = self._offset_deltas
        sentences = self._sentences
        paragraphs = self._paragraphs
        offset = 0
        decoded = []
        for flat in range(lo, hi):
            offset += deltas[flat]
            decoded.append(fast_position(offset, sentences[flat], paragraphs[flat]))
        positions = tuple(decoded)
        if len(self._decoded) >= self.DECODE_CACHE_LIMIT:
            # Evict one entry (the most recently inserted) rather than
            # clearing wholesale: repeated sequential passes over a list just
            # above the limit keep almost all of their hits this way.
            self._decoded.popitem()
        self._decoded[index] = positions
        return positions

    def position_offsets_at(self, index: int) -> list[int]:
        """Decode only the integer offsets of entry ``index``."""
        lo = self._entry_bounds[index]
        hi = self._entry_bounds[index + 1]
        deltas = self._offset_deltas
        offset = 0
        decoded = []
        for flat in range(lo, hi):
            offset += deltas[flat]
            decoded.append(offset)
        return decoded

    def entry_for(self, node_id: int) -> PostingEntry | None:
        """The entry of ``node_id`` or ``None`` (random access; testing only).

        Query evaluation never uses this -- the paper restricts inverted
        lists to sequential access -- but tests and scoring setup do.
        """
        idx = bisect.bisect_left(self._node_ids, node_id)
        if idx < len(self._node_ids) and self._node_ids[idx] == node_id:
            return self.entry(idx)
        return None

    #: Gaps up to this many entries are crossed by linear probing before the
    #: seek falls back to binary search -- dense merges (tiny skips) stay as
    #: cheap as sequential stepping.
    SEEK_LINEAR_LIMIT = 4

    def seek_index(
        self, start: int, node_id: int, stop: int | None = None
    ) -> tuple[int, int]:
        """Index of the first entry at or after ``start`` with id >= ``node_id``.

        Returns ``(index, probes)`` where ``index`` may be the end of the
        searched range when no such entry exists and ``probes`` is the number
        of node-id comparisons charged: one per linear probe plus the O(log n)
        bound of the binary search (the cursor's seek charge in fast access
        mode).  ``stop`` bounds the search to the first ``stop`` entries --
        cursors pass their snapshot length so entries appended after the
        cursor opened stay invisible to it.
        """
        node_ids = self._node_ids
        length = len(node_ids)
        if stop is not None and stop < length:
            length = stop
        if start >= length:
            return length, 0
        if start < 0:
            start = 0
        # Adaptive fast path: cross short gaps linearly.
        limit = min(start + self.SEEK_LINEAR_LIMIT, length)
        index = start
        while index < limit:
            if node_ids[index] >= node_id:
                return index, index - start + 1
            index += 1
        if index >= length:
            return length, index - start
        landing = bisect.bisect_left(node_ids, node_id, index, length)
        return landing, (index - start) + (length - index).bit_length()

    def document_frequency(self) -> int:
        """``df(t)``: the number of entries (nodes containing the token)."""
        return len(self._node_ids)

    def total_positions(self) -> int:
        """Total number of positions over all entries (O(1) columnar read)."""
        return len(self._offset_deltas)

    def max_positions_per_entry(self) -> int:
        """``pos_per_entry`` restricted to this list."""
        bounds = self._entry_bounds
        if len(bounds) < 2:
            return 0
        return max(bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1))

    # ----------------------------------------------------- integrity / sizing
    def validate(self) -> None:
        """Re-check the entry invariants over the decoded columns.

        The encoder enforces these on the way in, so a failure here means the
        columns were corrupted after construction (or a storage round-trip
        went wrong).
        """
        node_ids = self._node_ids
        bounds = self._entry_bounds
        if len(bounds) != len(node_ids) + 1 or (len(bounds) and bounds[0] != 0):
            raise IndexError_(
                f"posting list {self.token!r} has inconsistent entry bounds"
            )
        if len(node_ids) and bounds[-1] != len(self._offset_deltas):
            raise IndexError_(
                f"posting list {self.token!r} bounds do not cover the columns"
            )
        previous_node = -1
        for index, node_id in enumerate(node_ids):
            if node_id <= previous_node:
                raise IndexError_(
                    f"posting list {self.token!r} node ids are not strictly "
                    f"increasing at entry {index}"
                )
            previous_node = node_id
            if bounds[index + 1] <= bounds[index]:
                raise IndexError_(
                    f"posting entry for node {node_id} has no positions"
                )
            offsets = self.position_offsets_at(index)
            if any(b <= a for a, b in zip(offsets, offsets[1:])):
                raise IndexError_(
                    f"positions of node {node_id} must be sorted by offset"
                )

    def memory_breakdown(self) -> dict[str, int]:
        """Byte sizes of the columnar arrays (buffer payload only)."""
        return {
            "node_ids_bytes": len(self._node_ids) * self._node_ids.itemsize,
            "entry_bounds_bytes": len(self._entry_bounds) * self._entry_bounds.itemsize,
            "offsets_bytes": len(self._offset_deltas) * self._offset_deltas.itemsize,
            "structure_bytes": (
                len(self._sentences) * self._sentences.itemsize
                + len(self._paragraphs) * self._paragraphs.itemsize
            ),
        }

    def memory_bytes(self) -> int:
        """Total payload bytes of the columnar arrays."""
        return sum(self.memory_breakdown().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PostingList(token={self.token!r}, entries={len(self._node_ids)}, "
            f"positions={self.total_positions()})"
        )


class EmptyPostingList(PostingList):
    """An immutable, shareable empty posting list.

    :meth:`InvertedIndex.posting_list` hands this out for absent tokens so a
    miss does not allocate.  Every mutation path is rejected: one instance is
    shared by *all* absent-token lookups of an index, so a single successful
    append would make every missing token appear to match -- a silent,
    index-wide corruption.  The guard covers :meth:`append` and
    :meth:`add_occurrences` (the only public mutators) and refuses initial
    entries, and the failed attempt provably leaves the instance empty.
    """

    __slots__ = ()

    def append(self, entry: PostingEntry) -> None:
        self._raise_immutable()

    def add_occurrences(self, node_id: int, positions: Sequence[Position]) -> None:
        self._raise_immutable()

    def _raise_immutable(self) -> None:
        raise IndexError_(
            "the shared empty posting list is immutable; build a PostingList "
            "to add entries"
        )
