"""Packed binary segment format (v4): mmap-served posting columns.

The v2/v3 formats store node records as JSON and rebuild the inverted lists
on load -- simple and version-stable, but a load materialises every posting
as Python objects before the first query can run.  The v4 format instead
writes the *columnar* posting arrays of :class:`~repro.index.postings.PostingList`
(node ids, entry bounds, delta-encoded position offsets, sentence and
paragraph ordinals) verbatim as packed little-endian blocks, plus a small
per-list skip table (the first node id of every :data:`SKIP_BLOCK`-entry
block) that narrows the binary-search range of ``seek_index``.

A v4 file is::

    magic "RPSEGv04" | u64 header length | header JSON | payload

where the header is a directory (per-token payload offsets, column
typecodes, entry/position counts, document-section layout, payload CRC32)
and the payload is the concatenation of all column blocks followed by the
document records (per-node JSON, offset-indexed).  Opening a file parses
only the magic and header -- O(directory), no payload read -- and mmaps
the payload, so posting lists are served as :class:`PackedPostingList`
objects whose columns are ``memoryview`` casts straight onto OS page-cache
pages: zero-copy, shared read-only across processes, nothing deserialised
until a cursor actually touches it.

Corruption handling: the header records the exact payload length, so
truncation fails at open time with the offending path; bit flips inside the
payload are caught by the stored CRC32 when opening with ``verify=True``
(or by :meth:`PostingList.validate` on the decoded columns).
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from bisect import bisect_left
from mmap import ACCESS_READ, mmap
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.corpus.document import ContextNode
from repro.corpus.tokenizer import TokenOccurrence
from repro.exceptions import StorageError
from repro.index.inverted_index import ANY_TOKEN
from repro.index.postings import PostingList
from repro.model.positions import Position

#: Magic prefix of packed segment files; the two digits after it are the
#: zero-padded format version (``b"RPSEGv04"`` for version 4).
PACKED_MAGIC_PREFIX = b"RPSEGv"

#: The packed segment format version this module reads and writes.
PACKED_SEGMENT_VERSION = 4

_MAGIC = PACKED_MAGIC_PREFIX + b"%02d" % PACKED_SEGMENT_VERSION
_MAGIC_LEN = 8
_HEADER_LEN_STRUCT = struct.Struct("<Q")

#: One skip-pointer per this many posting entries.  128 keeps the skip table
#: under 1% of the node-id column while cutting a seek's binary-search range
#: to a single block.
SKIP_BLOCK = 128

#: The five posting columns, in payload order.
_COLUMNS = ("_node_ids", "_entry_bounds", "_offset_deltas", "_sentences", "_paragraphs")

_ITEMSIZE = {"I": 4, "Q": 8}


def node_to_record(node: ContextNode) -> dict[str, Any]:
    """The JSON record of one context node (shared with the v2/v3 formats)."""
    return {
        "id": node.node_id,
        "metadata": dict(node.metadata),
        "occurrences": [
            [occ.token, occ.position.offset, occ.position.sentence,
             occ.position.paragraph]
            for occ in node.occurrences
        ],
    }


def node_from_record(payload: dict[str, Any]) -> ContextNode:
    """Rebuild a context node from its JSON record."""
    try:
        occurrences = tuple(
            TokenOccurrence(token, Position(offset, sentence, paragraph))
            for token, offset, sentence, paragraph in payload["occurrences"]
        )
        return ContextNode(payload["id"], occurrences, payload.get("metadata", {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed node record: {exc}") from exc


# --------------------------------------------------------------------------
# Packed posting lists
# --------------------------------------------------------------------------

class PackedPostingList(PostingList):
    """A posting list whose columns are read-only views onto a packed buffer.

    Shares every accessor with :class:`PostingList` (the columns support
    indexing, ``len`` and ``bisect`` whether they are ``array`` objects or
    ``memoryview`` casts); only the mutators are closed off -- the backing
    buffer is an immutable segment payload shared across cursors and worker
    processes, so a single append would corrupt every reader at once.

    ``seek_index`` additionally consults the per-list skip table to narrow
    the binary-search window, but charges exactly the probe count of the
    in-memory implementation so fast-mode cursor statistics stay
    byte-identical between the packed and in-memory paths.
    """

    __slots__ = ("_skips",)

    def __init__(
        self,
        token: str,
        node_ids: Sequence[int],
        entry_bounds: Sequence[int],
        offset_deltas: Sequence[int],
        sentences: Sequence[int],
        paragraphs: Sequence[int],
        skips: Sequence[int] | None = None,
    ) -> None:
        self.token = token
        self._node_ids = node_ids
        self._entry_bounds = entry_bounds
        self._offset_deltas = offset_deltas
        self._sentences = sentences
        self._paragraphs = paragraphs
        self._decoded: dict[int, tuple[Position, ...]] = {}
        self._skips = skips

    def append(self, entry) -> None:
        self._raise_immutable()

    def add_occurrences(self, node_id: int, positions: Sequence[Position]) -> None:
        self._raise_immutable()

    def _raise_immutable(self) -> None:
        from repro.exceptions import IndexError_

        raise IndexError_(
            f"packed posting list {self.token!r} is immutable (backed by a "
            f"read-only segment buffer); rebuild the index to add entries"
        )

    def seek_index(
        self, start: int, node_id: int, stop: int | None = None
    ) -> tuple[int, int]:
        """As :meth:`PostingList.seek_index`, with skip-table narrowing.

        The returned index and probe charge are identical to the in-memory
        implementation; the skip table only reduces the *physical* range the
        binary search touches (fewer pages faulted in on cold segments).
        """
        node_ids = self._node_ids
        length = len(node_ids)
        if stop is not None and stop < length:
            length = stop
        if start >= length:
            return length, 0
        if start < 0:
            start = 0
        limit = min(start + self.SEEK_LINEAR_LIMIT, length)
        index = start
        while index < limit:
            if node_ids[index] >= node_id:
                return index, index - start + 1
            index += 1
        if index >= length:
            return length, index - start
        lo, hi = index, length
        skips = self._skips
        if skips is not None and len(skips) > 1:
            block = bisect_left(skips, node_id)
            if block > 0:
                lo = max(lo, min((block - 1) * SKIP_BLOCK, length))
            if block < len(skips):
                hi = min(hi, block * SKIP_BLOCK + 1)
        landing = bisect_left(node_ids, node_id, lo, hi)
        return landing, (index - start) + (length - index).bit_length()


# --------------------------------------------------------------------------
# Encoding
# --------------------------------------------------------------------------

def _column_bytes(column) -> bytes:
    """Little-endian bytes of a column (``array`` or ``memoryview``)."""
    if sys.byteorder == "little":
        return column.tobytes()
    if isinstance(column, memoryview):
        column = array(column.format, column)
    swapped = array(column.typecode, column)
    swapped.byteswap()
    return swapped.tobytes()


def _typecode(column) -> str:
    code = column.format if isinstance(column, memoryview) else column.typecode
    if code not in _ITEMSIZE:
        raise StorageError(f"unsupported posting column typecode {code!r}")
    return code


def _pack_list(posting_list: PostingList, chunks: list[bytes], offset: int):
    """Append one list's column blocks to ``chunks``; return its directory row."""
    columns = [getattr(posting_list, name) for name in _COLUMNS]
    typecodes = "".join(_typecode(column) for column in columns)
    node_ids = columns[0]
    entries = len(node_ids)
    skips = array(typecodes[0],
                  (node_ids[i] for i in range(0, entries, SKIP_BLOCK)))
    size = 0
    for column in columns:
        block = _column_bytes(column)
        chunks.append(block)
        size += len(block)
    block = _column_bytes(skips)
    chunks.append(block)
    size += len(block)
    row = [offset, entries, len(columns[2]), typecodes]
    return row, offset + size


def build_packed_segment(
    docs: Mapping[int, ContextNode],
    lists: Mapping[str, PostingList],
    any_list: PostingList | None,
    *,
    generation: int = 0,
    name: str = "collection",
) -> bytes:
    """Encode one sealed segment as packed v4 bytes.

    ``docs`` maps node id -> node (ids need not be pre-sorted); ``lists``
    maps token -> posting list; ``any_list`` is the ``IL_ANY`` list (may be
    ``None`` or empty).
    """
    chunks: list[bytes] = []
    offset = 0
    directory: list[list[Any]] = []
    for token in sorted(lists):
        row, offset = _pack_list(lists[token], chunks, offset)
        directory.append([token, *row])
    any_row = None
    if any_list is not None and len(any_list):
        any_row, offset = _pack_list(any_list, chunks, offset)

    node_ids = sorted(docs)
    doc_blobs = [json.dumps(node_to_record(docs[node_id])).encode("utf-8")
                 for node_id in node_ids]
    ids_column = array("Q", node_ids)
    doc_offsets = array("Q", [0])
    total = 0
    for blob in doc_blobs:
        total += len(blob)
        doc_offsets.append(total)
    docs_offset = offset
    chunks.append(_column_bytes(ids_column))
    chunks.append(_column_bytes(doc_offsets))
    chunks.extend(doc_blobs)

    payload = b"".join(chunks)
    token_count = sum(len(docs[node_id]) for node_id in node_ids)
    header = {
        "format": "repro-segment",
        "version": PACKED_SEGMENT_VERSION,
        "generation": generation,
        "name": name,
        "statistics": {"nodes": len(node_ids), "tokens": token_count},
        "payload_bytes": len(payload),
        "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        "lists": directory,
        "any": any_row,
        "docs": {"offset": docs_offset, "count": len(node_ids)},
    }
    header_bytes = json.dumps(header).encode("utf-8")
    return b"".join(
        [_MAGIC, _HEADER_LEN_STRUCT.pack(len(header_bytes)), header_bytes, payload]
    )


def write_packed_segment(
    path: Path | str,
    docs: Mapping[int, ContextNode],
    lists: Mapping[str, PostingList],
    any_list: PostingList | None,
    *,
    generation: int = 0,
    name: str = "collection",
) -> None:
    """Write one sealed segment as a packed v4 file."""
    payload = build_packed_segment(
        docs, lists, any_list, generation=generation, name=name
    )
    try:
        Path(path).write_bytes(payload)
    except OSError as exc:
        raise StorageError(f"cannot write {path}: {exc}") from exc


def packed_index_bytes(index) -> int:
    """Size in bytes of ``index`` if written as one packed v4 segment.

    Used by the CLI stats commands to report the packed-vs-JSON size ratio
    without touching the filesystem.
    """
    lists = {pl.token: pl for pl in index.posting_lists()}
    docs = {node.node_id: node for node in index.collection}
    return len(build_packed_segment(docs, lists, index.any_list(),
                                    name=index.collection.name))


# --------------------------------------------------------------------------
# Reading
# --------------------------------------------------------------------------

def _cast_column(view: memoryview, offset: int, count: int, typecode: str):
    """A zero-copy typed view of ``count`` items at ``offset`` (LE payload)."""
    nbytes = count * _ITEMSIZE[typecode]
    chunk = view[offset:offset + nbytes]
    if sys.byteorder == "little":
        return chunk.cast(typecode)
    decoded = array(typecode)
    decoded.frombytes(chunk.tobytes())
    decoded.byteswap()
    return decoded


class PackedSegmentReader:
    """An open packed segment: O(1) open, lazy mmap-backed accessors.

    Opening parses the magic and header only.  Posting lists are built on
    first request as :class:`PackedPostingList` shells over ``memoryview``
    casts of the mmap'd payload (cached per token); documents are decoded
    lazily per node id from the offset-indexed JSON records.  Nothing in the
    payload is read until an accessor touches it, and what is read comes off
    OS page-cache pages shared with every other process mapping the file.
    """

    def __init__(self, path: Path | str, *, verify: bool = False) -> None:
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise StorageError(f"cannot read {self.path}: {exc}") from exc
        try:
            self._open(verify)
        except BaseException:
            self._file.close()
            raise

    def _open(self, verify: bool) -> None:
        magic = self._file.read(_MAGIC_LEN)
        if not magic.startswith(PACKED_MAGIC_PREFIX):
            raise StorageError(f"{self.path} is not a packed repro segment file")
        if magic != _MAGIC:
            found = magic[len(PACKED_MAGIC_PREFIX):].decode("ascii", "replace")
            raise StorageError(
                f"{self.path}: unsupported segment format version {found} "
                f"(supported packed version: {PACKED_SEGMENT_VERSION})"
            )
        raw_len = self._file.read(_HEADER_LEN_STRUCT.size)
        if len(raw_len) != _HEADER_LEN_STRUCT.size:
            raise StorageError(f"{self.path} is truncated (no segment header)")
        (header_len,) = _HEADER_LEN_STRUCT.unpack(raw_len)
        header_bytes = self._file.read(header_len)
        if len(header_bytes) != header_len:
            raise StorageError(f"{self.path} is truncated (short segment header)")
        try:
            header = json.loads(header_bytes)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StorageError(
                f"{self.path} has a corrupt segment header: {exc}"
            ) from exc
        if header.get("format") != "repro-segment":
            raise StorageError(f"{self.path} is not a repro segment file")
        if header.get("version") != PACKED_SEGMENT_VERSION:
            raise StorageError(
                f"{self.path}: unsupported segment format version "
                f"{header.get('version')} (supported packed version: "
                f"{PACKED_SEGMENT_VERSION})"
            )
        generation = header.get("generation")
        if not isinstance(generation, int) or generation < 0:
            raise StorageError(f"{self.path} has no valid segment generation")
        payload_start = _MAGIC_LEN + _HEADER_LEN_STRUCT.size + header_len
        payload_bytes = header.get("payload_bytes")
        actual = self.path.stat().st_size - payload_start
        if actual != payload_bytes:
            raise StorageError(
                f"{self.path} is truncated or corrupt: header promises "
                f"{payload_bytes} payload bytes, file holds {actual}"
            )
        self._header = header
        self.generation = generation
        self.name = header.get("name", "collection")
        self._directory = {row[0]: row[1:] for row in header["lists"]}
        self._any_row = header.get("any")
        self._docs_meta = header["docs"]
        if payload_bytes:
            self._mmap = mmap(self._file.fileno(), 0, access=ACCESS_READ)
            self._payload = memoryview(self._mmap)[payload_start:]
        else:
            self._mmap = None
            self._payload = memoryview(b"")
        self._lists: dict[str, PackedPostingList] = {}
        self._any_list: PackedPostingList | None = None
        self._doc_ids: list[int] | None = None
        self._doc_offsets = None
        self._doc_blob_start: int | None = None
        self._doc_cache: dict[int, ContextNode] = {}
        self._closed = False
        if verify:
            self.verify_checksum()

    # ----------------------------------------------------------- file header
    @property
    def statistics(self) -> dict[str, int]:
        """The ``{"nodes": ..., "tokens": ...}`` block from the header."""
        return dict(self._header["statistics"])

    def verify_checksum(self) -> None:
        """Re-hash the whole payload against the stored CRC32 (reads it all)."""
        actual = zlib.crc32(self._payload) & 0xFFFFFFFF
        if actual != self._header["crc32"]:
            raise StorageError(
                f"{self.path} payload checksum mismatch (stored "
                f"{self._header['crc32']:#010x}, computed {actual:#010x}); "
                f"the file is corrupt"
            )

    # --------------------------------------------------------- posting lists
    def _build_list(self, token: str, row: list) -> PackedPostingList:
        offset, entries, positions, typecodes = row
        view = self._payload
        columns = []
        counts = (entries, entries + 1, positions, positions, positions)
        for typecode, count in zip(typecodes, counts):
            columns.append(_cast_column(view, offset, count, typecode))
            offset += count * _ITEMSIZE[typecode]
        skip_count = -(-entries // SKIP_BLOCK) if entries else 0
        skips = _cast_column(view, offset, skip_count, typecodes[0])
        return PackedPostingList(token, *columns, skips=skips)

    def tokens(self) -> list[str]:
        """All indexed tokens (the directory keys, already sorted)."""
        return list(self._directory)

    def posting_list(self, token: str) -> PackedPostingList | None:
        """The packed list of ``token`` or ``None`` (cached per token)."""
        cached = self._lists.get(token)
        if cached is None:
            row = self._directory.get(token)
            if row is None:
                return None
            cached = self._build_list(token, row)
            self._lists[token] = cached
        return cached

    def any_list(self) -> PostingList:
        """The ``IL_ANY`` list (empty in-memory list if the segment has none)."""
        if self._any_list is None:
            if self._any_row is None:
                return PostingList(ANY_TOKEN)
            self._any_list = self._build_list(ANY_TOKEN, self._any_row)
        return self._any_list

    # ------------------------------------------------------------- documents
    def _docs_columns(self):
        if self._doc_ids is None:
            meta = self._docs_meta
            offset, count = meta["offset"], meta["count"]
            ids = _cast_column(self._payload, offset, count, "Q")
            offset += count * _ITEMSIZE["Q"]
            self._doc_offsets = _cast_column(self._payload, offset, count + 1, "Q")
            self._doc_blob_start = offset + (count + 1) * _ITEMSIZE["Q"]
            self._doc_ids = list(ids)
        return self._doc_ids, self._doc_offsets, self._doc_blob_start

    def doc_ids(self) -> list[int]:
        """All node ids in the segment, ascending."""
        return list(self._docs_columns()[0])

    def __len__(self) -> int:
        return self._docs_meta["count"]

    def document(self, node_id: int) -> ContextNode:
        """Decode the node record of ``node_id`` (cached)."""
        cached = self._doc_cache.get(node_id)
        if cached is not None:
            return cached
        ids, offsets, blob_start = self._docs_columns()
        index = bisect_left(ids, node_id)
        if index >= len(ids) or ids[index] != node_id:
            raise KeyError(node_id)
        lo = blob_start + offsets[index]
        hi = blob_start + offsets[index + 1]
        try:
            record = json.loads(bytes(self._payload[lo:hi]))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StorageError(
                f"{self.path} has a corrupt document record for node "
                f"{node_id}: {exc}"
            ) from exc
        node = node_from_record(record)
        self._doc_cache[node_id] = node
        return node

    def documents(self) -> Iterator[ContextNode]:
        """Decode all node records in ascending node-id order."""
        for node_id in self._docs_columns()[0]:
            yield self.document(node_id)

    def materialize_nodes(self) -> list[ContextNode]:
        """Fully decode the segment's nodes (the v2/v3-compatible load path)."""
        return list(self.documents())

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        """Drop caches and release the mapping (best-effort).

        Posting lists and cursors handed out earlier keep borrowed views of
        the payload; while any of them is alive the OS mapping stays open
        (``mmap`` refuses to close under exported buffers) and is reclaimed
        when the last borrower is garbage-collected.
        """
        if self._closed:
            return
        self._closed = True
        self._lists.clear()
        self._any_list = None
        self._doc_cache.clear()
        self._doc_ids = None
        self._doc_offsets = None
        if self._mmap is not None:
            try:
                self._payload.release()
                self._mmap.close()
            except BufferError:
                pass
        self._payload = memoryview(b"")
        self._file.close()

    def __enter__(self) -> "PackedSegmentReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PackedSegmentReader(path={str(self.path)!r}, "
            f"generation={self.generation}, tokens={len(self._directory)})"
        )


def is_packed_segment(path: Path | str) -> bool:
    """True if ``path`` starts with the packed segment magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(PACKED_MAGIC_PREFIX)) == PACKED_MAGIC_PREFIX
    except OSError:
        return False


def open_packed_segment(
    path: Path | str, *, verify: bool = False
) -> PackedSegmentReader:
    """Open a packed v4 segment for zero-copy reading.

    ``verify=True`` additionally checks the payload CRC32 (reads the whole
    payload once); without it, truncation is still caught structurally at
    open time and logical corruption by ``validate()`` on the lists.
    """
    return PackedSegmentReader(path, verify=verify)
