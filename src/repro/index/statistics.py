"""Corpus and index statistics.

Two kinds of statistics are collected here:

* **Complexity parameters** (paper, Section 5.1.2): ``cnodes``,
  ``pos_per_cnode``, ``entries_per_token`` and ``pos_per_entry``.  These are
  the knobs in which every complexity bound of Figure 3 is expressed, and the
  quantities the experiment harness sweeps.
* **Scoring statistics** (paper, Section 3.1): document frequency ``df(t)``,
  inverse document frequency ``idf(t) = ln(1 + db_size / df(t))``, per-node
  unique-token counts, and the L2 normalisation factors of the TF-IDF model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.corpus.collection import Collection
    from repro.corpus.document import ContextNode
    from repro.index.inverted_index import InvertedIndex


@dataclass(frozen=True)
class ComplexityParameters:
    """The four data-size parameters of the paper's complexity model."""

    cnodes: int
    pos_per_cnode: int
    entries_per_token: int
    pos_per_entry: int

    def as_dict(self) -> dict[str, int]:
        return {
            "cnodes": self.cnodes,
            "pos_per_cnode": self.pos_per_cnode,
            "entries_per_token": self.entries_per_token,
            "pos_per_entry": self.pos_per_entry,
        }


class IndexStatistics:
    """Statistics computed once from an :class:`InvertedIndex`.

    The scoring models take an ``IndexStatistics`` instead of recomputing
    counts from the raw collection so that the "precomputed score" story of
    the paper (static TF-IDF factors stored in the index) is reproduced.
    """

    def __init__(self, index: "InvertedIndex") -> None:
        self._index = index
        self._node_count = index.node_count()
        self._document_frequency: dict[str, int] = {
            token: index.posting_list(token).document_frequency()
            for token in index.tokens()
        }
        self._unique_tokens: dict[int, int] = {}
        self._node_lengths: dict[int, int] = {}
        self._max_occurrences: dict[str, int] = {}
        self._idf_cache: dict[str, float] = {}
        for node in index.collection:
            self._unique_tokens[node.node_id] = node.unique_token_count()
            self._node_lengths[node.node_id] = len(node)

    # ------------------------------------------------------------ basic data
    @property
    def node_count(self) -> int:
        """``db_size``: the number of context nodes."""
        return self._node_count

    @property
    def collection(self) -> "Collection":
        """The corpus these statistics describe.

        This is the public route to node content for scoring models -- the
        sharded (:class:`~repro.cluster.stats.AggregatedStatistics`) and live
        (:class:`~repro.segments.stats.LiveStatistics`) statistics have no
        single backing :class:`~repro.index.inverted_index.InvertedIndex`,
        so reaching through ``statistics._index`` is not portable.
        """
        return self._index.collection

    def node(self, node_id: int) -> "ContextNode":
        """The corpus node for ``node_id`` (raises ``CorpusError`` if unknown)."""
        return self._index.collection.get(node_id)

    def document_frequency(self, token: str) -> int:
        """``df(t)``: number of nodes containing ``token`` (0 if absent)."""
        return self._document_frequency.get(token, 0)

    def unique_token_count(self, node_id: int) -> int:
        """``unique_tokens(n)`` for a node id."""
        return self._unique_tokens.get(node_id, 0)

    def node_length(self, node_id: int) -> int:
        """Number of token occurrences in the node."""
        return self._node_lengths.get(node_id, 0)

    def vocabulary(self) -> set[str]:
        """Every indexed token."""
        return set(self._document_frequency)

    def max_occurrences(self, token: str) -> int:
        """Largest ``occurs(n, t)`` over all nodes (0 for unknown tokens).

        This is the per-token quantity behind the scoring models'
        :meth:`~repro.scoring.base.ScoringModel.score_upper_bound`: no node
        can contribute more than ``max_occurrences(t)`` occurrences of ``t``
        to its score.  Computed lazily from the token's posting list (one
        pass over the entry bounds) and cached -- only queries that use
        top-k pruning ever pay for it.
        """
        cached = self._max_occurrences.get(token)
        if cached is None:
            cached = self._compute_max_occurrences(token)
            self._max_occurrences[token] = cached
        return cached

    def _compute_max_occurrences(self, token: str) -> int:
        return self._index.posting_list(token).max_positions_per_entry()

    # --------------------------------------------------------------- scoring
    def idf(self, token: str) -> float:
        """``idf(t) = ln(1 + db_size / df(t))`` (paper, Section 3.1).

        Tokens that never occur get an IDF of ``ln(1 + db_size)`` -- i.e. the
        value obtained with ``df = 1`` would be larger, so instead we treat a
        missing token as maximally rare but finite by using ``df = 1``.

        Memoised per token: scoring calls this once per query token per
        scored node, and recomputing the logarithm dominated the ranked hot
        path before the cache.
        """
        cached = self._idf_cache.get(token)
        if cached is not None:
            return cached
        df = self.document_frequency(token)
        if df == 0:
            df = 1
        value = math.log(1.0 + self._node_count / df)
        self._idf_cache[token] = value
        return value

    def node_l2_norm(self, node_id: int) -> float:
        """The L2 norm ``||n||_2`` of the node's TF-IDF vector.

        Summed in sorted token order: ``unique_tokens()`` is a set, whose
        iteration order follows the per-process string hash seed, and float
        addition is not associative -- an unsorted sum drifts by an ulp or
        two between processes, which breaks bit-identical score comparisons
        between a server and a replaying client.
        """
        node = self._index.collection.get(node_id)
        unique = self.unique_token_count(node_id)
        if unique == 0:
            return 1.0
        total = 0.0
        for token in sorted(node.unique_tokens()):
            tf = node.occurrence_count(token) / unique
            total += (tf * self.idf(token)) ** 2
        return math.sqrt(total) if total > 0 else 1.0

    def query_l2_norm(self, token_weights: Mapping[str, float]) -> float:
        """The L2 norm ``||q||_2`` of a weighted bag of search tokens."""
        total = sum(
            (weight * self.idf(token)) ** 2 for token, weight in token_weights.items()
        )
        return math.sqrt(total) if total > 0 else 1.0

    # ----------------------------------------------------------- complexity
    def complexity_parameters(self) -> ComplexityParameters:
        """The paper's data-size parameters for this index."""
        entries = [pl.document_frequency() for pl in self._index.posting_lists()]
        pos_per_entry = [
            pl.max_positions_per_entry() for pl in self._index.posting_lists()
        ]
        return ComplexityParameters(
            cnodes=self._node_count,
            pos_per_cnode=max(self._node_lengths.values(), default=0),
            entries_per_token=max(entries, default=0),
            pos_per_entry=max(pos_per_entry, default=0),
        )
