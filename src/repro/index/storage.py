"""On-disk persistence for collections and inverted indexes.

The format is a single JSON document (optionally gzip-compressed) holding the
tokenized collection; the inverted index is rebuilt on load.  Rebuilding is
cheap relative to tokenization and keeps the on-disk format independent of
the in-memory index layout, which makes the format stable across versions.

The format is versioned; loading a file with an unknown version raises
:class:`~repro.exceptions.StorageError`.  Version 2 adds a
``statistics`` block (the collection's :meth:`~Collection.describe` summary);
on load it is checked against the restored nodes, turning silent truncation
or corruption of the node records into an explicit error.  Version-1 files
(no statistics) still load.  Version 3 is the *sealed segment* format of the
live-indexing subsystem (:func:`save_segment` / :func:`load_segment`); plain
collections keep writing version 2, and the v3 writer refuses to downgrade.
Version 4 (:mod:`repro.index.packed`) is the packed *binary* segment format:
the columnar posting arrays written contiguously so segments open in O(1)
and serve cursors zero-copy via ``mmap``.  :func:`load_segment` sniffs the
magic and reads both v3 and v4 files; :func:`save_segment` writes either.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import StorageError
from repro.index.inverted_index import InvertedIndex
from repro.index.packed import (
    PACKED_SEGMENT_VERSION,
    is_packed_segment,
    open_packed_segment,
    write_packed_segment,
)
from repro.model.positions import Position

FORMAT_VERSION = 2

#: Versions :func:`load_collection` understands.
SUPPORTED_VERSIONS = (1, 2)

#: Version 3: the *segment* format of the live-indexing subsystem
#: (:mod:`repro.segments`).  A v3 file is one immutable sealed segment --
#: the v2 node records plus the segment's generation id -- written by
#: :func:`save_segment`.  The per-segment tombstones live in the live
#: index's manifest (they keep changing after the segment file is sealed;
#: the segment file never does).
SEGMENT_FORMAT_VERSION = 3

#: Segment versions :func:`load_segment` understands (v4 is the packed
#: binary format of :mod:`repro.index.packed`, sniffed by magic).
SUPPORTED_SEGMENT_VERSIONS = (3, PACKED_SEGMENT_VERSION)

#: gzip compression level used when none is given: gzip's own default.
DEFAULT_COMPRESSLEVEL = 9


# The per-node JSON record codec is shared with the packed v4 format (the
# packed docs section stores the same records, offset-indexed).
from repro.index.packed import node_from_record as _node_from_dict  # noqa: E402
from repro.index.packed import node_to_record as _node_to_dict  # noqa: E402


def save_collection(
    collection: Collection,
    path: Path | str,
    compresslevel: int = DEFAULT_COMPRESSLEVEL,
) -> None:
    """Serialise a collection to ``path`` (gzip if the suffix is ``.gz``).

    ``compresslevel`` (0 = store .. 9 = smallest, gzip's scale) only
    applies to ``.gz`` paths; large corpora are typically written once and
    read many times, so the default stays at maximum compression.
    """
    path = Path(path)
    if path.suffix == ".gz" and not 0 <= compresslevel <= 9:
        raise StorageError(
            f"compresslevel must be in 0..9, got {compresslevel}"
        )
    document = {
        "format": "repro-collection",
        "version": FORMAT_VERSION,
        "name": collection.name,
        "statistics": collection.describe(),
        "nodes": [_node_to_dict(node) for node in collection],
    }
    payload = json.dumps(document).encode("utf-8")
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "wb", compresslevel=compresslevel) as handle:
                handle.write(payload)
        else:
            path.write_bytes(payload)
    except OSError as exc:
        raise StorageError(f"cannot write {path}: {exc}") from exc


def load_collection(path: Path | str) -> Collection:
    """Load a collection previously written by :func:`save_collection`."""
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rb") as handle:
                payload = handle.read()
        else:
            payload = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from exc
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StorageError(f"{path} is not valid JSON: {exc}") from exc
    if document.get("format") != "repro-collection":
        raise StorageError(f"{path} is not a repro collection file")
    if document.get("version") not in SUPPORTED_VERSIONS:
        raise StorageError(
            f"{path}: unsupported collection format version "
            f"{document.get('version')} (supported: "
            f"{', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    nodes = [_node_from_dict(record) for record in document.get("nodes", [])]
    collection = Collection.from_nodes(nodes, document.get("name", "collection"))
    stored_statistics = document.get("statistics")
    if stored_statistics is not None:
        restored = collection.describe()
        if restored != stored_statistics:
            raise StorageError(
                f"{path} statistics do not match its nodes (file says "
                f"{stored_statistics}, restored {restored}); the node "
                f"records are truncated or corrupt"
            )
    return collection


def _write_document(
    document: dict[str, Any], path: Path, compresslevel: int
) -> None:
    if path.suffix == ".gz" and not 0 <= compresslevel <= 9:
        raise StorageError(f"compresslevel must be in 0..9, got {compresslevel}")
    payload = json.dumps(document).encode("utf-8")
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "wb", compresslevel=compresslevel) as handle:
                handle.write(payload)
        else:
            path.write_bytes(payload)
    except OSError as exc:
        raise StorageError(f"cannot write {path}: {exc}") from exc


def _read_document(path: Path) -> dict[str, Any]:
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rb") as handle:
                payload = handle.read()
        else:
            payload = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from exc
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StorageError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise StorageError(f"{path} does not hold a JSON object")
    return document


def save_segment(
    nodes: "list[ContextNode]",
    path: Path | str,
    *,
    generation: int,
    compresslevel: int = DEFAULT_COMPRESSLEVEL,
    version: int = SEGMENT_FORMAT_VERSION,
) -> None:
    """Persist one sealed segment (gzip if the suffix is ``.gz``).

    ``version`` selects the on-disk layout: 3 writes the JSON segment
    document, 4 the packed binary format of :mod:`repro.index.packed`
    (``compresslevel`` does not apply to v4 -- the packed columns are
    already dense).  The writer refuses to silently downgrade to the v1/v2
    collection formats (which have no segment identity) -- persist via
    :func:`save_collection` explicitly if a plain collection file is what
    you want.
    """
    if version not in SUPPORTED_SEGMENT_VERSIONS:
        raise StorageError(
            f"segment files are written as version {SEGMENT_FORMAT_VERSION} "
            f"or {PACKED_SEGMENT_VERSION}; refusing to downgrade to version "
            f"{version} (use save_collection for the plain "
            f"v{FORMAT_VERSION} format)"
        )
    if version == PACKED_SEGMENT_VERSION:
        index = InvertedIndex(Collection.from_nodes(nodes))
        lists = {pl.token: pl for pl in index.posting_lists()}
        write_packed_segment(
            Path(path),
            index.collection.nodes,
            lists,
            index.any_list(),
            generation=generation,
        )
        return
    statistics = {
        "nodes": len(nodes),
        "tokens": sum(len(node) for node in nodes),
    }
    document = {
        "format": "repro-segment",
        "version": version,
        "generation": generation,
        "statistics": statistics,
        "nodes": [_node_to_dict(node) for node in nodes],
    }
    _write_document(document, Path(path), compresslevel)


def load_segment(path: Path | str) -> "tuple[list[ContextNode], int]":
    """Load a sealed segment written by :func:`save_segment`.

    Returns ``(nodes, generation)``; the stored statistics block is checked
    against the restored nodes so truncation fails loudly, as in v2.  Both
    the v3 JSON layout and the packed v4 binary layout (sniffed by magic)
    are understood; v4 files are fully materialised here -- open them with
    :func:`repro.index.packed.open_packed_segment` for the zero-copy path.
    """
    path = Path(path)
    if is_packed_segment(path):
        reader = open_packed_segment(path)
        try:
            nodes = reader.materialize_nodes()
            stored = reader.statistics
            restored = {
                "nodes": len(nodes),
                "tokens": sum(len(node) for node in nodes),
            }
            if stored != restored:
                raise StorageError(
                    f"{path} statistics do not match its nodes (file says "
                    f"{stored}, restored {restored}); the node records are "
                    f"truncated or corrupt"
                )
            return nodes, reader.generation
        finally:
            reader.close()
    document = _read_document(path)
    if document.get("format") != "repro-segment":
        raise StorageError(f"{path} is not a repro segment file")
    if document.get("version") not in (SEGMENT_FORMAT_VERSION,):
        raise StorageError(
            f"{path}: unsupported segment format version "
            f"{document.get('version')} (supported: "
            f"{', '.join(map(str, SUPPORTED_SEGMENT_VERSIONS))})"
        )
    nodes = [_node_from_dict(record) for record in document.get("nodes", [])]
    stored = document.get("statistics")
    restored = {
        "nodes": len(nodes),
        "tokens": sum(len(node) for node in nodes),
    }
    if stored is not None and stored != restored:
        raise StorageError(
            f"{path} statistics do not match its nodes (file says {stored}, "
            f"restored {restored}); the node records are truncated or corrupt"
        )
    generation = document.get("generation")
    if not isinstance(generation, int) or generation < 0:
        raise StorageError(f"{path} has no valid segment generation")
    return nodes, generation


def save_index(
    index: InvertedIndex,
    path: Path | str,
    compresslevel: int = DEFAULT_COMPRESSLEVEL,
) -> None:
    """Persist an index by persisting its collection (the lists are rebuilt)."""
    save_collection(index.collection, path, compresslevel=compresslevel)


def load_index(path: Path | str, validate: bool = True) -> InvertedIndex:
    """Load an index written by :func:`save_index` and optionally validate it."""
    collection = load_collection(path)
    index = InvertedIndex(collection)
    if validate:
        index.validate()
    return index
