"""On-disk persistence for collections and inverted indexes.

The format is a single JSON document (optionally gzip-compressed) holding the
tokenized collection; the inverted index is rebuilt on load.  Rebuilding is
cheap relative to tokenization and keeps the on-disk format independent of
the in-memory index layout, which makes the format stable across versions.

The format is versioned; loading a file with an unknown version raises
:class:`~repro.exceptions.StorageError`.  Version 2 adds a
``statistics`` block (the collection's :meth:`~Collection.describe` summary);
on load it is checked against the restored nodes, turning silent truncation
or corruption of the node records into an explicit error.  Version-1 files
(no statistics) still load.  Version 3 is the *sealed segment* format of the
live-indexing subsystem (:func:`save_segment` / :func:`load_segment`); plain
collections keep writing version 2, and the v3 writer refuses to downgrade.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.corpus.tokenizer import TokenOccurrence
from repro.exceptions import StorageError
from repro.index.inverted_index import InvertedIndex
from repro.model.positions import Position

FORMAT_VERSION = 2

#: Versions :func:`load_collection` understands.
SUPPORTED_VERSIONS = (1, 2)

#: Version 3: the *segment* format of the live-indexing subsystem
#: (:mod:`repro.segments`).  A v3 file is one immutable sealed segment --
#: the v2 node records plus the segment's generation id -- written by
#: :func:`save_segment`.  The per-segment tombstones live in the live
#: index's manifest (they keep changing after the segment file is sealed;
#: the segment file never does).
SEGMENT_FORMAT_VERSION = 3

#: Segment versions :func:`load_segment` understands.
SUPPORTED_SEGMENT_VERSIONS = (3,)

#: gzip compression level used when none is given: gzip's own default.
DEFAULT_COMPRESSLEVEL = 9


def _node_to_dict(node: ContextNode) -> dict[str, Any]:
    return {
        "id": node.node_id,
        "metadata": dict(node.metadata),
        "occurrences": [
            [occ.token, occ.position.offset, occ.position.sentence,
             occ.position.paragraph]
            for occ in node.occurrences
        ],
    }


def _node_from_dict(payload: dict[str, Any]) -> ContextNode:
    try:
        occurrences = tuple(
            TokenOccurrence(token, Position(offset, sentence, paragraph))
            for token, offset, sentence, paragraph in payload["occurrences"]
        )
        return ContextNode(payload["id"], occurrences, payload.get("metadata", {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed node record: {exc}") from exc


def save_collection(
    collection: Collection,
    path: Path | str,
    compresslevel: int = DEFAULT_COMPRESSLEVEL,
) -> None:
    """Serialise a collection to ``path`` (gzip if the suffix is ``.gz``).

    ``compresslevel`` (0 = store .. 9 = smallest, gzip's scale) only
    applies to ``.gz`` paths; large corpora are typically written once and
    read many times, so the default stays at maximum compression.
    """
    path = Path(path)
    if path.suffix == ".gz" and not 0 <= compresslevel <= 9:
        raise StorageError(
            f"compresslevel must be in 0..9, got {compresslevel}"
        )
    document = {
        "format": "repro-collection",
        "version": FORMAT_VERSION,
        "name": collection.name,
        "statistics": collection.describe(),
        "nodes": [_node_to_dict(node) for node in collection],
    }
    payload = json.dumps(document).encode("utf-8")
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "wb", compresslevel=compresslevel) as handle:
                handle.write(payload)
        else:
            path.write_bytes(payload)
    except OSError as exc:
        raise StorageError(f"cannot write {path}: {exc}") from exc


def load_collection(path: Path | str) -> Collection:
    """Load a collection previously written by :func:`save_collection`."""
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rb") as handle:
                payload = handle.read()
        else:
            payload = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from exc
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StorageError(f"{path} is not valid JSON: {exc}") from exc
    if document.get("format") != "repro-collection":
        raise StorageError(f"{path} is not a repro collection file")
    if document.get("version") not in SUPPORTED_VERSIONS:
        raise StorageError(
            f"unsupported collection format version {document.get('version')}"
        )
    nodes = [_node_from_dict(record) for record in document.get("nodes", [])]
    collection = Collection.from_nodes(nodes, document.get("name", "collection"))
    stored_statistics = document.get("statistics")
    if stored_statistics is not None:
        restored = collection.describe()
        if restored != stored_statistics:
            raise StorageError(
                f"{path} statistics do not match its nodes (file says "
                f"{stored_statistics}, restored {restored}); the node "
                f"records are truncated or corrupt"
            )
    return collection


def _write_document(
    document: dict[str, Any], path: Path, compresslevel: int
) -> None:
    if path.suffix == ".gz" and not 0 <= compresslevel <= 9:
        raise StorageError(f"compresslevel must be in 0..9, got {compresslevel}")
    payload = json.dumps(document).encode("utf-8")
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "wb", compresslevel=compresslevel) as handle:
                handle.write(payload)
        else:
            path.write_bytes(payload)
    except OSError as exc:
        raise StorageError(f"cannot write {path}: {exc}") from exc


def _read_document(path: Path) -> dict[str, Any]:
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rb") as handle:
                payload = handle.read()
        else:
            payload = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from exc
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StorageError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise StorageError(f"{path} does not hold a JSON object")
    return document


def save_segment(
    nodes: "list[ContextNode]",
    path: Path | str,
    *,
    generation: int,
    compresslevel: int = DEFAULT_COMPRESSLEVEL,
    version: int = SEGMENT_FORMAT_VERSION,
) -> None:
    """Persist one sealed segment (v3 format; gzip if the suffix is ``.gz``).

    ``version`` exists so callers *see* what they are writing: the segment
    writer refuses to silently downgrade to the v1/v2 collection formats
    (which have no segment identity) -- persist via :func:`save_collection`
    explicitly if a plain collection file is what you want.
    """
    if version not in SUPPORTED_SEGMENT_VERSIONS:
        raise StorageError(
            f"segment files are written as version {SEGMENT_FORMAT_VERSION}; "
            f"refusing to downgrade to version {version} (use "
            f"save_collection for the plain v{FORMAT_VERSION} format)"
        )
    statistics = {
        "nodes": len(nodes),
        "tokens": sum(len(node) for node in nodes),
    }
    document = {
        "format": "repro-segment",
        "version": version,
        "generation": generation,
        "statistics": statistics,
        "nodes": [_node_to_dict(node) for node in nodes],
    }
    _write_document(document, Path(path), compresslevel)


def load_segment(path: Path | str) -> "tuple[list[ContextNode], int]":
    """Load a sealed segment written by :func:`save_segment`.

    Returns ``(nodes, generation)``; the stored statistics block is checked
    against the restored nodes so truncation fails loudly, as in v2.
    """
    path = Path(path)
    document = _read_document(path)
    if document.get("format") != "repro-segment":
        raise StorageError(f"{path} is not a repro segment file")
    if document.get("version") not in SUPPORTED_SEGMENT_VERSIONS:
        raise StorageError(
            f"unsupported segment format version {document.get('version')}"
        )
    nodes = [_node_from_dict(record) for record in document.get("nodes", [])]
    stored = document.get("statistics")
    restored = {
        "nodes": len(nodes),
        "tokens": sum(len(node) for node in nodes),
    }
    if stored is not None and stored != restored:
        raise StorageError(
            f"{path} statistics do not match its nodes (file says {stored}, "
            f"restored {restored}); the node records are truncated or corrupt"
        )
    generation = document.get("generation")
    if not isinstance(generation, int) or generation < 0:
        raise StorageError(f"{path} has no valid segment generation")
    return nodes, generation


def save_index(
    index: InvertedIndex,
    path: Path | str,
    compresslevel: int = DEFAULT_COMPRESSLEVEL,
) -> None:
    """Persist an index by persisting its collection (the lists are rebuilt)."""
    save_collection(index.collection, path, compresslevel=compresslevel)


def load_index(path: Path | str, validate: bool = True) -> InvertedIndex:
    """Load an index written by :func:`save_index` and optionally validate it."""
    collection = load_collection(path)
    index = InvertedIndex(collection)
    if validate:
        index.validate()
    return index
