"""Read-only inverted index served straight from a packed v4 segment.

:class:`PackedInvertedIndex` gives the engine stack (executors, cursors,
scoring, CLI stats) the full :class:`~repro.index.inverted_index.InvertedIndex`
read surface over an mmap'd :class:`~repro.index.packed.PackedSegmentReader`
without rebuilding anything: posting lists are zero-copy
:class:`~repro.index.packed.PackedPostingList` shells over the file's pages,
and the collection decodes document records lazily per node id.  Opening is
O(directory); queries that never touch a document (the engine pipelines
without scoring) never deserialise one.
"""

from __future__ import annotations

from typing import Iterator

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import IndexError_
from repro.index.inverted_index import InvertedIndex
from repro.index.packed import PackedSegmentReader, open_packed_segment
from repro.index.postings import PostingList


class _LazyNodeMap:
    """A read-only ``{node_id: ContextNode}`` mapping that decodes lazily."""

    __slots__ = ("_reader", "_ids", "_id_set")

    def __init__(self, reader: PackedSegmentReader) -> None:
        self._reader = reader
        self._ids = reader.doc_ids()
        self._id_set = frozenset(self._ids)

    def __getitem__(self, node_id: int) -> ContextNode:
        return self._reader.document(node_id)

    def get(self, node_id: int, default=None):
        if node_id not in self._id_set:
            return default
        return self._reader.document(node_id)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._id_set

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def keys(self):
        return list(self._ids)

    def values(self):
        return self._reader.documents()

    def items(self):
        for node_id in self._ids:
            yield node_id, self._reader.document(node_id)


class LazyCollection(Collection):
    """A :class:`Collection` whose nodes decode on first access.

    Read paths (iteration, lookup, statistics) behave exactly like an
    in-memory collection; mutation paths fail because the backing segment
    file is immutable.
    """

    def __init__(self, reader: PackedSegmentReader, name: str | None = None) -> None:
        self.nodes = _LazyNodeMap(reader)
        self.name = name if name is not None else reader.name


class PackedInvertedIndex(InvertedIndex):
    """An :class:`InvertedIndex` view over a packed v4 segment file.

    Construction builds only the posting-list *shells* (memoryview casts per
    directory row -- no payload decode); the actual column data stays on OS
    page-cache pages until a cursor touches it.  The index is read-only:
    the append paths raise, matching the immutability of the backing file.
    """

    def __init__(self, reader: PackedSegmentReader) -> None:
        self._reader = reader
        self.collection = LazyCollection(reader)
        self._lists: dict[str, PostingList] = {
            token: reader.posting_list(token) for token in reader.tokens()
        }
        self._any_list = reader.any_list()
        self._statistics = None

    @classmethod
    def open(cls, path, *, verify: bool = False) -> "PackedInvertedIndex":
        """Open a packed segment file as a read-only index."""
        return cls(open_packed_segment(path, verify=verify))

    @property
    def reader(self) -> PackedSegmentReader:
        """The underlying open segment reader."""
        return self._reader

    def add_node(self, node) -> None:
        raise IndexError_(
            "a packed inverted index is read-only (backed by an immutable "
            "segment file); rebuild and re-save the index to add nodes"
        )

    def close(self) -> None:
        """Close the underlying reader (see its caveats on borrowed views)."""
        self._reader.close()

    def __enter__(self) -> "PackedInvertedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def save_packed_index(index: InvertedIndex, path) -> None:
    """Persist an index as one packed v4 segment file."""
    from repro.index.packed import write_packed_segment

    lists = {pl.token: pl for pl in index.posting_lists()}
    docs = {node.node_id: node for node in index.collection}
    write_packed_segment(
        path, docs, lists, index.any_list(), name=index.collection.name
    )


def open_packed_index(path, *, verify: bool = False) -> PackedInvertedIndex:
    """Open a packed v4 segment file as a read-only inverted index."""
    return PackedInvertedIndex.open(path, verify=verify)
