"""Immutable index segments backed by the columnar posting storage.

A :class:`SegmentData` is the frozen columnar view of a set of documents:
one :class:`~repro.index.postings.PostingList` per token plus the segment's
``IL_ANY`` slice, built in one ascending-id pass exactly like
:class:`~repro.index.inverted_index.InvertedIndex` builds its lists.  It is
used both as the memtable's frozen read view and as the payload of a
:class:`SealedSegment`.

A :class:`SealedSegment` adds the segment identity (its *generation*, a
monotonically increasing id assigned at seal time) and the segment's
:class:`~repro.segments.tombstones.TombstoneSet`.  The posting data of a
sealed segment never changes; deletes and updates of its nodes only ever
append tombstones, and compaction replaces whole segments.

:class:`PackedSegmentData` is the zero-copy counterpart of
:class:`SegmentData` for segments restored from packed v4 files
(:mod:`repro.index.packed`): its posting lists are ``memoryview`` shells
over the mmap'd file, so restoring a sealed segment does not rebuild any
posting columns.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.corpus.document import ContextNode
from repro.index.inverted_index import ANY_TOKEN
from repro.index.packed import PackedSegmentReader
from repro.index.packed_index import _LazyNodeMap
from repro.index.postings import PostingList
from repro.segments.tombstones import TombstoneSet


class SegmentData:
    """Frozen columnar posting lists over an id-ordered set of documents."""

    __slots__ = ("docs", "lists", "any_list", "_node_ids", "position_count")

    def __init__(self, docs: Mapping[int, ContextNode]) -> None:
        self.docs: dict[int, ContextNode] = dict(docs)
        self._node_ids: list[int] = sorted(self.docs)
        self.lists: dict[str, PostingList] = {}
        self.any_list = PostingList(ANY_TOKEN)
        self.position_count = 0
        for node_id in self._node_ids:
            node = self.docs[node_id]
            all_positions = node.positions()
            if all_positions:
                self.any_list.add_occurrences(node_id, all_positions)
                self.position_count += len(all_positions)
            per_token: dict[str, list] = {}
            for occurrence in node:
                per_token.setdefault(occurrence.token, []).append(occurrence.position)
            for token, positions in per_token.items():
                posting_list = self.lists.get(token)
                if posting_list is None:
                    posting_list = PostingList(token)
                    self.lists[token] = posting_list
                posting_list.add_occurrences(node_id, positions)

    @classmethod
    def from_nodes(cls, nodes: Iterable[ContextNode]) -> "SegmentData":
        return cls({node.node_id: node for node in nodes})

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.docs)

    def __bool__(self) -> bool:
        return bool(self.docs)

    def node_ids(self) -> list[int]:
        """The segment's node ids, ascending (shared list; do not mutate)."""
        return self._node_ids

    def posting_list(self, token: str) -> PostingList | None:
        """The segment's list for ``token`` (``None`` when absent here)."""
        return self.lists.get(token)

    def documents(self) -> Iterator[ContextNode]:
        """The segment's documents in ascending id order."""
        for node_id in self._node_ids:
            yield self.docs[node_id]

    def memory_breakdown(self) -> dict[str, int]:
        """Columnar byte sizes summed over every list plus ``IL_ANY``."""
        totals = {
            "node_ids_bytes": 0,
            "entry_bounds_bytes": 0,
            "offsets_bytes": 0,
            "structure_bytes": 0,
        }
        for posting_list in list(self.lists.values()) + [self.any_list]:
            for key, value in posting_list.memory_breakdown().items():
                totals[key] += value
        return totals

    def memory_bytes(self) -> int:
        return sum(self.memory_breakdown().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SegmentData(docs={len(self.docs)}, tokens={len(self.lists)})"


class _LazyListMap:
    """A read-only ``{token: PostingList}`` view over a packed segment."""

    __slots__ = ("_reader", "_tokens")

    def __init__(self, reader: PackedSegmentReader) -> None:
        self._reader = reader
        self._tokens = reader.tokens()

    def get(self, token: str, default=None):
        found = self._reader.posting_list(token)
        return default if found is None else found

    def __getitem__(self, token: str) -> PostingList:
        found = self._reader.posting_list(token)
        if found is None:
            raise KeyError(token)
        return found

    def __contains__(self, token: object) -> bool:
        return self._reader.posting_list(token) is not None

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def keys(self):
        return list(self._tokens)

    def values(self):
        return [self._reader.posting_list(token) for token in self._tokens]

    def items(self):
        return [(token, self._reader.posting_list(token)) for token in self._tokens]


class PackedSegmentData(SegmentData):
    """Frozen segment data served zero-copy from a packed v4 file.

    Mirrors the :class:`SegmentData` surface the manager and snapshots rely
    on (``docs``/``lists``/``any_list``/``node_ids``/``position_count``),
    but posting lists are mmap-backed
    :class:`~repro.index.packed.PackedPostingList` shells and documents
    decode lazily per node id -- restoring a segment reads only the file
    header.
    """

    __slots__ = ("_reader",)

    def __init__(self, reader: PackedSegmentReader) -> None:
        self._reader = reader
        self.docs = _LazyNodeMap(reader)
        self.lists = _LazyListMap(reader)
        self.any_list = reader.any_list()
        self._node_ids = reader.doc_ids()
        self.position_count = self.any_list.total_positions()

    @property
    def reader(self) -> PackedSegmentReader:
        return self._reader

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PackedSegmentData(docs={len(self.docs)}, tokens={len(self.lists)}, "
            f"path={str(self._reader.path)!r})"
        )


class SealedSegment:
    """An immutable segment: frozen posting data plus its tombstones."""

    __slots__ = ("generation", "data", "tombstones")

    def __init__(
        self,
        generation: int,
        data: SegmentData,
        tombstones: TombstoneSet | None = None,
    ) -> None:
        self.generation = generation
        self.data = data
        self.tombstones = tombstones if tombstones is not None else TombstoneSet()

    @classmethod
    def from_nodes(
        cls, generation: int, nodes: Iterable[ContextNode]
    ) -> "SealedSegment":
        return cls(generation, SegmentData.from_nodes(nodes))

    # ------------------------------------------------------------- accessors
    @property
    def doc_count(self) -> int:
        """Physical documents in the segment (tombstoned ones included)."""
        return len(self.data)

    def live_count(self, as_of: int | None = None) -> int:
        """Documents still visible (optionally as of a snapshot seqno)."""
        return len(self.data) - len(self.tombstones.dead_ids(as_of))

    def survivors(self, as_of: int) -> list[ContextNode]:
        """The documents a snapshot at ``as_of`` can still see, id order."""
        dead = self.tombstones.dead_ids(as_of)
        return [
            self.data.docs[node_id]
            for node_id in self.data.node_ids()
            if node_id not in dead
        ]

    def describe(self, as_of: int | None = None) -> dict[str, int]:
        """Size figures for ``repro segment-stats`` and the benchmarks."""
        return {
            "generation": self.generation,
            "docs": self.doc_count,
            "live_docs": self.live_count(as_of),
            "tombstones": len(self.tombstones.dead_ids(as_of)),
            "tokens": len(self.data.lists),
            "positions": self.data.position_count,
            "memory_bytes": self.data.memory_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SealedSegment(generation={self.generation}, docs={self.doc_count}, "
            f"tombstones={len(self.tombstones)})"
        )
