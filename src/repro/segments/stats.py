"""Exact corpus statistics over the *surviving* documents of a live index.

Scoring must not notice that an index is live: TF-IDF and the probabilistic
model read document frequency ``df(t)``, the node count and the per-node
token tables from an :class:`~repro.index.statistics.IndexStatistics`.  A
live index cannot reuse the parent's constructor (it derives ``df`` from
physical posting lists, which still hold tombstoned entries), so this
subclass recomputes every table from the surviving documents -- yielding
numbers identical to a fresh :class:`~repro.index.inverted_index.InvertedIndex`
built from the same survivors, which is what the live-vs-rebuilt contract
tests pin down.

The same class serves the live *sharded* path (the global collection is the
disjoint union of the shard collections), mirroring how
:class:`~repro.cluster.stats.AggregatedStatistics` serves static shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.corpus.collection import Collection
from repro.index.statistics import ComplexityParameters, IndexStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.index.postings import PostingList


class _LiveIndexView:
    """The minimal index surface scoring reaches through ``statistics._index``.

    ``collection`` serves node content (norms, previews); ``posting_lists``
    chains the physical per-segment lists for complexity parameters.
    """

    def __init__(
        self,
        collection: Collection,
        posting_lists: "Callable[[], Iterator[PostingList]]",
    ) -> None:
        self.collection = collection
        self._posting_lists = posting_lists

    def posting_lists(self) -> "Iterator[PostingList]":
        return self._posting_lists()

    def node_count(self) -> int:
        return len(self.collection)


class LiveStatistics(IndexStatistics):
    """Statistics recomputed from the surviving documents of a live index."""

    def __init__(
        self,
        collection: Collection,
        posting_lists: "Callable[[], Iterator[PostingList]]",
    ) -> None:
        # Deliberately no super().__init__: the parent scans physical posting
        # lists, which on a live index still contain tombstoned entries.
        #
        # Freeze the document map first (one atomic dict copy -- documents
        # themselves are immutable): the scan below and every later
        # node-content lookup (norms, probabilistic occurrence counts) then
        # read a self-consistent corpus even while writers keep mutating the
        # live collection, and a node deleted after this statistics
        # generation was cut can still be scored by in-flight queries.
        frozen = Collection(dict(collection.nodes), collection.name)
        self._index = _LiveIndexView(frozen, posting_lists)
        self._node_count = len(frozen)
        document_frequency: dict[str, int] = {}
        unique_tokens: dict[int, int] = {}
        node_lengths: dict[int, int] = {}
        for node in frozen:
            unique_tokens[node.node_id] = node.unique_token_count()
            node_lengths[node.node_id] = len(node)
            for token in node.unique_tokens():
                document_frequency[token] = document_frequency.get(token, 0) + 1
        self._document_frequency = document_frequency
        self._unique_tokens = unique_tokens
        self._node_lengths = node_lengths

    def complexity_parameters(self) -> ComplexityParameters:
        """The paper's data-size parameters for the live corpus.

        ``entries_per_token`` comes from the exact (survivor-based) document
        frequencies; ``pos_per_entry`` is a maximum over the physical
        per-segment lists, a tight upper bound that may count a tombstoned
        entry until the next compaction purges it.
        """
        pos_per_entry = [
            posting_list.max_positions_per_entry()
            for posting_list in self._index.posting_lists()
        ]
        return ComplexityParameters(
            cnodes=self._node_count,
            pos_per_cnode=max(self._node_lengths.values(), default=0),
            entries_per_token=max(self._document_frequency.values(), default=0),
            pos_per_entry=max(pos_per_entry, default=0),
        )
