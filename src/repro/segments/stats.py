"""Exact corpus statistics over the *surviving* documents of a live index.

Scoring must not notice that an index is live: TF-IDF and the probabilistic
model read document frequency ``df(t)``, the node count and the per-node
token tables from an :class:`~repro.index.statistics.IndexStatistics`.  A
live index cannot reuse the parent's constructor (it derives ``df`` from
physical posting lists, which still hold tombstoned entries), so this
subclass recomputes every table from the surviving documents -- yielding
numbers identical to a fresh :class:`~repro.index.inverted_index.InvertedIndex`
built from the same survivors, which is what the live-vs-rebuilt contract
tests pin down.

The same class serves the live *sharded* path (the global collection is the
disjoint union of the shard collections), mirroring how
:class:`~repro.cluster.stats.AggregatedStatistics` serves static shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.corpus.collection import Collection
from repro.index.statistics import ComplexityParameters, IndexStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.index.postings import PostingList


class _LiveIndexView:
    """The minimal index surface scoring reaches through ``statistics._index``.

    ``collection`` serves node content (norms, previews); ``posting_lists``
    chains the physical per-segment lists for complexity parameters.
    """

    def __init__(
        self,
        collection: Collection,
        posting_lists: "Callable[[], Iterator[PostingList]]",
    ) -> None:
        self.collection = collection
        self._posting_lists = posting_lists

    def posting_lists(self) -> "Iterator[PostingList]":
        return self._posting_lists()

    def node_count(self) -> int:
        return len(self.collection)


class LiveStatistics(IndexStatistics):
    """Statistics recomputed from the surviving documents of a live index."""

    def __init__(
        self,
        collection: Collection,
        posting_lists: "Callable[[], Iterator[PostingList]]",
    ) -> None:
        # Deliberately no super().__init__: the parent scans physical posting
        # lists, which on a live index still contain tombstoned entries.
        #
        # Freeze the document map first (one atomic dict copy -- documents
        # themselves are immutable): the scan below and every later
        # node-content lookup (norms, probabilistic occurrence counts) then
        # read a self-consistent corpus even while writers keep mutating the
        # live collection, and a node deleted after this statistics
        # generation was cut can still be scored by in-flight queries.
        frozen = Collection(dict(collection.nodes), collection.name)
        self._index = _LiveIndexView(frozen, posting_lists)
        self._node_count = len(frozen)
        document_frequency: dict[str, int] = {}
        unique_tokens: dict[int, int] = {}
        node_lengths: dict[int, int] = {}
        for node in frozen:
            unique_tokens[node.node_id] = node.unique_token_count()
            node_lengths[node.node_id] = len(node)
            for token in node.unique_tokens():
                document_frequency[token] = document_frequency.get(token, 0) + 1
        self._document_frequency = document_frequency
        self._unique_tokens = unique_tokens
        self._node_lengths = node_lengths
        self._max_occurrences = {}
        self._max_occurrences_scanned = False
        self._idf_cache = {}

    def _compute_max_occurrences(self, token: str) -> int:
        """Survivor-exact per-token occurrence maxima.

        The physical posting lists still hold tombstoned entries and are
        re-snapshotted on every call, so deriving the maxima from them could
        go stale against this generation's frozen corpus.  Instead the whole
        table is built in one pass over the frozen survivors on first use --
        paid only by queries that score with top-k pruning, at most once per
        statistics generation.

        One ``LiveStatistics`` instance is shared by every shard's scoring
        model on the live sharded path, and shard executors run
        concurrently -- so the table is built into a *local* dict and
        published with one atomic reference swap.  A concurrent reader
        either sees the complete table or (pre-swap) misses and runs its
        own scan over the same frozen corpus: duplicated work at worst,
        never a partially-built maximum (which would under-estimate a score
        upper bound and make the top-k pruning silently inexact).
        """
        if not self._max_occurrences_scanned:
            table: dict[str, int] = {}
            for node in self._index.collection:
                for node_token in node.unique_tokens():
                    count = node.occurrence_count(node_token)
                    if count > table.get(node_token, 0):
                        table[node_token] = count
            self._max_occurrences = table
            self._max_occurrences_scanned = True
        return self._max_occurrences.get(token, 0)

    def complexity_parameters(self) -> ComplexityParameters:
        """The paper's data-size parameters for the live corpus.

        ``entries_per_token`` comes from the exact (survivor-based) document
        frequencies; ``pos_per_entry`` is a maximum over the physical
        per-segment lists, a tight upper bound that may count a tombstoned
        entry until the next compaction purges it.
        """
        pos_per_entry = [
            posting_list.max_positions_per_entry()
            for posting_list in self._index.posting_lists()
        ]
        return ComplexityParameters(
            cnodes=self._node_count,
            pos_per_cnode=max(self._node_lengths.values(), default=0),
            entries_per_token=max(self._document_frequency.values(), default=0),
            pos_per_entry=max(pos_per_entry, default=0),
        )
