"""Live indexing: WAL + memtable + sealed segments + compaction.

This package turns the static index of the paper into a log-structured,
mutable-corpus engine (the Lucene-style segment architecture):

* :mod:`repro.segments.wal`        -- append-only JSONL write-ahead log with
  batched fsync and torn-tail-tolerant replay;
* :mod:`repro.segments.memtable`   -- the small mutable head accepting adds,
  updates and deletes, with a cached immutable columnar view;
* :mod:`repro.segments.sealed`     -- immutable segments built on the
  columnar :class:`~repro.index.postings.PostingList` storage;
* :mod:`repro.segments.tombstones` -- seqno-stamped logical deletes, applied
  at cursor-merge time with snapshot-consistent visibility;
* :mod:`repro.segments.manager`    -- memtable + segments + location map +
  snapshot isolation + tiered background compaction;
* :mod:`repro.segments.stats`      -- exact survivor-based corpus statistics
  so live scores equal freshly-rebuilt scores;
* :mod:`repro.segments.live_index` -- the index facade combining all of the
  above with v3 segment-file persistence and manifest-based recovery.

The high-level entry point is
``FullTextEngine.from_collection(collection, live=True)``; at the cluster
scale, :class:`repro.cluster.live.LiveShardedIndex` runs one live index per
shard.
"""

from repro.segments.live_index import LiveIndex
from repro.segments.manager import (
    DEFAULT_COMPACTION_FANOUT,
    DEFAULT_FLUSH_THRESHOLD,
    MEMTABLE_LOCATION,
    SegmentManager,
    SegmentSnapshot,
)
from repro.segments.memtable import MemTable
from repro.segments.sealed import SealedSegment, SegmentData
from repro.segments.stats import LiveStatistics
from repro.segments.tombstones import TombstoneSet
from repro.segments.wal import DEFAULT_SYNC_EVERY, WriteAheadLog

__all__ = [
    "DEFAULT_COMPACTION_FANOUT",
    "DEFAULT_FLUSH_THRESHOLD",
    "DEFAULT_SYNC_EVERY",
    "LiveIndex",
    "LiveStatistics",
    "MEMTABLE_LOCATION",
    "MemTable",
    "SealedSegment",
    "SegmentData",
    "SegmentManager",
    "SegmentSnapshot",
    "TombstoneSet",
    "WriteAheadLog",
]
