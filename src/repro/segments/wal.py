"""Write-ahead log: the durability layer of the live index.

Every mutation (add / update / delete) is serialised as one JSON object per
line and appended here *before* it is applied in memory.  The format is
deliberately boring -- JSONL -- because its recovery story is trivial: a
record is durable if and only if its line parses and is newline-terminated,
so a crash mid-write tears at most the final line, which replay discards.

Durability is batched: ``append`` pushes the record into the OS via
``flush()`` immediately, but the expensive ``fsync`` runs only every
``sync_every`` records (or on an explicit :meth:`sync`, which sealing and
closing always perform).  A crash therefore loses at most the records since
the last durable batch -- the classic group-commit trade.

Records carry a monotonic ``seq`` stamped by the caller.  The checkpoint
manifest of :class:`~repro.segments.live_index.LiveIndex` remembers the
highest sequence number already folded into sealed segments, so replay
skips records a checkpoint has made redundant -- re-applying a WAL after a
crash can never duplicate a document.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import StorageError
from repro.telemetry import instruments

#: Default number of appends between fsync batches.
DEFAULT_SYNC_EVERY = 32


class WriteAheadLog:
    """An append-only JSONL operation log with batched fsync."""

    def __init__(self, path: Path | str, sync_every: int = DEFAULT_SYNC_EVERY) -> None:
        if sync_every < 1:
            raise StorageError(f"sync_every must be >= 1, got {sync_every}")
        self.path = Path(path)
        self.sync_every = sync_every
        self.appended = 0
        self.synced_batches = 0
        self._pending = 0
        #: Bytes this instance has reported into the repro_wal_bytes gauge;
        #: deltas against it keep the gauge exact across many open WALs.
        self._bytes_reported = 0
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        except OSError as exc:
            raise StorageError(f"cannot open WAL {self.path}: {exc}") from exc
        self._report_bytes(self._handle.tell())

    # ------------------------------------------------------------- gauges
    def _report_bytes(self, current: int) -> None:
        """Move this WAL's repro_wal_bytes contribution to ``current``."""
        delta = current - self._bytes_reported
        if delta and instruments.REGISTRY.enabled:
            instruments.WAL_BYTES.inc(delta)
        self._bytes_reported = current

    def _report_pending(self, delta: int) -> None:
        if delta and instruments.REGISTRY.enabled:
            instruments.WAL_PENDING_RECORDS.inc(delta)

    # ------------------------------------------------------------- writing
    def append(self, record: dict[str, Any]) -> None:
        """Serialise one operation record; fsync when the batch fills up."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        encoded = line.encode("utf-8")
        try:
            self._handle.write(encoded)
            self._handle.flush()
        except (OSError, ValueError) as exc:
            raise StorageError(f"cannot append to WAL {self.path}: {exc}") from exc
        self.appended += 1
        self._pending += 1
        if instruments.REGISTRY.enabled:
            instruments.WAL_APPENDS_TOTAL.inc()
        self._report_bytes(self._bytes_reported + len(encoded))
        self._report_pending(1)
        if self._pending >= self.sync_every:
            self.sync()

    def sync(self) -> None:
        """Force the pending batch to stable storage (fsync)."""
        if self._handle.closed:
            return
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise StorageError(f"cannot fsync WAL {self.path}: {exc}") from exc
        if self._pending:
            self.synced_batches += 1
            if instruments.REGISTRY.enabled:
                instruments.WAL_FSYNCS_TOTAL.inc()
        self._report_pending(-self._pending)
        self._pending = 0

    def reset(self) -> None:
        """Truncate the log (every record is now covered by a checkpoint)."""
        try:
            self._handle.truncate(0)
            self._handle.seek(0)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise StorageError(f"cannot reset WAL {self.path}: {exc}") from exc
        self._report_bytes(0)
        self._report_pending(-self._pending)
        self._pending = 0

    def close(self) -> None:
        """fsync any pending batch and close the file (idempotent)."""
        if not self._handle.closed:
            self.sync()
            self._handle.close()
            # Withdraw this instance's gauge contribution: the family counts
            # *open* WALs only.
            self._report_bytes(0)

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- recovery
    @staticmethod
    def replay(path: Path | str) -> list[dict[str, Any]]:
        """Read back every durable record, discarding a torn final write.

        A record torn by a crash shows up as a final line that either does
        not end in a newline or does not parse as JSON; recovery stops at
        the last durable record rather than failing, mirroring how every
        log-structured store treats its tail.  A torn or unparsable line
        anywhere *before* the tail means real corruption and raises.
        """
        path = Path(path)
        if not path.exists():
            return []
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise StorageError(f"cannot read WAL {path}: {exc}") from exc
        records: list[dict[str, Any]] = []
        lines = payload.split(b"\n")
        # A payload ending in "\n" splits into [.., b""]; anything else means
        # the final record was torn mid-write.
        complete, tail = lines[:-1], lines[-1]
        for index, line in enumerate(complete):
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == len(complete) - 1 and not tail:
                    # Unparsable final line: torn write, drop it.
                    break
                raise StorageError(
                    f"WAL {path} is corrupt at record {index}: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise StorageError(
                    f"WAL {path} record {index} is not an object: {record!r}"
                )
            records.append(record)
        return records

    @staticmethod
    def replay_after(path: Path | str, applied_seq: int) -> Iterator[dict[str, Any]]:
        """Durable records newer than a checkpoint's ``applied_seq``."""
        for record in WriteAheadLog.replay(path):
            if int(record.get("seq", 0)) > applied_seq:
                yield record

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"WriteAheadLog(path={str(self.path)!r}, appended={self.appended}, "
            f"synced_batches={self.synced_batches})"
        )
