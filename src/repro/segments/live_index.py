"""The live index: WAL + segment manager behind the index read interface.

:class:`LiveIndex` is the mutable-corpus counterpart of
:class:`~repro.index.inverted_index.InvertedIndex`.  It accepts adds,
updates and deletes while serving queries, by composing:

* a :class:`~repro.segments.manager.SegmentManager` (memtable + sealed
  segments + tombstones + compaction) for the in-memory state, and
* optionally -- when built with a ``directory`` -- a durability layer:
  every mutation is appended to a :class:`~repro.segments.wal.WriteAheadLog`
  *before* it is applied, sealed segments are persisted as immutable v3
  files (:func:`repro.index.storage.save_segment`), and an atomically
  replaced ``MANIFEST.json`` records which segment files and tombstones are
  current plus the highest WAL sequence number they cover.

Recovery on open is therefore: load the manifest's segments, then replay
every durable WAL record newer than the manifest's ``applied_seq``.  Replay
is idempotent (re-adding a live id or re-deleting a dead one is a no-op),
so a crash between "manifest written" and "WAL truncated" cannot duplicate
or lose a document.

Reads mirror :class:`InvertedIndex` closely enough that every evaluation
engine runs unchanged; per-query consistency comes from
:meth:`LiveIndex.snapshot`, which the executor takes once per query.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterator

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import StorageError
from repro.index.cursor import CursorFactory, PAPER_MODE
from repro.index.packed import (
    is_packed_segment,
    open_packed_segment,
    write_packed_segment,
)
from repro.index.storage import (
    DEFAULT_COMPRESSLEVEL,
    PACKED_SEGMENT_VERSION,
    SEGMENT_FORMAT_VERSION,
    _node_from_dict,
    _node_to_dict,
    load_segment,
    save_segment,
)
from repro.segments.manager import (
    DEFAULT_COMPACTION_FANOUT,
    DEFAULT_FLUSH_THRESHOLD,
    SegmentManager,
    SegmentSnapshot,
)
from repro.segments.sealed import PackedSegmentData, SealedSegment, SegmentData
from repro.segments.stats import LiveStatistics
from repro.segments.tombstones import TombstoneSet
from repro.segments.wal import DEFAULT_SYNC_EVERY, WriteAheadLog

#: File names inside a live-index directory.
MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.jsonl"
SEGMENT_DIR = "segments"

#: On-disk layouts for sealed segment files.  ``"packed"`` (the default for
#: new seals) writes the binary v4 format and restores zero-copy via mmap;
#: ``"json"`` keeps the gzip'd v3 JSON documents.  Restore sniffs each file,
#: so a directory may mix both (e.g. after changing the setting).
SEGMENT_FORMATS = ("packed", "json")


def _fsync_path(path: Path) -> None:
    """fsync a file or directory by path (directory entries need it too)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platforms that cannot open directories read-only
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class LiveIndex:
    """An inverted index that accepts adds, updates and deletes while serving."""

    def __init__(
        self,
        collection: Collection | None = None,
        *,
        directory: "Path | str | None" = None,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        compaction_fanout: int = DEFAULT_COMPACTION_FANOUT,
        sync_every: int = DEFAULT_SYNC_EVERY,
        auto_compact: bool = False,
        compaction_interval: float = 0.05,
        segment_format: str = "packed",
    ) -> None:
        if segment_format not in SEGMENT_FORMATS:
            raise StorageError(
                f"unknown segment_format {segment_format!r} "
                f"(choose from {SEGMENT_FORMATS})"
            )
        self._segment_format = segment_format
        self.directory = Path(directory) if directory is not None else None
        self._wal: WriteAheadLog | None = None
        self._durable_seq = 0
        self._replaying = False
        self._persisted_generations: set[int] = set()
        #: Actual file per persisted generation -- restored segments may use
        #: a different layout (suffix) than the configured one.
        self._segment_files: dict[int, Path] = {}
        self._packed_readers: list = []
        self._statistics: LiveStatistics | None = None
        self._stats_seq = -1
        manifest = None
        if self.directory is not None:
            manifest_path = self.directory / MANIFEST_NAME
            if manifest_path.exists():
                if collection is not None and len(collection):
                    raise StorageError(
                        f"{self.directory} already holds a live index; open it "
                        f"without an initial collection"
                    )
                manifest = self._read_manifest(manifest_path)
        self._manager = SegmentManager(
            collection if manifest is None else None,
            flush_threshold=flush_threshold,
            compaction_fanout=compaction_fanout,
            on_seal=self._handle_seal,
            on_compact=self._handle_compact,
        )
        if self.directory is not None:
            (self.directory / SEGMENT_DIR).mkdir(parents=True, exist_ok=True)
            if manifest is not None:
                self._restore(manifest)
            self._wal = WriteAheadLog(
                self.directory / WAL_NAME, sync_every=sync_every
            )
            if manifest is not None:
                self._replay_wal(manifest["applied_seq"])
            self._sync_disk_state()
        if auto_compact:
            self._manager.start_auto_compaction(compaction_interval)

    # -------------------------------------------------------------- builders
    @classmethod
    def from_collection(cls, collection: Collection, **kwargs) -> "LiveIndex":
        """Build a live index over an existing collection (bulk load)."""
        return cls(collection, **kwargs)

    @classmethod
    def open(cls, directory: "Path | str", **kwargs) -> "LiveIndex":
        """Open (or create) the live index persisted in ``directory``."""
        return cls(directory=directory, **kwargs)

    # --------------------------------------------------------------- writes
    def add_node(self, node: ContextNode) -> None:
        """Index a new document; its id must not be currently live."""
        with self._manager.lock:
            self._manager.ensure_can_add(node)
            self._log({"op": "add", "node": _node_to_dict(node)})
            self._manager.add(node)

    def add_text(self, text: str, tokenizer=None, metadata=None) -> int:
        """Tokenize ``text``, index it as a new node, and return its id."""
        with self._manager.lock:
            node_id = self.next_node_id()
            node = ContextNode.from_text(node_id, text, tokenizer, metadata=metadata)
            self.add_node(node)
            return node_id

    def update_node(self, node: ContextNode) -> None:
        """Replace the content of a live document (same node id)."""
        with self._manager.lock:
            if not self._manager.is_live(node.node_id):
                from repro.exceptions import IndexError_

                raise IndexError_(
                    f"cannot update node {node.node_id}: it is not indexed"
                )
            self._log({"op": "update", "node": _node_to_dict(node)})
            self._manager.update(node)

    def update_text(self, node_id: int, text: str, tokenizer=None, metadata=None) -> None:
        """Tokenize ``text`` and swap it in as the new revision of ``node_id``."""
        node = ContextNode.from_text(node_id, text, tokenizer, metadata=metadata)
        self.update_node(node)

    def delete_node(self, node_id: int) -> bool:
        """Delete a document; returns False when the id is not live."""
        with self._manager.lock:
            if not self._manager.is_live(node_id):
                return False
            self._log({"op": "delete", "id": node_id})
            return self._manager.delete(node_id)

    def next_node_id(self) -> int:
        """The next never-used node id (monotonic across deletes)."""
        return self._manager.next_node_id()

    # ----------------------------------------------------------- maintenance
    def flush(self) -> SealedSegment | None:
        """Seal the memtable into an immutable segment (and persist it)."""
        return self._manager.flush()

    def compact(self) -> dict[str, int]:
        """Merge every sealed segment into one, purging all tombstones."""
        return self._manager.compact()

    def maybe_compact(self) -> dict[str, int]:
        """Run one round of tiered compaction if any size tier is full."""
        return self._manager.maybe_compact()

    def start_auto_compaction(self, interval: float = 0.05) -> None:
        self._manager.start_auto_compaction(interval)

    def stop_auto_compaction(self) -> None:
        self._manager.stop_auto_compaction()

    def close(self) -> None:
        """Stop background work and make the WAL durable (idempotent)."""
        self._manager.stop_auto_compaction()
        if self._wal is not None:
            self._wal.close()
        # Packed readers opened by _restore are deliberately left open: the
        # in-memory segments keep borrowed views of their pages, and reads
        # must survive close() (which only settles durability).  The OS
        # reclaims the mappings when the segments are garbage-collected.

    def __enter__(self) -> "LiveIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- reading
    def snapshot(self) -> SegmentSnapshot:
        """A consistent per-query view (the executor takes one per query)."""
        return self._manager.snapshot()

    @property
    def collection(self) -> Collection:
        """The live document store (surviving revisions only)."""
        return self._manager.collection

    @property
    def generation(self) -> int:
        """The mutation sequence number; changes iff results may change.

        Flushes and compactions reorganise storage without touching results,
        so they leave the generation alone -- result caches keyed on it stay
        warm across maintenance.
        """
        return self._manager.seq

    @property
    def manager(self) -> SegmentManager:
        return self._manager

    def node_count(self) -> int:
        return self._manager.live_count()

    def node_ids(self) -> list[int]:
        return self.collection.node_ids()

    def tokens(self) -> list[str]:
        """Every token with at least one surviving occurrence, sorted."""
        return sorted(self.statistics.vocabulary())

    def __contains__(self, token: str) -> bool:
        return self.document_frequency(token) > 0

    def document_frequency(self, token: str) -> int:
        """Exact ``df(t)`` over surviving documents (tombstones excluded)."""
        snapshot = self.snapshot()
        count = 0
        for segment in snapshot.segments:
            posting_list = segment.data.lists.get(token)
            if posting_list is None:
                continue
            dead = segment.tombstones.dead_ids(snapshot.seq)
            if dead:
                count += sum(
                    1 for node_id in posting_list.node_ids() if node_id not in dead
                )
            else:
                count += len(posting_list)
        if snapshot.memview is not None:
            posting_list = snapshot.memview.lists.get(token)
            if posting_list is not None:
                count += len(posting_list)
        return count

    def posting_list(self, token: str):
        """A size view of the logical list (see :class:`SegmentSnapshot`)."""
        return self.snapshot().posting_list(token)

    def any_list(self):
        return self.snapshot().any_list()

    def posting_lists(self) -> Iterator:
        """The *physical* per-segment posting lists (tombstones included).

        Used by size accounting (``shard-stats``, memory footprint) and the
        complexity parameters; logical reads go through cursors instead.
        """
        snapshot = self.snapshot()
        for segment in snapshot.segments:
            yield from segment.data.lists.values()
        if snapshot.memview is not None:
            yield from snapshot.memview.lists.values()

    def open_cursor(
        self, token: str, factory: CursorFactory | None = None, mode: str = PAPER_MODE
    ):
        """Convenience single-call cursor (takes a fresh snapshot per call).

        Engines should not mix cursors from different calls; the executor
        uses :meth:`snapshot` so one query's cursors share one view.
        """
        return self.snapshot().open_cursor(token, factory, mode)

    def open_any_cursor(self, factory: CursorFactory | None = None, mode: str = PAPER_MODE):
        return self.snapshot().open_any_cursor(factory, mode)

    @property
    def statistics(self) -> LiveStatistics:
        """Exact survivor-based corpus statistics (rebuilt per generation)."""
        with self._manager.lock:
            if self._statistics is None or self._stats_seq != self._manager.seq:
                self._statistics = LiveStatistics(
                    self.collection, self._physical_posting_lists
                )
                self._stats_seq = self._manager.seq
            return self._statistics

    def _physical_posting_lists(self) -> Iterator:
        return self.posting_lists()

    def memory_footprint(self) -> dict[str, int]:
        """Columnar byte sizes summed over every segment plus the memtable."""
        totals = {
            "node_ids_bytes": 0,
            "entry_bounds_bytes": 0,
            "offsets_bytes": 0,
            "structure_bytes": 0,
        }
        snapshot = self.snapshot()
        views = [segment.data for segment in snapshot.segments]
        if snapshot.memview is not None:
            views.append(snapshot.memview)
        for view in views:
            for key, value in view.memory_breakdown().items():
                totals[key] += value
        totals["total_bytes"] = sum(totals.values())
        return totals

    def segment_stats(self) -> list[dict[str, int]]:
        """Per-segment size rows (sealed first, memtable last)."""
        return self._manager.segment_stats()

    def wal_stats(self) -> dict[str, int]:
        """WAL counters (zeros when running without a directory)."""
        if self._wal is None:
            return {"appended": 0, "synced_batches": 0}
        return {
            "appended": self._wal.appended,
            "synced_batches": self._wal.synced_batches,
        }

    # ----------------------------------------------------- integrity checks
    def validate(self) -> None:
        """Check segment and location invariants; raise on violation."""
        from repro.exceptions import IndexError_

        with self._manager.lock:
            snapshot = self.snapshot()
            seen: dict[int, int] = {}
            for segment in snapshot.segments:
                dead = segment.tombstones.dead_ids(snapshot.seq)
                for posting_list in segment.data.lists.values():
                    posting_list.validate()
                segment.data.any_list.validate()
                for node_id in segment.data.node_ids():
                    if node_id in dead:
                        continue
                    if node_id in seen:
                        raise IndexError_(
                            f"node {node_id} is live in two segments "
                            f"({seen[node_id]} and {segment.generation})"
                        )
                    seen[node_id] = segment.generation
            if snapshot.memview is not None:
                for node_id in snapshot.memview.node_ids():
                    if node_id in seen:
                        raise IndexError_(
                            f"node {node_id} is live in segment {seen[node_id]} "
                            f"and the memtable"
                        )
                    seen[node_id] = -1
            if set(seen) != set(self.collection.node_ids()):
                raise IndexError_(
                    "live segments do not cover exactly the collection"
                )

    # ---------------------------------------------------------- persistence
    def _log(self, record: dict[str, Any]) -> None:
        if self._wal is not None:
            record["seq"] = self._manager.seq + 1
            self._wal.append(record)

    def _segment_path(self, generation: int) -> Path:
        suffix = ".seg" if self._segment_format == "packed" else ".json.gz"
        return self.directory / SEGMENT_DIR / f"seg-{generation:08d}{suffix}"

    def _handle_seal(self, segment: SealedSegment) -> None:
        # Called by the manager with its lock held and the memtable empty,
        # so every committed mutation is covered by segments + tombstones.
        self._durable_seq = self._manager.seq
        if self.directory is None or self._replaying:
            return
        self._persist_segment(segment)
        self._write_manifest()
        if self._wal is not None:
            self._wal.reset()

    def _handle_compact(
        self, merged: SealedSegment, sources: list[SealedSegment]
    ) -> None:
        if self.directory is None or self._replaying:
            return
        self._persist_segment(merged)
        self._write_manifest()
        # Only now are the source files unreferenced; drop them best-effort.
        for source in sources:
            self._persisted_generations.discard(source.generation)
            path = self._segment_files.pop(
                source.generation, self._segment_path(source.generation)
            )
            try:
                path.unlink()
            except OSError:
                pass

    def _persist_segment(self, segment: SealedSegment) -> None:
        path = self._segment_path(segment.generation)
        if self._segment_format == "packed":
            write_packed_segment(
                path,
                segment.data.docs,
                segment.data.lists,
                segment.data.any_list,
                generation=segment.generation,
                name=self.collection.name,
            )
        else:
            save_segment(
                list(segment.data.documents()),
                path,
                generation=segment.generation,
                compresslevel=DEFAULT_COMPRESSLEVEL,
            )
        # The WAL is truncated once a seal checkpoint completes, making this
        # file the *only* durable copy of its documents -- so it (and its
        # directory entry) must reach stable storage before that happens.
        _fsync_path(path)
        _fsync_path(path.parent)
        self._persisted_generations.add(segment.generation)
        self._segment_files[segment.generation] = path

    def _write_manifest(self) -> None:
        import json

        version = (
            PACKED_SEGMENT_VERSION
            if self._segment_format == "packed"
            else SEGMENT_FORMAT_VERSION
        )
        manifest = {
            "format": "repro-manifest",
            "version": version,
            "applied_seq": self._durable_seq,
            "next_node_id": self._manager.next_node_id(),
            "segments": [
                {
                    "file": self._segment_files.get(
                        segment.generation,
                        self._segment_path(segment.generation),
                    ).name,
                    "generation": segment.generation,
                    "tombstones": sorted(segment.tombstones.dead_ids()),
                }
                for segment in self._manager.segments
            ],
        }
        path = self.directory / MANIFEST_NAME
        tmp = path.with_suffix(".tmp")
        try:
            payload = json.dumps(manifest, indent=0).encode("utf-8")
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_path(path.parent)  # make the rename itself durable
        except OSError as exc:
            raise StorageError(f"cannot write manifest {path}: {exc}") from exc

    @staticmethod
    def _read_manifest(path: Path) -> dict[str, Any]:
        import json

        try:
            manifest = json.loads(path.read_bytes())
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot read manifest {path}: {exc}") from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != "repro-manifest"
        ):
            raise StorageError(f"{path} is not a live-index manifest")
        if manifest.get("version") not in (
            SEGMENT_FORMAT_VERSION,
            PACKED_SEGMENT_VERSION,
        ):
            raise StorageError(
                f"{path}: unsupported manifest version {manifest.get('version')}"
            )
        manifest.setdefault("applied_seq", 0)
        manifest.setdefault("next_node_id", 0)
        manifest.setdefault("segments", [])
        return manifest

    def _restore(self, manifest: dict[str, Any]) -> None:
        """Rebuild the in-memory segment state from a manifest's files.

        Packed (v4) files restore zero-copy: their posting columns stay on
        the mmap'd file and only the header is read here.  JSON (v3) files
        are materialised and their posting lists rebuilt, as before.
        """
        segments: list[SealedSegment] = []
        for record in manifest["segments"]:
            path = self.directory / SEGMENT_DIR / record["file"]
            if is_packed_segment(path):
                reader = open_packed_segment(path)
                self._packed_readers.append(reader)
                generation = reader.generation
                data: SegmentData = PackedSegmentData(reader)
            else:
                nodes, generation = load_segment(path)
                data = SegmentData.from_nodes(nodes)
            if generation != record["generation"]:
                raise StorageError(
                    f"segment file {record['file']} claims generation "
                    f"{generation}, manifest says {record['generation']}"
                )
            tombstones = TombstoneSet()
            for node_id in record.get("tombstones", []):
                # Persisted tombstones are all "from the past": stamp them at
                # sequence 0 so every post-restart snapshot sees them applied.
                tombstones.mark(int(node_id), 0)
            segments.append(SealedSegment(generation, data, tombstones))
            self._persisted_generations.add(generation)
            self._segment_files[generation] = path
        self._manager.restore(segments, int(manifest["next_node_id"]) - 1)
        self._durable_seq = int(manifest["applied_seq"])
        # Resume the op clock where the checkpoint left it so replayed WAL
        # records (seq > applied_seq) slot in after it.
        with self._manager.lock:
            self._manager._seq = self._durable_seq

    def _replay_wal(self, applied_seq: int) -> None:
        """Re-apply every durable WAL record newer than the checkpoint."""
        self._replaying = True
        try:
            last_seq = applied_seq
            for record in WriteAheadLog.replay_after(
                self.directory / WAL_NAME, applied_seq
            ):
                self._apply_replay(record)
                last_seq = max(last_seq, int(record.get("seq", 0)))
            with self._manager.lock:
                if self._manager.seq < last_seq:
                    self._manager._seq = last_seq
        finally:
            self._replaying = False

    def _apply_replay(self, record: dict[str, Any]) -> None:
        op = record.get("op")
        manager = self._manager
        if op == "add":
            node = _node_from_dict(record["node"])
            if not manager.is_live(node.node_id):
                manager.add(node)
        elif op == "update":
            node = _node_from_dict(record["node"])
            if manager.is_live(node.node_id):
                manager.update(node)
            else:
                # The pre-update revision was already tombstoned by the
                # checkpoint; re-applying reduces to an insert.
                manager.add(node)
        elif op == "delete":
            manager.delete(int(record["id"]))
        else:
            raise StorageError(f"unknown WAL operation {op!r}")

    def _sync_disk_state(self) -> None:
        """Bring files in line with memory after open (or first build).

        Persists any segment sealed while loading, rewrites the manifest,
        and truncates the WAL only when the memtable is empty (otherwise its
        records are still the only durable copy of the memtable).
        """
        if self.directory is None:
            return
        with self._manager.lock:
            for segment in self._manager.segments:
                if segment.generation not in self._persisted_generations:
                    self._persist_segment(segment)
            self._write_manifest()
            if (
                self._wal is not None
                and self._durable_seq == self._manager.seq
                and not self._manager.memtable
            ):
                self._wal.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LiveIndex(live={self.node_count()}, "
            f"segments={len(self._manager.segments)}, "
            f"memtable={self._manager.memtable.doc_count}, "
            f"seq={self._manager.seq})"
        )
