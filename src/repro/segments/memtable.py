"""The memtable: the small mutable head of a live index.

All writes land here first.  Documents are kept as plain
:class:`~repro.corpus.document.ContextNode` objects in a dict, so add,
update and delete are O(1) dictionary operations; the columnar posting view
that queries need is built lazily by :meth:`MemTable.frozen_view` and cached
until the next mutation.

That laziness is what gives the live index snapshot isolation for free: a
query snapshot captures the current frozen view *object*, which is immutable
(:class:`~repro.segments.sealed.SegmentData`); later mutations replace the
cached view rather than touching it, so in-flight queries keep reading the
state they started with.

The memtable is deliberately small (the segment manager seals it into an
immutable :class:`~repro.segments.sealed.SealedSegment` at
``flush_threshold`` documents), so the rebuild cost after a mutation is
bounded and amortised across the queries between mutations.
"""

from __future__ import annotations

from typing import Iterator

from repro.corpus.document import ContextNode
from repro.exceptions import IndexError_
from repro.segments.sealed import SegmentData


class MemTable:
    """A mutable in-memory index accepting adds, updates and deletes."""

    __slots__ = ("_docs", "_positions", "_view")

    def __init__(self) -> None:
        self._docs: dict[int, ContextNode] = {}
        self._positions = 0
        self._view: SegmentData | None = None

    # --------------------------------------------------------------- writes
    def add(self, node: ContextNode) -> None:
        """Insert a new document; its id must not already be present."""
        if node.node_id in self._docs:
            raise IndexError_(
                f"memtable already holds node {node.node_id}; use update()"
            )
        self._docs[node.node_id] = node
        self._positions += len(node)
        self._view = None

    def update(self, node: ContextNode) -> ContextNode:
        """Replace the revision of an existing document; return the old one."""
        old = self._docs.get(node.node_id)
        if old is None:
            raise IndexError_(f"memtable does not hold node {node.node_id}")
        self._docs[node.node_id] = node
        self._positions += len(node) - len(old)
        self._view = None
        return old

    def delete(self, node_id: int) -> ContextNode:
        """Remove a document; return the removed revision."""
        old = self._docs.pop(node_id, None)
        if old is None:
            raise IndexError_(f"memtable does not hold node {node_id}")
        self._positions -= len(old)
        self._view = None
        return old

    def clear(self) -> None:
        """Empty the memtable (after its content was sealed elsewhere)."""
        self._docs = {}
        self._positions = 0
        self._view = None

    # --------------------------------------------------------------- reads
    def __len__(self) -> int:
        return len(self._docs)

    def __bool__(self) -> bool:
        return bool(self._docs)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._docs

    def get(self, node_id: int) -> ContextNode | None:
        return self._docs.get(node_id)

    def documents(self) -> Iterator[ContextNode]:
        """Documents in ascending id order (snapshot of the current state)."""
        for node_id in sorted(self._docs):
            yield self._docs[node_id]

    @property
    def doc_count(self) -> int:
        return len(self._docs)

    @property
    def position_count(self) -> int:
        """Total token positions held (the flush threshold's size measure)."""
        return self._positions

    def frozen_view(self) -> SegmentData | None:
        """The current content as an immutable columnar view (cached).

        Returns ``None`` for an empty memtable.  The returned object is
        never mutated afterwards -- a later write builds a *new* view -- so
        query snapshots may hold it for their whole execution.
        """
        if not self._docs:
            return None
        if self._view is None:
            self._view = SegmentData(self._docs)
        return self._view

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MemTable(docs={len(self._docs)}, positions={self._positions})"
