"""The segment manager: a log-structured live index core.

State is the classic LSM shape: one mutable :class:`~repro.segments.memtable.MemTable`
in front of a list of immutable :class:`~repro.segments.sealed.SealedSegment`
objects, plus a *location map* ``node_id -> segment generation`` (or the
memtable) for O(1) routing of updates and deletes.

* **Writes** land in the memtable; when it reaches ``flush_threshold``
  documents it is sealed into a new immutable segment.
* **Deletes / updates** of memtable-resident nodes are physical (the
  memtable is a dict); for sealed nodes they append a tombstone stamped
  with the operation sequence number, and an update additionally inserts
  the new revision into the memtable.
* **Reads** go through :meth:`SegmentManager.snapshot`: a snapshot pins the
  segment list, the memtable's frozen columnar view and the sequence number,
  so one query sees one consistent state for its whole execution no matter
  what writers do meanwhile.
* **Compaction** merges small segments tier-by-tier (sizes are grouped by
  powers of ``compaction_fanout``), physically purging tombstoned postings.
  The expensive columnar rebuild runs outside the write lock; tombstones
  that arrive during the rebuild are carried into the merged segment at
  swap time, so concurrent writers never lose a delete.

The manager is thread-safe: all mutations and snapshot acquisition are
serialised by one re-entrant lock; everything a snapshot hands out is
immutable (or append-only with seqno-gated visibility).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import IndexError_
from repro.index.cursor import (
    CursorFactory,
    InvertedListCursor,
    MultiSegmentCursor,
    PAPER_MODE,
    check_access_mode,
)
from repro.index.inverted_index import ANY_TOKEN
from repro.index.postings import EmptyPostingList, PostingList
from repro.segments.memtable import MemTable
from repro.segments.sealed import SealedSegment, SegmentData
from repro.telemetry import instruments

#: Location-map marker for "currently in the memtable".
MEMTABLE_LOCATION = -1

#: Documents the memtable may hold before it is sealed automatically.
DEFAULT_FLUSH_THRESHOLD = 256

#: Segments per size tier that trigger a tiered merge.
DEFAULT_COMPACTION_FANOUT = 4

#: Shared immutable empty list handed to cursors over absent tokens.
_EMPTY_LIST = EmptyPostingList("")


class _ListSizeView:
    """The tiny slice of the PostingList API cost estimators look at.

    A live snapshot has no single physical list per token -- the logical
    list is spread over segments -- so size questions (``len``, ``df``,
    ``total_positions``) are answered by summing the per-segment lists.
    Counts include tombstoned entries: they are upper bounds used only for
    engine-order heuristics, never for results.
    """

    __slots__ = ("token", "_entries", "_positions")

    def __init__(self, token: str, entries: int, positions: int) -> None:
        self.token = token
        self._entries = entries
        self._positions = positions

    def __len__(self) -> int:
        return self._entries

    def document_frequency(self) -> int:
        return self._entries

    def total_positions(self) -> int:
        return self._positions


class SegmentSnapshot:
    """A consistent, immutable view of a live index for one query.

    Exposes the read surface of :class:`~repro.index.inverted_index.InvertedIndex`
    that the evaluation engines touch (cursors, size views, node ids, the
    collection), backed by the pinned segment list.  Tombstones are applied
    with the snapshot's sequence number, so deletes committed after the
    snapshot stay invisible.

    :attr:`collection` is likewise pinned: it is materialised lazily from
    the snapshot's own segment data (only the COMP engine's full scans and
    content lookups pay for it), so a node the snapshot still matches can be
    read even after a concurrent writer deleted it from the live store --
    snapshot isolation covers content, not just matching.
    """

    __slots__ = (
        "segments",
        "memview",
        "seq",
        "live_count",
        "_name",
        "_collection",
        "_node_ids",
    )

    def __init__(
        self,
        segments: tuple[SealedSegment, ...],
        memview: SegmentData | None,
        seq: int,
        collection: Collection,
        live_count: int,
    ) -> None:
        self.segments = segments
        self.memview = memview
        self.seq = seq
        self.live_count = live_count
        self._name = collection.name
        self._collection: Collection | None = None
        self._node_ids: list[int] | None = None

    @property
    def collection(self) -> Collection:
        """The pinned document store (built once, on first content access)."""
        if self._collection is None:
            self._collection = Collection(
                {node.node_id: node for node in self.documents()}, self._name
            )
        return self._collection

    # ------------------------------------------------------------- cursors
    def _token_parts(self, token: str) -> list[tuple[PostingList, object]]:
        parts: list[tuple[PostingList, object]] = []
        for segment in self.segments:
            posting_list = (
                segment.data.any_list
                if token == ANY_TOKEN
                else segment.data.lists.get(token)
            )
            if posting_list is None or not len(posting_list):
                continue
            parts.append((posting_list, segment.tombstones.filter_at(self.seq)))
        if self.memview is not None:
            posting_list = (
                self.memview.any_list
                if token == ANY_TOKEN
                else self.memview.lists.get(token)
            )
            if posting_list is not None and len(posting_list):
                parts.append((posting_list, None))
        return parts

    def open_cursor(
        self,
        token: str,
        factory: CursorFactory | None = None,
        mode: str = PAPER_MODE,
    ):
        """Open a cursor over the logical (merged, tombstone-filtered) list.

        Single-segment tokens with no tombstones get a plain
        :class:`InvertedListCursor` -- the zero-overhead path a compacted
        index runs on; everything else gets a
        :class:`~repro.index.cursor.MultiSegmentCursor`.
        """
        mode = factory.mode if factory is not None else check_access_mode(mode)
        parts = self._token_parts(token)
        if not parts:
            if factory is not None:
                return factory.open(_EMPTY_LIST, token=token)
            return InvertedListCursor(_EMPTY_LIST, mode=mode, token=token)
        if len(parts) == 1 and parts[0][1] is None:
            posting_list = parts[0][0]
            if factory is not None:
                return factory.open(posting_list, token=token)
            return InvertedListCursor(posting_list, mode=mode, token=token)
        cursor = MultiSegmentCursor(
            [
                (InvertedListCursor(posting_list, mode=mode, token=token), dead)
                for posting_list, dead in parts
            ],
            mode=mode,
            token=token,
        )
        if factory is not None:
            factory.adopt(cursor)
        return cursor

    def open_any_cursor(self, factory: CursorFactory | None = None, mode: str = PAPER_MODE):
        return self.open_cursor(ANY_TOKEN, factory, mode)

    # ---------------------------------------------------- index-facade reads
    def posting_list(self, token: str) -> _ListSizeView:
        """A size view of the logical list (for cost estimation only)."""
        parts = self._token_parts(token)
        return _ListSizeView(
            token,
            sum(len(posting_list) for posting_list, _ in parts),
            sum(posting_list.total_positions() for posting_list, _ in parts),
        )

    def any_list(self) -> _ListSizeView:
        return self.posting_list(ANY_TOKEN)

    def node_ids(self) -> list[int]:
        """All visible node ids, ascending (computed once per snapshot)."""
        if self._node_ids is None:
            visible: set[int] = set()
            for segment in self.segments:
                dead = segment.tombstones.dead_ids(self.seq)
                if dead:
                    visible.update(
                        node_id
                        for node_id in segment.data.node_ids()
                        if node_id not in dead
                    )
                else:
                    visible.update(segment.data.node_ids())
            if self.memview is not None:
                visible.update(self.memview.node_ids())
            self._node_ids = sorted(visible)
        return list(self._node_ids)

    def node_count(self) -> int:
        return self.live_count

    def documents(self) -> Iterator[ContextNode]:
        """The visible documents in ascending id order (pinned revisions)."""
        by_id: dict[int, ContextNode] = {}
        for segment in self.segments:
            dead = segment.tombstones.dead_ids(self.seq)
            for node_id in segment.data.node_ids():
                if node_id not in dead:
                    by_id[node_id] = segment.data.docs[node_id]
        if self.memview is not None:
            by_id.update(self.memview.docs)
        for node_id in sorted(by_id):
            yield by_id[node_id]

    def segment_count(self) -> int:
        """Pinned sealed segments plus the memtable view (if non-empty)."""
        return len(self.segments) + (1 if self.memview is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SegmentSnapshot(segments={len(self.segments)}, "
            f"memtable={'yes' if self.memview is not None else 'no'}, "
            f"seq={self.seq}, live={self.live_count})"
        )


class SegmentManager:
    """Memtable + sealed segments + tombstones behind one write interface."""

    def __init__(
        self,
        collection: Collection | None = None,
        *,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        compaction_fanout: int = DEFAULT_COMPACTION_FANOUT,
        on_seal: Callable[[SealedSegment], None] | None = None,
        on_compact: Callable[[SealedSegment, list[SealedSegment]], None] | None = None,
    ) -> None:
        if flush_threshold < 1:
            raise IndexError_(f"flush_threshold must be >= 1, got {flush_threshold}")
        if compaction_fanout < 2:
            raise IndexError_(
                f"compaction_fanout must be >= 2, got {compaction_fanout}"
            )
        self.lock = threading.RLock()
        self.flush_threshold = flush_threshold
        self.compaction_fanout = compaction_fanout
        self.collection = collection if collection is not None else Collection({}, "live")
        self._memtable = MemTable()
        self._segments: list[SealedSegment] = []
        self._by_generation: dict[int, SealedSegment] = {}
        self._locations: dict[int, int] = {}
        self._seq = 0
        self._next_generation = 0
        self._max_assigned_id = -1
        self._on_seal = on_seal
        self._on_compact = on_compact
        self.flush_count = 0
        self.compaction_count = 0
        self._compacting = False
        self._auto_thread: threading.Thread | None = None
        self._auto_stop: threading.Event | None = None
        # What this manager last reported into the shared gauges; deltas
        # against these keep multi-instance (per-shard) sums exact.
        self._memtable_reported = 0
        self._tiers_reported: dict[int, int] = {}
        self._backlog_reported = 0
        if collection is not None and len(collection):
            self._bootstrap(collection)

    # --------------------------------------------------------------- gauges
    def _report_memtable(self) -> None:
        """Move this manager's repro_memtable_docs share to the current count."""
        current = self._memtable.doc_count
        delta = current - self._memtable_reported
        if delta and instruments.REGISTRY.enabled:
            instruments.MEMTABLE_DOCS.inc(delta)
        self._memtable_reported = current

    def _report_tiers(self) -> None:
        """Recompute segments-per-tier and compaction backlog; apply deltas."""
        tiers: dict[int, int] = {}
        for segment in self._segments:
            tier = self._tier_of(segment.live_count())
            tiers[tier] = tiers.get(tier, 0) + 1
        if instruments.REGISTRY.enabled:
            for tier in self._tiers_reported.keys() | tiers.keys():
                delta = tiers.get(tier, 0) - self._tiers_reported.get(tier, 0)
                if delta:
                    instruments.SEGMENTS.labels(str(tier)).inc(delta)
        self._tiers_reported = tiers
        backlog = sum(
            1 for count in tiers.values() if count >= self.compaction_fanout
        )
        delta = backlog - self._backlog_reported
        if delta and instruments.REGISTRY.enabled:
            instruments.COMPACTION_BACKLOG.inc(delta)
        self._backlog_reported = backlog

    # ------------------------------------------------------------ bootstrap
    def _bootstrap(self, collection: Collection) -> None:
        """Seal an initial collection straight into generation-0 segments.

        Bulk loads skip the memtable entirely: the documents are already
        known, so they go directly into one immutable segment per
        ``flush_threshold``-sized... no -- one segment total; the shape a
        freshly-built static index has, which keeps cursor overhead at the
        single-index baseline until live writes arrive.
        """
        nodes = list(collection)
        if not nodes:
            return
        self._next_generation += 1
        segment = SealedSegment.from_nodes(self._next_generation, nodes)
        self._segments.append(segment)
        self._by_generation[segment.generation] = segment
        for node in nodes:
            self._locations[node.node_id] = segment.generation
            if node.node_id > self._max_assigned_id:
                self._max_assigned_id = node.node_id
        self.flush_count += 1
        self._report_tiers()

    def restore(self, segments: list[SealedSegment], max_assigned_id: int) -> None:
        """Adopt segments loaded from disk into an empty manager.

        Used by :class:`~repro.segments.live_index.LiveIndex` when opening a
        persisted index: the segments arrive with their tombstones already
        applied-at-zero, so the location map and collection are rebuilt from
        the still-live entries only.
        """
        with self.lock:
            if self._segments or self._memtable or self._locations:
                raise IndexError_("restore() requires an empty segment manager")
            highest = max_assigned_id
            for segment in segments:
                self._segments.append(segment)
                self._by_generation[segment.generation] = segment
                if segment.generation > self._next_generation:
                    self._next_generation = segment.generation
                dead = segment.tombstones.dead_ids()
                for node_id in segment.data.node_ids():
                    if node_id > highest:
                        highest = node_id
                    if node_id in dead:
                        continue
                    if node_id in self._locations:
                        raise IndexError_(
                            f"node {node_id} is live in two restored segments"
                        )
                    self._locations[node_id] = segment.generation
                    self.collection.add(segment.data.docs[node_id])
            self._max_assigned_id = highest
            self._report_tiers()

    # ------------------------------------------------------------ sequencing
    @property
    def seq(self) -> int:
        """The operation sequence number of the last committed mutation.

        Doubles as the *cache generation*: it changes exactly when query
        results may change (adds / updates / deletes), and stays put across
        flushes and compactions -- which only reorganise storage -- so
        result caches keyed on it survive maintenance.
        """
        return self._seq

    def next_node_id(self) -> int:
        """The next never-used node id (monotonic across deletes)."""
        with self.lock:
            return self._max_assigned_id + 1

    def is_live(self, node_id: int) -> bool:
        with self.lock:
            return node_id in self._locations

    def live_count(self) -> int:
        with self.lock:
            return len(self._locations)

    # --------------------------------------------------------------- writes
    def ensure_can_add(self, node: ContextNode) -> None:
        """Raise unless ``node`` can be added (its id is not currently live)."""
        if node.node_id in self._locations:
            raise IndexError_(
                f"node {node.node_id} is already indexed; use update()"
            )

    def add(self, node: ContextNode) -> None:
        """Index a new document (any never-live id; O(1) plus a later seal)."""
        with self.lock:
            self.ensure_can_add(node)
            self._seq += 1
            self._memtable.add(node)
            self._locations[node.node_id] = MEMTABLE_LOCATION
            self.collection.add(node)
            if node.node_id > self._max_assigned_id:
                self._max_assigned_id = node.node_id
            self._report_memtable()
            self._maybe_flush()

    def update(self, node: ContextNode) -> None:
        """Replace the content of a live document (same node id)."""
        with self.lock:
            location = self._locations.get(node.node_id)
            if location is None:
                raise IndexError_(
                    f"cannot update node {node.node_id}: it is not indexed"
                )
            self._seq += 1
            if location == MEMTABLE_LOCATION:
                self._memtable.update(node)
            else:
                self._by_generation[location].tombstones.mark(
                    node.node_id, self._seq
                )
                self._memtable.add(node)
                self._locations[node.node_id] = MEMTABLE_LOCATION
            self.collection.replace(node)
            self._report_memtable()
            self._maybe_flush()

    def delete(self, node_id: int) -> bool:
        """Remove a document; returns False when the id is not live."""
        with self.lock:
            location = self._locations.get(node_id)
            if location is None:
                return False
            self._seq += 1
            if location == MEMTABLE_LOCATION:
                self._memtable.delete(node_id)
            else:
                self._by_generation[location].tombstones.mark(node_id, self._seq)
            del self._locations[node_id]
            self.collection.remove(node_id)
            self._report_memtable()
            return True

    # --------------------------------------------------------------- sealing
    def _maybe_flush(self) -> None:
        if self._memtable.doc_count >= self.flush_threshold:
            self.flush()

    def flush(self) -> SealedSegment | None:
        """Seal the memtable into a new immutable segment (None if empty)."""
        with self.lock:
            view = self._memtable.frozen_view()
            if view is None:
                return None
            self._next_generation += 1
            segment = SealedSegment(self._next_generation, view)
            self._segments.append(segment)
            self._by_generation[segment.generation] = segment
            for node_id in view.node_ids():
                self._locations[node_id] = segment.generation
            self._memtable.clear()
            self.flush_count += 1
            self._report_memtable()
            self._report_tiers()
            if instruments.REGISTRY.enabled:
                instruments.MEMTABLE_SEALS_TOTAL.inc()
            if self._on_seal is not None:
                self._on_seal(segment)
            return segment

    # ------------------------------------------------------------ compaction
    def _tier_of(self, live: int) -> int:
        tier = 0
        size = max(live, 1)
        while size >= self.compaction_fanout:
            size //= self.compaction_fanout
            tier += 1
        return tier

    def _pick_tier(self) -> list[SealedSegment] | None:
        """The segments of the fullest over-populated size tier (or None)."""
        tiers: dict[int, list[SealedSegment]] = {}
        for segment in self._segments:
            tiers.setdefault(self._tier_of(segment.live_count()), []).append(segment)
        candidates = [
            group for group in tiers.values() if len(group) >= self.compaction_fanout
        ]
        if not candidates:
            return None
        group = max(candidates, key=len)
        # Merge the whole tier at once; the result lands in a higher tier.
        return group

    def maybe_compact(self) -> dict[str, int]:
        """Run tiered compaction until no size tier is over-populated.

        At most one compaction (of any kind) runs at a time; a second caller
        returns immediately with zero merges instead of queueing.
        """
        if not self._claim_compaction():
            return {"merges": 0, "segments_merged": 0}
        merged_segments = 0
        merges = 0
        try:
            while True:
                with self.lock:
                    group = self._pick_tier()
                if group is None:
                    break
                self._merge(group)
                merges += 1
                merged_segments += len(group)
        finally:
            self._release_compaction()
        return {"merges": merges, "segments_merged": merged_segments}

    def compact(self) -> dict[str, int]:
        """Merge *all* sealed segments into one, purging every tombstone."""
        if not self._claim_compaction():
            return {"merges": 0, "segments_merged": 0}
        try:
            with self.lock:
                needs_merge = len(self._segments) > 1 or any(
                    len(segment.tombstones.dead_ids(self._seq))
                    for segment in self._segments
                )
                group = list(self._segments) if needs_merge else None
            if group is None:
                return {"merges": 0, "segments_merged": 0}
            self._merge(group)
            return {"merges": 1, "segments_merged": len(group)}
        finally:
            self._release_compaction()

    def _claim_compaction(self) -> bool:
        with self.lock:
            if self._compacting:
                return False
            self._compacting = True
            return True

    def _release_compaction(self) -> None:
        with self.lock:
            self._compacting = False

    def _merge(self, sources: list[SealedSegment]) -> SealedSegment:
        """Merge ``sources`` into one segment; runs the rebuild unlocked.

        Callers must hold the compaction claim (see :meth:`maybe_compact`),
        which guarantees the sources stay in ``self._segments`` -- only
        compaction ever removes segments.
        """
        merge_started = time.perf_counter()
        with self.lock:
            capture_seq = self._seq
            survivors: dict[int, ContextNode] = {}
            for segment in sources:
                for node in segment.survivors(capture_seq):
                    survivors[node.node_id] = node
        # The expensive part -- encoding the columnar arrays -- touches
        # only immutable inputs, so writers keep committing meanwhile.
        data = SegmentData(survivors)
        with self.lock:
            self._next_generation += 1
            merged = SealedSegment(self._next_generation, data)
            # Deletes/updates that landed while we were rebuilding: carry
            # their tombstones onto the merged segment (same seqnos, so
            # snapshot visibility is unchanged).
            for segment in sources:
                for node_id, seq in segment.tombstones.items():
                    if seq > capture_seq and node_id in data.docs:
                        merged.tombstones.mark(node_id, seq)
            source_generations = {segment.generation for segment in sources}
            position = min(
                index
                for index, segment in enumerate(self._segments)
                if segment.generation in source_generations
            )
            self._segments = [
                segment
                for segment in self._segments
                if segment.generation not in source_generations
            ]
            self._segments.insert(position, merged)
            for generation in source_generations:
                del self._by_generation[generation]
            self._by_generation[merged.generation] = merged
            for node_id in data.node_ids():
                if self._locations.get(node_id) in source_generations:
                    self._locations[node_id] = merged.generation
            self.compaction_count += 1
            self._report_tiers()
            if instruments.REGISTRY.enabled:
                instruments.COMPACTIONS_TOTAL.inc()
                instruments.COMPACTION_SECONDS.observe(
                    time.perf_counter() - merge_started
                )
                instruments.COMPACTION_SEGMENTS_MERGED_TOTAL.inc(len(sources))
            if self._on_compact is not None:
                self._on_compact(merged, sources)
            return merged

    # ------------------------------------------------- background compaction
    def start_auto_compaction(self, interval: float = 0.05) -> None:
        """Run :meth:`maybe_compact` periodically on a daemon thread."""
        with self.lock:
            if self._auto_thread is not None:
                return
            self._auto_stop = threading.Event()
            self._auto_thread = threading.Thread(
                target=self._auto_compaction_loop,
                args=(interval,),
                name="repro-compactor",
                daemon=True,
            )
            self._auto_thread.start()

    def _auto_compaction_loop(self, interval: float) -> None:
        stop = self._auto_stop
        while stop is not None and not stop.wait(interval):
            self.maybe_compact()

    def stop_auto_compaction(self) -> None:
        """Stop the background compactor (idempotent; joins the thread)."""
        with self.lock:
            thread, stop = self._auto_thread, self._auto_stop
            self._auto_thread = None
            self._auto_stop = None
        if stop is not None:
            stop.set()
        if thread is not None:
            thread.join(timeout=5.0)

    # --------------------------------------------------------------- reading
    def snapshot(self) -> SegmentSnapshot:
        """A consistent read view: pinned segments + frozen memtable + seqno."""
        with self.lock:
            return SegmentSnapshot(
                segments=tuple(self._segments),
                memview=self._memtable.frozen_view(),
                seq=self._seq,
                collection=self.collection,
                live_count=len(self._locations),
            )

    @property
    def segments(self) -> list[SealedSegment]:
        with self.lock:
            return list(self._segments)

    @property
    def memtable(self) -> MemTable:
        return self._memtable

    def segment_stats(self) -> list[dict[str, int]]:
        """Per-segment size figures, sealed segments first, memtable last."""
        with self.lock:
            rows = [segment.describe(self._seq) for segment in self._segments]
            if self._memtable:
                view = self._memtable.frozen_view()
                rows.append(
                    {
                        "generation": MEMTABLE_LOCATION,
                        "docs": self._memtable.doc_count,
                        "live_docs": self._memtable.doc_count,
                        "tombstones": 0,
                        "tokens": len(view.lists) if view is not None else 0,
                        "positions": self._memtable.position_count,
                        "memory_bytes": view.memory_bytes() if view is not None else 0,
                    }
                )
            return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SegmentManager(segments={len(self._segments)}, "
            f"memtable={self._memtable.doc_count}, live={len(self._locations)}, "
            f"seq={self._seq})"
        )
