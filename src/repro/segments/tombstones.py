"""Tombstones: logical deletes over immutable segments.

A sealed segment can never be rewritten, so deleting (or updating) a node
whose postings live in one is recorded *beside* the segment as a tombstone.
Readers filter tombstoned entries out at cursor-merge time; compaction later
rewrites the segment without them (purging the tombstones physically).

Every tombstone carries the monotonic **operation sequence number** at which
it was created.  A query snapshot remembers the sequence number current when
it was taken and considers a node dead only if its tombstone is at or below
that number -- which is what makes deletes invisible to queries already in
flight (snapshot isolation) without copying any per-query state.
"""

from __future__ import annotations

from typing import Callable, Iterator


class TombstoneSet:
    """Node ids deleted from one segment, each stamped with its op seqno.

    The set only ever grows (a tombstoned node stays tombstoned for the
    segment's whole lifetime; compaction replaces the segment instead of
    shrinking the set), which is what makes the lock-free snapshot filters
    handed to cursors safe under concurrent writers.
    """

    __slots__ = ("_dead",)

    def __init__(self) -> None:
        self._dead: dict[int, int] = {}

    def mark(self, node_id: int, seq: int) -> None:
        """Record ``node_id`` as deleted by operation ``seq``.

        Re-marking an already-dead node keeps the *earliest* sequence number:
        the node has been invisible since then, and moving the stamp forward
        could resurrect it for intermediate snapshots.
        """
        existing = self._dead.get(node_id)
        if existing is None or seq < existing:
            self._dead[node_id] = seq

    def seq_of(self, node_id: int) -> int | None:
        """The sequence number that tombstoned ``node_id`` (None if alive)."""
        return self._dead.get(node_id)

    def is_dead(self, node_id: int, as_of: int) -> bool:
        """Whether ``node_id`` is dead for a snapshot taken at seqno ``as_of``."""
        seq = self._dead.get(node_id)
        return seq is not None and seq <= as_of

    def filter_at(self, as_of: int) -> Callable[[int], bool] | None:
        """A cursor-level visibility predicate for a snapshot at ``as_of``.

        Returns ``None`` when the set is empty so the cursor layer can take
        its zero-overhead single-list fast path.
        """
        if not self._dead:
            return None
        dead = self._dead
        return lambda node_id: (seq := dead.get(node_id)) is not None and seq <= as_of

    def dead_ids(self, as_of: int | None = None) -> set[int]:
        """All dead node ids (restricted to a snapshot when ``as_of`` given)."""
        if as_of is None:
            return set(self._dead)
        return {node_id for node_id, seq in self._dead.items() if seq <= as_of}

    def items(self) -> Iterator[tuple[int, int]]:
        return iter(self._dead.items())

    def __len__(self) -> int:
        return len(self._dead)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._dead

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TombstoneSet(dead={len(self._dead)})"
