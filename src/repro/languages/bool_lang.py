"""The BOOL language (paper, Section 4.1) and its BOOL-NONEG restriction.

Grammar::

    Query := Token | NOT Query | Query AND Query | Query OR Query
    Token := StringLiteral | ANY

BOOL-NONEG (Section 5.3) removes ANY and only allows NOT as the right operand
of an AND (``Query AND NOT Query``), which is what lets its evaluation avoid
the ``IL_ANY`` list entirely.
"""

from __future__ import annotations

from repro.exceptions import QuerySemanticsError
from repro.languages import ast
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model import calculus as c


def parse_bool(text: str) -> ast.QueryNode:
    """Parse a BOOL query string."""
    return QueryParser(LanguageLevel.BOOL).parse(text)


def bool_to_calculus(text: str) -> c.CalculusQuery:
    """Parse a BOOL query and translate it to a calculus query."""
    return parse_bool(text).to_calculus_query()


def is_bool_query(node: ast.QueryNode) -> bool:
    """True iff the surface AST only uses BOOL constructs."""
    return all(
        isinstance(
            item,
            (ast.TokenQuery, ast.AnyQuery, ast.NotQuery, ast.AndQuery, ast.OrQuery),
        )
        for item in ast.walk(node)
    )


def is_bool_noneg_query(node: ast.QueryNode) -> bool:
    """True iff the AST fits the BOOL-NONEG grammar.

    BOOL-NONEG forbids ANY everywhere and restricts negation to conjuncts
    (``Query AND NOT Query``); in particular the query as a whole, and every
    OR branch, must have at least one positive conjunct.
    """
    if not is_bool_query(node):
        return False
    if any(isinstance(item, ast.AnyQuery) for item in ast.walk(node)):
        return False
    return _noneg_ok(node)


def _noneg_ok(node: ast.QueryNode) -> bool:
    if isinstance(node, ast.TokenQuery):
        return True
    if isinstance(node, ast.OrQuery):
        return _noneg_ok(node.left) and _noneg_ok(node.right)
    if isinstance(node, ast.AndQuery):
        conjuncts = _flatten_and(node)
        positives = [conj for conj in conjuncts if not isinstance(conj, ast.NotQuery)]
        negatives = [conj for conj in conjuncts if isinstance(conj, ast.NotQuery)]
        if not positives:
            return False
        return all(_noneg_ok(conj) for conj in positives) and all(
            _noneg_ok(conj.operand) for conj in negatives
        )
    if isinstance(node, ast.NotQuery):
        return False
    return False


def _flatten_and(node: ast.QueryNode) -> list[ast.QueryNode]:
    if isinstance(node, ast.AndQuery):
        return _flatten_and(node.left) + _flatten_and(node.right)
    return [node]


def require_bool_noneg(node: ast.QueryNode) -> None:
    """Raise :class:`QuerySemanticsError` unless ``node`` is BOOL-NONEG."""
    if not is_bool_noneg_query(node):
        raise QuerySemanticsError(
            "query is not in BOOL-NONEG: negation must appear only as "
            "'Query AND NOT Query' and ANY is not allowed"
        )
