"""Programmatic query builders.

Writing COMP by hand is verbose for common patterns (phrases, proximity,
ordered windows).  These helpers build the corresponding surface ASTs
directly, so applications can compose structured full-text conditions without
string formatting.  Everything returned is an ordinary
:class:`~repro.languages.ast.QueryNode` and can be combined further with
:func:`all_of` / :func:`any_of` / :func:`not_` or passed straight to
:meth:`repro.core.engine.FullTextEngine.search`.

Example -- the paper's Use Case 10.4 ("efficient" before the phrase
"task completion" with at most 10 intervening tokens)::

    from repro.languages.builders import ordered_near, phrase, term

    query = ordered_near(term("efficient"), phrase("task completion"), distance=10)
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.exceptions import QuerySemanticsError
from repro.languages import ast

_fresh_counter = itertools.count(1)


def _fresh_var(prefix: str = "b") -> str:
    return f"_{prefix}{next(_fresh_counter)}"


# --------------------------------------------------------------------------
# Atoms
# --------------------------------------------------------------------------
def term(token: str) -> ast.QueryNode:
    """The node contains ``token`` (a bare keyword)."""
    if not token or not token.strip():
        raise QuerySemanticsError("a term must be a non-empty token")
    return ast.TokenQuery(token.strip().lower())


def keywords(*tokens: str) -> ast.QueryNode:
    """Conjunctive keyword query: the node contains every token."""
    return all_of(*(term(token) for token in tokens))


# --------------------------------------------------------------------------
# Boolean combinators
# --------------------------------------------------------------------------
def all_of(*queries: ast.QueryNode) -> ast.QueryNode:
    """Conjunction of one or more queries."""
    if not queries:
        raise QuerySemanticsError("all_of() needs at least one query")
    result = queries[0]
    for query in queries[1:]:
        result = ast.AndQuery(result, query)
    return result


def any_of(*queries: ast.QueryNode) -> ast.QueryNode:
    """Disjunction of one or more queries."""
    if not queries:
        raise QuerySemanticsError("any_of() needs at least one query")
    result = queries[0]
    for query in queries[1:]:
        result = ast.OrQuery(result, query)
    return result


def not_(query: ast.QueryNode) -> ast.QueryNode:
    """Negation of a query."""
    return ast.NotQuery(query)


def excluding(positive: ast.QueryNode, negative: ast.QueryNode) -> ast.QueryNode:
    """``positive AND NOT negative`` -- the BOOL-NONEG-friendly negation shape."""
    return ast.AndQuery(positive, ast.NotQuery(negative))


# --------------------------------------------------------------------------
# Position-based patterns (built on COMP)
# --------------------------------------------------------------------------
def _tokenize_phrase(text: "str | Sequence[str]") -> list[str]:
    if isinstance(text, str):
        tokens = [token for token in text.lower().split() if token]
    else:
        tokens = [str(token).lower() for token in text]
    if not tokens:
        raise QuerySemanticsError("a phrase needs at least one token")
    return tokens


def phrase(text: "str | Sequence[str]") -> ast.QueryNode:
    """The tokens of ``text`` appear consecutively and in order.

    Adjacency is expressed exactly as in the paper: ``ordered(p_i, p_{i+1})``
    together with ``distance(p_i, p_{i+1}, 0)`` for each consecutive pair.
    """
    tokens = _tokenize_phrase(text)
    if len(tokens) == 1:
        return term(tokens[0])
    variables = [_fresh_var("ph") for _ in tokens]
    conjuncts: list[ast.QueryNode] = [
        ast.VarHasToken(var, token) for var, token in zip(variables, tokens)
    ]
    for left, right in zip(variables, variables[1:]):
        conjuncts.append(ast.PredQuery("ordered", (left, right)))
        conjuncts.append(ast.PredQuery("distance", (left, right), (0,)))
    return _close(all_of(*conjuncts), variables)


def near(
    first: "str | ast.QueryNode",
    second: "str | ast.QueryNode",
    distance: int,
    ordered: bool = False,
    same_paragraph: bool = False,
    same_sentence: bool = False,
) -> ast.QueryNode:
    """Two terms (or single-token queries) within ``distance`` intervening tokens.

    Optional flags add ``ordered`` / ``samepara`` / ``samesentence``
    constraints.  For multi-token operands use :func:`ordered_near`, which
    anchors on the operands' phrase structure.
    """
    first_token = _as_token(first)
    second_token = _as_token(second)
    var1, var2 = _fresh_var("nr"), _fresh_var("nr")
    conjuncts: list[ast.QueryNode] = [
        ast.VarHasToken(var1, first_token),
        ast.VarHasToken(var2, second_token),
        ast.PredQuery("distance", (var1, var2), (distance,)),
    ]
    if ordered:
        conjuncts.append(ast.PredQuery("ordered", (var1, var2)))
    if same_paragraph:
        conjuncts.append(ast.PredQuery("samepara", (var1, var2)))
    if same_sentence:
        conjuncts.append(ast.PredQuery("samesentence", (var1, var2)))
    return _close(all_of(*conjuncts), [var1, var2])


def ordered_near(
    first: "str | ast.QueryNode",
    second: "str | ast.QueryNode",
    distance: int,
) -> ast.QueryNode:
    """``first`` occurs before ``second`` with at most ``distance`` tokens between.

    Each operand may be a keyword or a :func:`phrase`; for phrases the order
    and distance constraints anchor on the phrase's first token, as in the
    paper's Example 1 ("the word 'efficient' and the phrase 'task completion'
    in that order with at most 10 intervening tokens").
    """
    first_node, first_anchor = _as_anchored(first)
    second_node, second_anchor = _as_anchored(second)
    constraints = all_of(
        ast.PredQuery("ordered", (first_anchor, second_anchor)),
        ast.PredQuery("distance", (first_anchor, second_anchor), (distance,)),
    )
    combined = all_of(first_node, second_node, constraints)
    return _close(combined, sorted(combined.free_variables()))


def not_near(first: str, second: str, distance: int) -> ast.QueryNode:
    """Both terms occur, with *more* than ``distance`` intervening tokens
    for at least one pair (the NPRED ``not_distance`` pattern)."""
    var1, var2 = _fresh_var("nn"), _fresh_var("nn")
    body = all_of(
        ast.VarHasToken(var1, _as_token(first)),
        ast.VarHasToken(var2, _as_token(second)),
        ast.PredQuery("not_distance", (var1, var2), (distance,)),
    )
    return _close(body, [var1, var2])


def within_same(scope: str, *tokens: str) -> ast.QueryNode:
    """All ``tokens`` occur within the same ``scope`` ('paragraph' or 'sentence')."""
    predicate = {"paragraph": "samepara", "sentence": "samesentence"}.get(scope)
    if predicate is None:
        raise QuerySemanticsError("scope must be 'paragraph' or 'sentence'")
    if len(tokens) < 2:
        raise QuerySemanticsError("within_same() needs at least two tokens")
    variables = [_fresh_var("sc") for _ in tokens]
    conjuncts: list[ast.QueryNode] = [
        ast.VarHasToken(var, _as_token(token))
        for var, token in zip(variables, tokens)
    ]
    for other in variables[1:]:
        conjuncts.append(ast.PredQuery(predicate, (variables[0], other)))
    return _close(all_of(*conjuncts), variables)


# --------------------------------------------------------------------------
# Internals
# --------------------------------------------------------------------------
def _close(body: ast.QueryNode, variables: Iterable[str]) -> ast.QueryNode:
    result = body
    for var in reversed(list(variables)):
        result = ast.SomeQuery(var, result)
    return result


def _as_token(operand: "str | ast.QueryNode") -> str:
    if isinstance(operand, ast.TokenQuery):
        return operand.token
    if isinstance(operand, str):
        return operand.strip().lower()
    raise QuerySemanticsError(
        "this builder expects a single keyword (string or term()); "
        "use ordered_near() for phrase operands"
    )


def _as_anchored(operand: "str | ast.QueryNode") -> tuple[ast.QueryNode, str]:
    """Return an *open* query fragment plus the variable anchoring its start."""
    if isinstance(operand, str) or isinstance(operand, ast.TokenQuery):
        var = _fresh_var("an")
        return ast.VarHasToken(var, _as_token(operand)), var
    if isinstance(operand, ast.SomeQuery):
        # Strip the SOME quantifiers produced by phrase()/near() so the
        # variables can be re-closed around the combined constraint; the
        # anchor is the first (outermost) quantified variable.
        anchor = operand.var
        node: ast.QueryNode = operand
        while isinstance(node, ast.SomeQuery):
            node = node.operand
        return node, anchor
    raise QuerySemanticsError(
        f"cannot anchor a {type(operand).__name__} operand; pass a keyword, "
        "term(), phrase() or near() result"
    )
