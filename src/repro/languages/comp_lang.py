"""The COMP language (paper, Section 4.3): a complete full-text language.

Grammar::

    Query := Token | NOT Query | Query AND Query | Query OR Query
           | SOME Var Query | EVERY Var Query | Preds
    Token := StringLiteral | ANY | Var HAS StringLiteral | Var HAS ANY
    Preds := distance(Var, Var, Integer) | ordered(Var, Var) | ...

COMP generalises BOOL with explicit position variables (bound by SOME/EVERY,
used by HAS and by predicates); Theorem 6 shows it expresses every calculus
query over the registered predicate set.  This module also provides the
constructive half of that theorem: :func:`calculus_to_comp` converts any
calculus query back into a COMP surface query.
"""

from __future__ import annotations

from repro.exceptions import TranslationError
from repro.languages import ast
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model import calculus as c
from repro.model.predicates import PredicateRegistry, default_registry


def parse_comp(
    text: str, registry: PredicateRegistry | None = None
) -> ast.QueryNode:
    """Parse a COMP query string (free position variables are rejected)."""
    return QueryParser(LanguageLevel.COMP, registry).parse_closed(text)


def parse_comp_open(
    text: str, registry: PredicateRegistry | None = None
) -> ast.QueryNode:
    """Parse a COMP query fragment that may contain free position variables."""
    return QueryParser(LanguageLevel.COMP, registry).parse(text)


def comp_to_calculus(
    text: str, registry: PredicateRegistry | None = None
) -> c.CalculusQuery:
    """Parse a COMP query and translate it into a calculus query."""
    return parse_comp(text, registry).to_calculus_query()


# --------------------------------------------------------------------------
# Theorem 6: FTC -> COMP
# --------------------------------------------------------------------------
def calculus_to_comp(query: c.CalculusQuery) -> ast.QueryNode:
    """Translate a calculus query into an equivalent COMP surface query.

    This is the constructive content of Theorem 6 (completeness of COMP):
    every calculus construct has a direct COMP counterpart.
    """
    return _expr_to_comp(query.expr)


def calculus_expr_to_comp(expr: c.CalculusExpr) -> ast.QueryNode:
    """Translate an open calculus expression into a COMP fragment."""
    return _expr_to_comp(expr)


def _expr_to_comp(expr: c.CalculusExpr) -> ast.QueryNode:
    if isinstance(expr, c.HasPos):
        return ast.VarHasAny(expr.var)
    if isinstance(expr, c.HasToken):
        return ast.VarHasToken(expr.var, expr.token)
    if isinstance(expr, c.PredicateApplication):
        return ast.PredQuery(expr.name, expr.variables, expr.constants)
    if isinstance(expr, c.Not):
        return ast.NotQuery(_expr_to_comp(expr.operand))
    if isinstance(expr, c.And):
        return ast.AndQuery(_expr_to_comp(expr.left), _expr_to_comp(expr.right))
    if isinstance(expr, c.Or):
        return ast.OrQuery(_expr_to_comp(expr.left), _expr_to_comp(expr.right))
    if isinstance(expr, c.Exists):
        return ast.SomeQuery(expr.var, _expr_to_comp(expr.operand))
    if isinstance(expr, c.Forall):
        return ast.EveryQuery(expr.var, _expr_to_comp(expr.operand))
    raise TranslationError(f"unknown calculus node {type(expr).__name__}")


def comp_round_trip(text: str, registry: PredicateRegistry | None = None) -> str:
    """Parse COMP text, go through the calculus and render back to COMP text.

    Useful in documentation and tests to demonstrate that COMP and the
    calculus are interchangeable representations.
    """
    registry = registry or default_registry()
    query = comp_to_calculus(text, registry)
    return calculus_to_comp(query).to_text()
