"""Surface abstract syntax shared by the BOOL, DIST and COMP languages.

The three surface languages of the paper form a syntactic hierarchy
(BOOL ⊂ DIST ⊂ COMP up to sugar), so they share one AST.  Each parser simply
restricts which node types it may produce.  Every node knows how to

* render itself back to query text (:meth:`QueryNode.to_text`),
* report its free position variables (:meth:`QueryNode.free_variables`),
* translate itself into the full-text calculus
  (:meth:`QueryNode.to_calculus`), following the semantics given in
  Sections 4.1--4.3 of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.exceptions import QuerySemanticsError
from repro.model import calculus as c


class _FreshVariables:
    """Generator of fresh position-variable names for implicit quantifiers."""

    def __init__(self, reserved: set[str]) -> None:
        self._reserved = set(reserved)
        self._counter = itertools.count(1)

    def fresh(self) -> str:
        while True:
            candidate = f"_q{next(self._counter)}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate


class QueryNode:
    """Base class of surface query nodes."""

    def to_text(self) -> str:
        """Render the node back to (canonical) query syntax."""
        raise NotImplementedError

    def children(self) -> Sequence["QueryNode"]:
        return ()

    def free_variables(self) -> set[str]:
        """Position variables used but not bound by SOME/EVERY in this node."""
        free: set[str] = set()
        for child in self.children():
            free |= child.free_variables()
        return free

    def bound_variables(self) -> set[str]:
        """Position variables bound anywhere inside this node."""
        bound: set[str] = set()
        for node in walk(self):
            if isinstance(node, (SomeQuery, EveryQuery)):
                bound.add(node.var)
        return bound

    def is_closed(self) -> bool:
        """True iff the node has no free position variables."""
        return not self.free_variables()

    # ------------------------------------------------------------- calculus
    def to_calculus(self) -> c.CalculusExpr:
        """Translate to a calculus expression (may have free variables)."""
        fresh = _FreshVariables(self.bound_variables() | self.free_variables())
        return self._to_calculus(fresh)

    def to_calculus_query(self) -> c.CalculusQuery:
        """Translate a closed query to a calculus query."""
        free = self.free_variables()
        if free:
            raise QuerySemanticsError(
                f"query has unbound position variables: {sorted(free)}"
            )
        return c.CalculusQuery(self.to_calculus())

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.to_text()!r}>"


# --------------------------------------------------------------------------
# Tokens
# --------------------------------------------------------------------------
@dataclass(frozen=True, repr=False)
class TokenQuery(QueryNode):
    """A bare string literal: the node must contain the token somewhere."""

    token: str

    def to_text(self) -> str:
        return f"'{self.token}'"

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        var = fresh.fresh()
        return c.Exists(var, c.HasToken(var, self.token))


@dataclass(frozen=True, repr=False)
class AnyQuery(QueryNode):
    """The universal token ``ANY``: the node must contain at least one token."""

    def to_text(self) -> str:
        return "ANY"

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        var = fresh.fresh()
        return c.Exists(var, c.HasPos(var))


@dataclass(frozen=True, repr=False)
class VarHasToken(QueryNode):
    """``var HAS 'token'``: position variable ``var`` holds the token."""

    var: str
    token: str

    def to_text(self) -> str:
        return f"{self.var} HAS '{self.token}'"

    def free_variables(self) -> set[str]:
        return {self.var}

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        return c.HasToken(self.var, self.token)


@dataclass(frozen=True, repr=False)
class VarHasAny(QueryNode):
    """``var HAS ANY``: ``var`` is bound to some position of the node."""

    var: str

    def to_text(self) -> str:
        return f"{self.var} HAS ANY"

    def free_variables(self) -> set[str]:
        return {self.var}

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        return c.HasPos(self.var)


# --------------------------------------------------------------------------
# Boolean structure
# --------------------------------------------------------------------------
@dataclass(frozen=True, repr=False)
class NotQuery(QueryNode):
    """``NOT Query``."""

    operand: QueryNode

    def to_text(self) -> str:
        return f"NOT ({self.operand.to_text()})"

    def children(self) -> Sequence[QueryNode]:
        return (self.operand,)

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        return c.Not(self.operand._to_calculus(fresh))


@dataclass(frozen=True, repr=False)
class AndQuery(QueryNode):
    """``Query AND Query``."""

    left: QueryNode
    right: QueryNode

    def to_text(self) -> str:
        return f"({self.left.to_text()} AND {self.right.to_text()})"

    def children(self) -> Sequence[QueryNode]:
        return (self.left, self.right)

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        return c.And(self.left._to_calculus(fresh), self.right._to_calculus(fresh))


@dataclass(frozen=True, repr=False)
class OrQuery(QueryNode):
    """``Query OR Query``."""

    left: QueryNode
    right: QueryNode

    def to_text(self) -> str:
        return f"({self.left.to_text()} OR {self.right.to_text()})"

    def children(self) -> Sequence[QueryNode]:
        return (self.left, self.right)

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        return c.Or(self.left._to_calculus(fresh), self.right._to_calculus(fresh))


# --------------------------------------------------------------------------
# Quantifiers and predicates (COMP)
# --------------------------------------------------------------------------
@dataclass(frozen=True, repr=False)
class SomeQuery(QueryNode):
    """``SOME var Query``: existential quantification over node positions."""

    var: str
    operand: QueryNode

    def to_text(self) -> str:
        return f"SOME {self.var} ({self.operand.to_text()})"

    def children(self) -> Sequence[QueryNode]:
        return (self.operand,)

    def free_variables(self) -> set[str]:
        return self.operand.free_variables() - {self.var}

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        return c.Exists(self.var, self.operand._to_calculus(fresh))


@dataclass(frozen=True, repr=False)
class EveryQuery(QueryNode):
    """``EVERY var Query``: universal quantification over node positions."""

    var: str
    operand: QueryNode

    def to_text(self) -> str:
        return f"EVERY {self.var} ({self.operand.to_text()})"

    def children(self) -> Sequence[QueryNode]:
        return (self.operand,)

    def free_variables(self) -> set[str]:
        return self.operand.free_variables() - {self.var}

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        return c.Forall(self.var, self.operand._to_calculus(fresh))


@dataclass(frozen=True, repr=False)
class PredQuery(QueryNode):
    """``pred(var1, .., varp, c1, .., cq)``: a position-based predicate."""

    name: str
    variables: tuple[str, ...]
    constants: tuple = ()

    def to_text(self) -> str:
        args = ", ".join(self.variables)
        consts = "".join(f", {const}" for const in self.constants)
        return f"{self.name}({args}{consts})"

    def free_variables(self) -> set[str]:
        return set(self.variables)

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        return c.PredicateApplication(self.name, self.variables, self.constants)


@dataclass(frozen=True, repr=False)
class DistQuery(QueryNode):
    """``dist(Token, Token, Integer)``: DIST's built-in distance construct.

    ``first`` / ``second`` are token strings or ``None`` for ANY (Section 4.2:
    if a token is ANY, the corresponding ``hasToken`` predicate is omitted).
    """

    first: str | None
    second: str | None
    limit: int

    def to_text(self) -> str:
        first = f"'{self.first}'" if self.first is not None else "ANY"
        second = f"'{self.second}'" if self.second is not None else "ANY"
        return f"dist({first}, {second}, {self.limit})"

    def _to_calculus(self, fresh: _FreshVariables) -> c.CalculusExpr:
        var1 = fresh.fresh()
        var2 = fresh.fresh()
        inner: c.CalculusExpr = c.PredicateApplication(
            "distance", (var1, var2), (self.limit,)
        )
        if self.second is not None:
            inner = c.And(c.HasToken(var2, self.second), inner)
        second_level: c.CalculusExpr = c.Exists(var2, inner)
        if self.first is not None:
            second_level = c.And(c.HasToken(var1, self.first), second_level)
        return c.Exists(var1, second_level)


# --------------------------------------------------------------------------
# Traversal helpers
# --------------------------------------------------------------------------
def walk(node: QueryNode) -> Iterator[QueryNode]:
    """Pre-order traversal of a surface query tree."""
    yield node
    for child in node.children():
        yield from walk(child)


def query_tokens(node: QueryNode) -> set[str]:
    """All string-literal tokens mentioned anywhere in the query."""
    tokens: set[str] = set()
    for item in walk(node):
        if isinstance(item, TokenQuery):
            tokens.add(item.token)
        elif isinstance(item, VarHasToken):
            tokens.add(item.token)
        elif isinstance(item, DistQuery):
            if item.first is not None:
                tokens.add(item.first)
            if item.second is not None:
                tokens.add(item.second)
    return tokens


def query_predicates(node: QueryNode) -> list[PredQuery]:
    """All predicate applications in the query (DistQuery not included)."""
    return [item for item in walk(node) if isinstance(item, PredQuery)]


def query_measures(node: QueryNode) -> dict[str, int]:
    """The paper's query parameters ``toks_Q``, ``preds_Q``, ``ops_Q``.

    ``toks_Q`` counts string literals and ANY occurrences; ``preds_Q`` counts
    predicate applications (a ``dist`` construct counts as one predicate plus
    its two tokens); ``ops_Q`` counts NOT/AND/OR/SOME/EVERY.
    """
    toks = preds = ops = 0
    for item in walk(node):
        if isinstance(item, (TokenQuery, AnyQuery, VarHasToken, VarHasAny)):
            toks += 1
        elif isinstance(item, DistQuery):
            toks += 2
            preds += 1
        elif isinstance(item, PredQuery):
            preds += 1
        elif isinstance(item, (NotQuery, AndQuery, OrQuery, SomeQuery, EveryQuery)):
            ops += 1
    return {"toks_Q": toks, "preds_Q": preds, "ops_Q": ops}
