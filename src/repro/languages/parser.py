"""Recursive-descent parser shared by BOOL, DIST and COMP.

The three languages are syntactic restrictions of one another, so a single
parser with a feature level covers all of them:

* ``LanguageLevel.BOOL``  -- string literals, ANY, NOT/AND/OR;
* ``LanguageLevel.DIST``  -- BOOL plus ``dist(Token, Token, Integer)``;
* ``LanguageLevel.COMP``  -- DIST plus position variables (``var HAS ...``),
  the SOME/EVERY quantifiers and arbitrary registered predicates.

Operator precedence (loosest to tightest): ``OR``, ``AND``, prefix operators
(``NOT``, ``SOME var``, ``EVERY var``), primaries.  Parentheses group.
"""

from __future__ import annotations

import enum

from repro.exceptions import QuerySemanticsError, QuerySyntaxError
from repro.languages import ast
from repro.languages.lexer import TokenKind, TokenStream
from repro.model.predicates import PredicateRegistry, default_registry


class LanguageLevel(enum.IntEnum):
    """Which syntactic features the parser accepts."""

    BOOL = 1
    DIST = 2
    COMP = 3


class QueryParser:
    """A configurable recursive-descent parser producing surface ASTs."""

    def __init__(
        self,
        level: LanguageLevel = LanguageLevel.COMP,
        registry: PredicateRegistry | None = None,
    ) -> None:
        self.level = level
        self.registry = registry or default_registry()

    # ------------------------------------------------------------------ API
    def parse(self, text: str) -> ast.QueryNode:
        """Parse ``text`` into a surface AST; raise on syntax errors."""
        if not text or not text.strip():
            raise QuerySyntaxError("empty query")
        stream = TokenStream(text)
        node = self._parse_or(stream)
        if not stream.at_end():
            leftover = stream.peek()
            raise QuerySyntaxError(
                f"unexpected input {leftover.value!r} at offset {leftover.offset}",
                position=leftover.offset,
            )
        return node

    def parse_closed(self, text: str) -> ast.QueryNode:
        """Parse and additionally require that no position variable is free."""
        node = self.parse(text)
        free = node.free_variables()
        if free:
            raise QuerySemanticsError(
                f"unbound position variables in query: {sorted(free)}"
            )
        return node

    # ------------------------------------------------------------ grammar
    def _parse_or(self, stream: TokenStream) -> ast.QueryNode:
        node = self._parse_and(stream)
        while stream.accept(TokenKind.KEYWORD, "OR"):
            right = self._parse_and(stream)
            node = ast.OrQuery(node, right)
        return node

    def _parse_and(self, stream: TokenStream) -> ast.QueryNode:
        node = self._parse_unary(stream)
        while stream.accept(TokenKind.KEYWORD, "AND"):
            right = self._parse_unary(stream)
            node = ast.AndQuery(node, right)
        return node

    def _parse_unary(self, stream: TokenStream) -> ast.QueryNode:
        if stream.accept(TokenKind.KEYWORD, "NOT"):
            return ast.NotQuery(self._parse_unary(stream))
        if stream.peek().kind is TokenKind.KEYWORD and stream.peek().value in (
            "SOME",
            "EVERY",
        ):
            return self._parse_quantifier(stream)
        return self._parse_primary(stream)

    def _parse_quantifier(self, stream: TokenStream) -> ast.QueryNode:
        keyword = stream.advance()
        self._require_level(
            LanguageLevel.COMP,
            f"the {keyword.value} quantifier",
            keyword.offset,
        )
        var = stream.expect(TokenKind.IDENT).value
        operand = self._parse_unary(stream)
        if keyword.value == "SOME":
            return ast.SomeQuery(var, operand)
        return ast.EveryQuery(var, operand)

    def _parse_primary(self, stream: TokenStream) -> ast.QueryNode:
        token = stream.peek()
        if stream.accept(TokenKind.LPAREN):
            node = self._parse_or(stream)
            stream.expect(TokenKind.RPAREN)
            return node
        if token.kind is TokenKind.STRING:
            stream.advance()
            return ast.TokenQuery(token.value)
        if token.kind is TokenKind.KEYWORD and token.value == "ANY":
            stream.advance()
            return ast.AnyQuery()
        if token.kind is TokenKind.IDENT:
            return self._parse_identifier(stream)
        raise QuerySyntaxError(
            f"unexpected {token.value or 'end of query'!r} at offset {token.offset}",
            position=token.offset,
        )

    def _parse_identifier(self, stream: TokenStream) -> ast.QueryNode:
        ident = stream.advance()
        following = stream.peek()
        if following.kind is TokenKind.KEYWORD and following.value == "HAS":
            self._require_level(LanguageLevel.COMP, "the HAS construct", ident.offset)
            stream.advance()
            if stream.accept(TokenKind.KEYWORD, "ANY"):
                return ast.VarHasAny(ident.value)
            literal = stream.expect(TokenKind.STRING)
            return ast.VarHasToken(ident.value, literal.value)
        if following.kind is TokenKind.LPAREN:
            return self._parse_call(stream, ident.value, ident.offset)
        raise QuerySyntaxError(
            f"bare identifier {ident.value!r} at offset {ident.offset}; token "
            "literals must be quoted",
            position=ident.offset,
        )

    def _parse_call(
        self, stream: TokenStream, name: str, offset: int
    ) -> ast.QueryNode:
        stream.expect(TokenKind.LPAREN)
        if name.lower() == "dist" and self.level >= LanguageLevel.DIST:
            node = self._parse_dist_arguments(stream)
            stream.expect(TokenKind.RPAREN)
            return node
        self._require_level(
            LanguageLevel.COMP, f"the predicate {name!r}", offset
        )
        if name not in self.registry:
            raise QuerySemanticsError(f"unknown predicate {name!r}")
        variables: list[str] = []
        constants: list = []
        while True:
            arg = stream.advance()
            if arg.kind is TokenKind.IDENT:
                if constants:
                    raise QuerySyntaxError(
                        "position variables must precede constants in "
                        f"{name!r} at offset {arg.offset}",
                        position=arg.offset,
                    )
                variables.append(arg.value)
            elif arg.kind is TokenKind.INTEGER:
                constants.append(int(arg.value))
            elif arg.kind is TokenKind.STRING:
                constants.append(arg.value)
            else:
                raise QuerySyntaxError(
                    f"unexpected predicate argument {arg.value!r} at offset "
                    f"{arg.offset}",
                    position=arg.offset,
                )
            if not stream.accept(TokenKind.COMMA):
                break
        stream.expect(TokenKind.RPAREN)
        predicate = self.registry.get(name)
        predicate.check_arity(variables, constants)
        return ast.PredQuery(name, tuple(variables), tuple(constants))

    def _parse_dist_arguments(self, stream: TokenStream) -> ast.QueryNode:
        first = self._parse_dist_token(stream)
        stream.expect(TokenKind.COMMA)
        second = self._parse_dist_token(stream)
        stream.expect(TokenKind.COMMA)
        limit = stream.expect(TokenKind.INTEGER)
        return ast.DistQuery(first, second, int(limit.value))

    def _parse_dist_token(self, stream: TokenStream) -> str | None:
        token = stream.peek()
        if token.kind is TokenKind.STRING:
            stream.advance()
            return token.value
        if token.kind is TokenKind.KEYWORD and token.value == "ANY":
            stream.advance()
            return None
        raise QuerySyntaxError(
            "dist() arguments must be string literals or ANY "
            f"(offset {token.offset})",
            position=token.offset,
        )

    # ------------------------------------------------------------- helpers
    def _require_level(
        self, required: LanguageLevel, feature: str, offset: int
    ) -> None:
        if self.level < required:
            raise QuerySyntaxError(
                f"{feature} is not available in the "
                f"{LanguageLevel(self.level).name} language (offset {offset})",
                position=offset,
            )
