"""Lexer shared by the BOOL, DIST and COMP query parsers.

Token kinds:

* ``STRING``  -- a single-quoted token literal, e.g. ``'usability'``;
* ``INTEGER`` -- a non-negative integer literal (predicate constants);
* ``KEYWORD`` -- one of AND, OR, NOT, SOME, EVERY, HAS, ANY (case-insensitive);
* ``IDENT``   -- a position-variable name or predicate name;
* ``LPAREN`` / ``RPAREN`` / ``COMMA``.

The lexer records character offsets so that syntax errors point at the
offending location.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import QuerySyntaxError

KEYWORDS = frozenset({"AND", "OR", "NOT", "SOME", "EVERY", "HAS", "ANY"})

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>'(?:[^'\\]|\\.)*')
  | (?P<INTEGER>\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
    """,
    re.VERBOSE,
)


class TokenKind(enum.Enum):
    """Lexical token categories."""

    STRING = "STRING"
    INTEGER = "INTEGER"
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    EOF = "EOF"


@dataclass(frozen=True)
class LexToken:
    """One lexical token: kind, decoded value, and source offset."""

    kind: TokenKind
    value: str
    offset: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.kind.value}({self.value!r}@{self.offset})"


def tokenize(text: str) -> list[LexToken]:
    """Tokenize a query string; raises :class:`QuerySyntaxError` on bad input."""
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[LexToken]:
    """Yield the lexical tokens of ``text``, ending with an EOF token."""
    offset = 0
    length = len(text)
    while offset < length:
        match = _TOKEN_RE.match(text, offset)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[offset]!r} at offset {offset}",
                position=offset,
            )
        kind = match.lastgroup
        value = match.group(0)
        if kind == "WS":
            offset = match.end()
            continue
        if kind == "STRING":
            literal = value[1:-1].replace("\\'", "'").replace("\\\\", "\\")
            yield LexToken(TokenKind.STRING, literal, offset)
        elif kind == "INTEGER":
            yield LexToken(TokenKind.INTEGER, value, offset)
        elif kind == "IDENT":
            upper = value.upper()
            if upper in KEYWORDS:
                yield LexToken(TokenKind.KEYWORD, upper, offset)
            else:
                yield LexToken(TokenKind.IDENT, value, offset)
        elif kind == "LPAREN":
            yield LexToken(TokenKind.LPAREN, value, offset)
        elif kind == "RPAREN":
            yield LexToken(TokenKind.RPAREN, value, offset)
        elif kind == "COMMA":
            yield LexToken(TokenKind.COMMA, value, offset)
        offset = match.end()
    yield LexToken(TokenKind.EOF, "", length)


class TokenStream:
    """A peekable stream of lexical tokens used by the recursive-descent parsers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self._tokens = tokenize(text)
        self._index = 0

    def peek(self) -> LexToken:
        """The next token without consuming it."""
        return self._tokens[self._index]

    def advance(self) -> LexToken:
        """Consume and return the next token."""
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def accept(self, kind: TokenKind, value: str | None = None) -> LexToken | None:
        """Consume the next token iff it matches ``kind`` (and ``value``)."""
        token = self.peek()
        if token.kind is kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, value: str | None = None) -> LexToken:
        """Consume the next token or raise a descriptive syntax error."""
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            expected = value or kind.value
            raise QuerySyntaxError(
                f"expected {expected} but found {actual.value or 'end of query'!r} "
                f"at offset {actual.offset}",
                position=actual.offset,
            )
        return token

    def at_end(self) -> bool:
        """True when only the EOF token remains."""
        return self.peek().kind is TokenKind.EOF
