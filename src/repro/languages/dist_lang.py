"""The DIST language (paper, Section 4.2).

Grammar::

    Query := Token | NOT Query | Query AND Query | Query OR Query
           | dist(Token, Token, Integer)
    Token := StringLiteral | ANY

``dist(t1, t2, d)`` requires the two tokens to occur with at most ``d``
intervening tokens (the ``distance`` predicate); when a token is ANY the
corresponding ``hasToken`` conjunct is omitted.  Theorem 5 shows that DIST is
still incomplete: it cannot, for example, require two tokens *not* to appear
next to each other.
"""

from __future__ import annotations

from repro.languages import ast
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model import calculus as c


def parse_dist(text: str) -> ast.QueryNode:
    """Parse a DIST query string."""
    return QueryParser(LanguageLevel.DIST).parse(text)


def dist_to_calculus(text: str) -> c.CalculusQuery:
    """Parse a DIST query and translate it to a calculus query."""
    return parse_dist(text).to_calculus_query()


def is_dist_query(node: ast.QueryNode) -> bool:
    """True iff the surface AST only uses DIST constructs."""
    return all(
        isinstance(
            item,
            (
                ast.TokenQuery,
                ast.AnyQuery,
                ast.NotQuery,
                ast.AndQuery,
                ast.OrQuery,
                ast.DistQuery,
            ),
        )
        for item in ast.walk(node)
    )
