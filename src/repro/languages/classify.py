"""Classification of surface queries into the paper's language hierarchy.

The evaluation engines form a hierarchy (Figure 3): BOOL-NONEG ⊂ BOOL,
PPRED ⊂ NPRED ⊂ COMP.  Given a parsed surface query, :func:`classify_query`
determines the *cheapest* class whose evaluation algorithm can run it:

* ``BOOL_NONEG`` -- pure conjunctive/disjunctive keyword queries whose
  negations appear only as ``... AND NOT subquery``;
* ``BOOL``       -- keyword queries that need the ``IL_ANY`` list (free-standing
  NOT, the universal token ANY);
* ``PPRED``      -- queries with position variables and *positive* predicates,
  negation restricted to closed subqueries under an AND;
* ``NPRED``      -- like PPRED but also using *negative* predicates;
* ``COMP``       -- everything else (EVERY, general predicates, unrestricted
  negation mixed with predicates, ANY combined with variables, ...).

The classifier is purely syntactic, mirroring the grammars of Sections 4--5.
"""

from __future__ import annotations

import enum

from repro.languages import ast
from repro.languages.bool_lang import is_bool_noneg_query, is_bool_query
from repro.model.predicates import Polarity, PredicateRegistry, default_registry


class LanguageClass(enum.Enum):
    """The evaluation classes of the paper's complexity hierarchy."""

    BOOL_NONEG = "BOOL-NONEG"
    BOOL = "BOOL"
    PPRED = "PPRED"
    NPRED = "NPRED"
    COMP = "COMP"


#: Partial order of the hierarchy: every class can also be run by the engines
#: of the classes listed after it.
SUPERSETS: dict[LanguageClass, tuple[LanguageClass, ...]] = {
    LanguageClass.BOOL_NONEG: (
        LanguageClass.BOOL,
        LanguageClass.PPRED,
        LanguageClass.NPRED,
        LanguageClass.COMP,
    ),
    LanguageClass.BOOL: (LanguageClass.COMP,),
    LanguageClass.PPRED: (LanguageClass.NPRED, LanguageClass.COMP),
    LanguageClass.NPRED: (LanguageClass.COMP,),
    LanguageClass.COMP: (),
}


def classify_query(
    node: ast.QueryNode, registry: PredicateRegistry | None = None
) -> LanguageClass:
    """The cheapest language class able to evaluate ``node``."""
    registry = registry or default_registry()

    if is_bool_query(node):
        return (
            LanguageClass.BOOL_NONEG
            if is_bool_noneg_query(node)
            else LanguageClass.BOOL
        )

    if _uses_every(node):
        return LanguageClass.COMP
    if _uses_any(node):
        return LanguageClass.COMP
    if not _negations_are_restricted(node):
        return LanguageClass.COMP

    polarities = _predicate_polarities(node, registry)
    if Polarity.GENERAL in polarities:
        return LanguageClass.COMP
    if Polarity.NEGATIVE in polarities:
        return LanguageClass.NPRED
    return LanguageClass.PPRED


def can_evaluate(query_class: LanguageClass, engine_class: LanguageClass) -> bool:
    """True iff an engine of ``engine_class`` can evaluate ``query_class`` queries."""
    return engine_class is query_class or engine_class in SUPERSETS[query_class]


# --------------------------------------------------------------------------
# Structural checks
# --------------------------------------------------------------------------
def _uses_every(node: ast.QueryNode) -> bool:
    return any(isinstance(item, ast.EveryQuery) for item in ast.walk(node))


def _uses_any(node: ast.QueryNode) -> bool:
    return any(
        isinstance(item, (ast.AnyQuery, ast.VarHasAny)) for item in ast.walk(node)
    )


def _predicate_polarities(
    node: ast.QueryNode, registry: PredicateRegistry
) -> set[Polarity]:
    polarities: set[Polarity] = set()
    for item in ast.walk(node):
        if isinstance(item, ast.PredQuery):
            polarities.add(registry.polarity_of(item.name))
        elif isinstance(item, ast.DistQuery):
            polarities.add(Polarity.POSITIVE)
    return polarities


def _negations_are_restricted(node: ast.QueryNode) -> bool:
    """PPRED/NPRED restriction: NOT only as ``... AND NOT closed-subquery``."""
    if isinstance(node, ast.NotQuery):
        return False
    return _check(node)


def _check(node: ast.QueryNode) -> bool:
    if isinstance(node, ast.AndQuery):
        conjuncts = _flatten_and(node)
        positives = [c for c in conjuncts if not isinstance(c, ast.NotQuery)]
        negatives = [c for c in conjuncts if isinstance(c, ast.NotQuery)]
        if not positives:
            return False
        if any(not neg.operand.is_closed() for neg in negatives):
            return False
        return all(_check(pos) for pos in positives) and all(
            _check(neg.operand) for neg in negatives
        )
    if isinstance(node, ast.NotQuery):
        return False
    if isinstance(node, ast.OrQuery):
        # The pipelined engines combine OR branches at node level, which
        # requires each branch to be a closed subquery; an OR over open
        # fragments (sharing an externally bound variable) needs COMP.
        if not node.left.is_closed() or not node.right.is_closed():
            return False
        return _check(node.left) and _check(node.right)
    if isinstance(node, (ast.SomeQuery, ast.EveryQuery)):
        return _check(node.operand)
    return True


def _flatten_and(node: ast.QueryNode) -> list[ast.QueryNode]:
    if isinstance(node, ast.AndQuery):
        return _flatten_and(node.left) + _flatten_and(node.right)
    return [node]
