"""The unified logical-plan IR: canonicalisation of surface queries.

Every caching and planning layer keys work by *query identity*, and surface
syntax is a poor identity: ``'a' AND 'b'`` and ``'b' AND 'a'`` are the same
logical plan but render to different text, so they used to occupy two plan
cache entries and two result cache entries.  This module defines the
canonical form that fixes that:

* AND / OR chains are flattened (both operators are associative at node
  granularity) and their operands sorted by canonical text, negated
  conjuncts after positive ones -- so every commuted/re-associated variant
  of a conjunction or disjunction maps to one canonical AST;
* all other constructs (NOT, SOME/EVERY, predicates, ``dist``) keep their
  structure -- quantifier variable names are *not* alpha-renamed, and
  predicate argument order is semantic.

Safety of key sharing (why two queries with equal canonical keys may share
cached results bit-for-bit): ranked scores come from
``ScoringModel.document_score`` over query tokens prepared in *sorted*
order (see :meth:`repro.engine.executor.Executor._score`), so they depend
only on the token *set*; node-id sets are order-independent by
construction; and the engine-internal score folds use commutative IEEE
operations (``min``, ``+``, ``*``).  The cross-product equivalence suite
pins this (``tests/planner/test_commuted_equivalence.py``).

Only the *key* is canonical -- execution always runs the query as written,
so the canonicalisation can never change a returned byte.
"""

from __future__ import annotations

from functools import reduce

from repro.languages import ast


def _flatten(node: ast.QueryNode, kind: type) -> list[ast.QueryNode]:
    """Operands of an associative chain of ``kind`` in tree order."""
    if isinstance(node, kind):
        return _flatten(node.left, kind) + _flatten(node.right, kind)
    return [node]


def _sort_key(node: ast.QueryNode) -> tuple[int, str]:
    # Negations after positive operands: the PPRED/NPRED grammar checks and
    # the BOOL-NONEG classifier treat ``... AND NOT sub`` specially, and a
    # NOT-first rendering reads badly in logs.  Within each group, operands
    # order by their canonical text.
    return (1 if isinstance(node, ast.NotQuery) else 0, node.to_text())


def canonicalize(node: ast.QueryNode) -> ast.QueryNode:
    """The canonical AST of ``node`` (a new tree; the input is untouched)."""
    if isinstance(node, (ast.AndQuery, ast.OrQuery)):
        kind = type(node)
        operands = sorted(
            (canonicalize(operand) for operand in _flatten(node, kind)),
            key=_sort_key,
        )
        return reduce(kind, operands)
    if isinstance(node, ast.NotQuery):
        return ast.NotQuery(canonicalize(node.operand))
    if isinstance(node, ast.SomeQuery):
        return ast.SomeQuery(node.var, canonicalize(node.operand))
    if isinstance(node, ast.EveryQuery):
        return ast.EveryQuery(node.var, canonicalize(node.operand))
    # Leaves and constructs whose operand order is semantic (predicates,
    # dist, HAS bindings) are already canonical.
    return node


def canonical_key(node: ast.QueryNode) -> str:
    """The canonical plan-cache key of a parsed query.

    Equal keys mean "same logical plan": every cache in the stack (the
    executor's plan memo, the planner's physical-plan memo, the cluster's
    :class:`~repro.cluster.cache.QueryCache`) keys on this string instead
    of the surface text.
    """
    return canonicalize(node).to_text()


def and_group(node: ast.QueryNode) -> "tuple[list[str], bool, int]":
    """The root conjunction's mergeable leaves: ``(tokens, has_any, extras)``.

    Flattens a root AND chain and splits its conjuncts into token leaves
    (the lists a zig-zag merge would intersect), an ``ANY`` flag, and the
    count of non-leaf conjuncts (OR / NOT subqueries, intersected at node
    level after the merge).  A non-AND root yields ``([], False, 0)`` --
    there is nothing for the merge-strategy choice to decide.
    """
    if not isinstance(node, ast.AndQuery):
        return [], False, 0
    tokens: list[str] = []
    has_any = False
    extras = 0
    for conjunct in _flatten(node, ast.AndQuery):
        if isinstance(conjunct, ast.TokenQuery):
            tokens.append(conjunct.token)
        elif isinstance(conjunct, ast.AnyQuery):
            has_any = True
        else:
            extras += 1
    return tokens, has_any, extras
