"""The planner's cost model.

Costs are measured in abstract *cursor operations* -- the same unit
:class:`~repro.index.cursor.CursorStats` counts -- so runtime feedback can
compare an estimate directly against the observed op count of the same
query.  Two access patterns compete for a conjunction of posting lists:

* **sequential merge** (the paper's algorithm): every list is walked end to
  end, so the cost is simply the sum of the document frequencies;
* **zig-zag merge** (PR 1's galloping intersection): the rarest list leads
  and each other list is probed once per lead entry, with galloping +
  binary search costing ``O(log(gap))`` probes per seek.

The break-even point between the two is what the old static heuristic
(``BoolEngine.ZIGZAG_SELECTIVITY_RATIO == 6``) hard-coded; here it falls
out of the model, and per-token feedback corrections
(:class:`~repro.planner.feedback.CostFeedback`) shift it per corpus at
runtime.
"""

from __future__ import annotations

from math import log2
from typing import Callable, Sequence

# One sequential ``next_entry`` step.  The unit of the whole model.
SEQ_UNIT = 1.0
# One seek (galloping probe + binary-search step).  Seeks touch the skip
# table and do more comparisons than a plain step, so they are charged a
# premium.  2.0 puts the two-list break-even between df ratios 4 and 6 --
# measured on the synthetic corpora, ratio-4 zig-zags lose to the
# sequential merge and ratio-6 ones win, which is also where the engines'
# static ``ZIGZAG_SELECTIVITY_RATIO == 6`` threshold sits.
SEEK_UNIT = 2.0


def sequential_cost(counts: Sequence[float]) -> float:
    """Cost of a full sequential merge: every entry of every list is visited."""
    return SEQ_UNIT * float(sum(counts))


def seek_cost(lead: float, other: float) -> float:
    """Cost of zig-zag probing one non-lead list of length ``other``.

    The lead drives ``lead`` seeks into the other list; galloping makes each
    seek logarithmic in the average gap ``other / lead``.  ``max(1, ...)``
    keeps a floor of one probe per seek even when the other list is the
    shorter one (the merge still has to look at it).
    """
    if lead <= 0:
        return 0.0
    gap = other / lead
    return SEEK_UNIT * lead * max(1.0, log2(gap + 1.0))


def zigzag_cost(counts: Sequence[float]) -> float:
    """Cost of a rarest-first zig-zag merge over lists of these lengths."""
    if not counts:
        return 0.0
    ordered = sorted(counts)
    lead = float(ordered[0])
    total = SEQ_UNIT * lead
    for other in ordered[1:]:
        total += seek_cost(lead, float(other))
    return total


def merge_decision(
    counts: Sequence[float],
) -> tuple[str, float, float]:
    """Pick the cheaper merge: ``(strategy, chosen_cost, rejected_cost)``.

    ``strategy`` is ``"zigzag"`` or ``"sequential"``.  With fewer than two
    lists there is nothing to merge and the sequential cost is returned for
    both (a single scan is a single scan either way).
    """
    seq = sequential_cost(counts)
    if len(counts) < 2:
        return "sequential", seq, seq
    zig = zigzag_cost(counts)
    if zig <= seq:
        return "zigzag", zig, seq
    return "sequential", seq, zig


def corrected_counts(
    tokens: Sequence[str],
    df: Callable[[str], int],
    correction: Callable[[str], float],
) -> list[float]:
    """Document frequencies with per-token feedback corrections applied.

    ``df`` maps a token to its document frequency; ``correction`` maps it to
    the feedback multiplier (1.0 when no observations exist).  The corrected
    value is what the cost formulas above consume.
    """
    return [max(0.0, df(token)) * correction(token) for token in tokens]
