"""The cost-based query planner.

:class:`QueryPlanner` is the facade the executor and the scatter layer talk
to.  Given a parsed query it produces a :class:`PhysicalPlan` deciding:

* **join order** -- token posting lists sorted by feedback-corrected cost
  (cheapest leads), replacing the engines' static rarest-first order;
* **merge strategy** -- zig-zag vs sequential by comparing modelled cursor
  ops (:mod:`repro.planner.cost`), replacing the static
  ``ZIGZAG_SELECTIVITY_RATIO`` threshold;
* **access mode** -- upgrade paper → fast when the chosen strategy only
  exists on the fast path (the engines' algorithms are pinned
  result-identical across modes, so this is score-neutral);
* **top-k bound strategy** -- start with exact bound pruning unless
  feedback remembers this canonical query giving up, in which case a plain
  heap skips the fruitless bound probes.

Plans are memoised per ``(canonical key, engine, mode, k?, scored?)`` and
invalidated lazily when the feedback generation moves.  A memo hit is
reported with provenance ``"cached"`` so telemetry can distinguish fresh
planning work from reuse.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.languages import ast
from repro.planner import cost as cost_model
from repro.planner import ir
from repro.planner.feedback import CostFeedback
from repro.planner.physical import (
    BOUND_AUTO,
    BOUND_BOUNDED,
    BOUND_HEAP,
    MERGE_AUTO,
    MERGE_SEQUENTIAL,
    MERGE_ZIGZAG,
    PhysicalPlan,
    TokenEstimate,
)

# Sentinel token name for the ANY posting list in join orders / estimates --
# the same name ``IL_ANY`` cursors report, so observed per-token ops match
# the estimates without translation.
from repro.index.inverted_index import ANY_TOKEN

DfCallable = Callable[[Optional[str]], int]


class QueryPlanner:
    """Plans queries against one statistics source.

    ``df`` maps a token to its document frequency; ``df(None)`` must return
    the length of the ANY list (every indexed node).  The executor backs
    this with its index / scoring statistics, the scatter layer with the
    cluster's :class:`~repro.cluster.stats.AggregatedStatistics` -- so a
    coordinator plans once from global statistics and ships the same plan
    to every shard.
    """

    def __init__(self, df: DfCallable, feedback: CostFeedback | None = None) -> None:
        self._df = df
        self.feedback = feedback if feedback is not None else CostFeedback()
        self._memo: dict[tuple[str, str, str, bool, bool], PhysicalPlan] = {}
        self.plans_built = 0
        self.memo_hits = 0

    # ----------------------------------------------------------------- plan
    def plan(
        self,
        query: ast.QueryNode,
        *,
        engine: str,
        language_class: str,
        optimizer: str,
        access_mode: str,
        top_k: int | None = None,
        scored: bool = False,
    ) -> PhysicalPlan:
        """The physical plan for ``query`` under ``optimizer`` mode.

        ``optimizer`` must be ``"on"`` or ``"static"`` (mode ``"off"`` means
        "no planner" and callers skip planning entirely).
        """
        canonical = ir.canonical_key(query)
        if optimizer != "on":
            return PhysicalPlan(
                key=canonical,
                engine=engine,
                language_class=language_class,
                optimizer=optimizer,
                provenance="static",
                access_mode=access_mode,
            )
        memo_key = (canonical, engine, access_mode, top_k is not None, scored)
        cached = self._memo.get(memo_key)
        if cached is not None and cached.feedback_generation == self.feedback.generation:
            self.memo_hits += 1
            return replace(cached, provenance="cached")
        plan = self._optimize(
            query,
            canonical=canonical,
            engine=engine,
            language_class=language_class,
            access_mode=access_mode,
            top_k=top_k,
            scored=scored,
        )
        self._memo[memo_key] = plan
        self.plans_built += 1
        return plan

    # ------------------------------------------------------------- feedback
    def observe(self, plan: PhysicalPlan, observed_token_ops: dict[str, float]) -> None:
        """Fold one optimized query's observed cursor ops into the model."""
        if plan.optimizer != "on":
            return
        self.feedback.observe_many(plan.estimated_token_ops(), observed_token_ops)

    def record_give_up(self, plan: PhysicalPlan) -> None:
        """Remember that this plan's query defeated bound pruning."""
        self.feedback.record_give_up(plan.key)

    def summary(self) -> dict[str, object]:
        payload = {"plans_built": self.plans_built, "memo_hits": self.memo_hits}
        payload.update(self.feedback.summary())
        return payload

    # ------------------------------------------------------------ internals
    def _optimize(
        self,
        query: ast.QueryNode,
        *,
        canonical: str,
        engine: str,
        language_class: str,
        access_mode: str,
        top_k: int | None,
        scored: bool,
    ) -> PhysicalPlan:
        decides: list[str] = []
        merge_strategy = MERGE_AUTO
        join_order: tuple[str, ...] = ()
        estimates: tuple[TokenEstimate, ...] = ()
        estimated_cost: float | None = None
        chosen_mode = access_mode

        tokens, has_any, _extras = ir.and_group(ir.canonicalize(query))
        merge_tokens = list(tokens) + ([ANY_TOKEN] if has_any else [])
        if engine == "bool" and len(merge_tokens) >= 2:
            merge_strategy, join_order, estimates, estimated_cost = self._plan_merge(
                merge_tokens
            )
            decides.append("merge_strategy")
            decides.append("join_order")
            if merge_strategy == MERGE_ZIGZAG:
                # The zig-zag intersection only runs on the fast cursor path;
                # results are pinned identical across modes, so upgrading is
                # score-neutral and buys the galloping skips.
                chosen_mode = "fast"
                decides.append("access_mode")
        elif engine in ("ppred", "npred"):
            # Positional operators gallop in fast mode with identical
            # results; the planner always takes the cheap path.
            chosen_mode = "fast"
            decides.append("access_mode")
            join_order, estimates, estimated_cost = self._plan_positional(query)
            if join_order:
                decides.append("join_order")

        bound_strategy = BOUND_AUTO
        give_up_after: int | None = None
        if top_k is not None and scored:
            if self.feedback.gave_up(canonical):
                bound_strategy = BOUND_HEAP
                give_up_after = 0
            else:
                bound_strategy = BOUND_BOUNDED
            decides.append("bound_strategy")

        return PhysicalPlan(
            key=canonical,
            engine=engine,
            language_class=language_class,
            optimizer="on",
            provenance="optimized",
            access_mode=chosen_mode,
            merge_strategy=merge_strategy,
            bound_strategy=bound_strategy,
            give_up_after=give_up_after,
            join_order=join_order,
            estimates=estimates,
            estimated_cost=estimated_cost,
            feedback_generation=self.feedback.generation,
            decides=tuple(decides),
        )

    def _corrected(self, token: str) -> tuple[int, float]:
        df = self._df(None if token == ANY_TOKEN else token)
        return df, max(0.0, df) * self.feedback.correction(token)

    def _plan_merge(
        self, tokens: list[str]
    ) -> tuple[str, tuple[str, ...], tuple[TokenEstimate, ...], float]:
        """Merge strategy + join order for a root conjunction's leaves."""
        stats = [(token,) + self._corrected(token) for token in tokens]
        # Cheapest (feedback-corrected) list leads; ties break on token text
        # so the order is deterministic across processes.
        stats.sort(key=lambda item: (item[2], item[0]))
        counts = [corrected for _, _, corrected in stats]
        strategy, chosen, _rejected = cost_model.merge_decision(counts)
        estimates: list[TokenEstimate] = []
        if strategy == MERGE_ZIGZAG:
            lead = counts[0]
            for position, (token, df, corrected) in enumerate(stats):
                if position == 0:
                    role, ops = "lead", cost_model.SEQ_UNIT * corrected
                else:
                    role, ops = "probe", cost_model.seek_cost(lead, corrected)
                estimates.append(TokenEstimate(token, df, corrected, ops, role))
        else:
            for token, df, corrected in stats:
                estimates.append(
                    TokenEstimate(
                        token, df, corrected, cost_model.SEQ_UNIT * corrected, "scan"
                    )
                )
        order = tuple(token for token, _, _ in stats)
        return strategy, order, tuple(estimates), chosen

    def _plan_positional(
        self, query: ast.QueryNode
    ) -> tuple[tuple[str, ...], tuple[TokenEstimate, ...], float | None]:
        """Join order for PPRED/NPRED: positive tokens, cheapest first."""
        tokens = sorted(ast.query_tokens(query))
        if len(tokens) < 2:
            if not tokens:
                return (), (), None
            df, corrected = self._corrected(tokens[0])
            estimate = TokenEstimate(
                tokens[0], df, corrected, cost_model.SEQ_UNIT * corrected, "lead"
            )
            return (), (estimate,), estimate.estimated_ops
        stats = [(token,) + self._corrected(token) for token in tokens]
        stats.sort(key=lambda item: (item[2], item[0]))
        lead = stats[0][2]
        estimates: list[TokenEstimate] = []
        total = 0.0
        for position, (token, df, corrected) in enumerate(stats):
            if position == 0:
                role, ops = "lead", cost_model.SEQ_UNIT * corrected
            else:
                role, ops = "probe", cost_model.seek_cost(lead, corrected)
            estimates.append(TokenEstimate(token, df, corrected, ops, role))
            total += ops
        order = tuple(token for token, _, _ in stats)
        return order, tuple(estimates), total
