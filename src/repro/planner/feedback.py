"""Runtime cost feedback: observed CursorStats folded into the model.

After every optimized query the executor harvests the per-token cursor op
counts that EXPLAIN already computes and hands them to the planner.  This
module turns those observations into *correction multipliers*: if the model
estimated 100 ops for token ``t`` but the cursors actually performed 240,
the next plan for any query touching ``t`` costs it 2.4x higher.  The
corrections are:

* **EWMA-smoothed** (``alpha = 0.4``) so one outlier query cannot whipsaw
  plan choices;
* **clamped to [1/8, 8]** so a pathological observation cannot push a
  token's cost to zero or infinity;
* **generation-counted**: the memoised physical plans record the feedback
  generation they were planned under, and a correction that moves by more
  than 25% (or a new top-k give-up) bumps the generation, invalidating
  stale plans lazily on next lookup.

The same object records top-k **give-ups**: queries whose bound pruning hit
:attr:`~repro.engine.topk.TopKCollector.GIVE_UP_AFTER` fruitless checks.
Once a canonical query key has given up, future plans for it choose the
plain-heap bound strategy up front instead of re-paying the fruitless
bound probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

EWMA_ALPHA = 0.4
CORRECTION_FLOOR = 1.0 / 8.0
CORRECTION_CEILING = 8.0
# Relative movement of a correction that is considered "material" -- i.e.
# worth invalidating memoised plans over.
GENERATION_BUMP_RATIO = 0.25


@dataclass
class CostFeedback:
    """Per-token cost corrections plus per-query give-up memory."""

    _corrections: dict[str, float] = field(default_factory=dict)
    _gave_up: set[str] = field(default_factory=set)
    generation: int = 0

    # ---------------------------------------------------------- corrections
    def correction(self, token: str) -> float:
        """The current multiplier for ``token`` (1.0 when unobserved)."""
        return self._corrections.get(token, 1.0)

    def observe(self, token: str, estimated_ops: float, observed_ops: float) -> None:
        """Fold one query's (estimate, observation) pair for a token."""
        if estimated_ops <= 0.0 or observed_ops < 0.0:
            return
        ratio = observed_ops / estimated_ops
        ratio = min(CORRECTION_CEILING, max(CORRECTION_FLOOR, ratio))
        old = self.correction(token)
        new = (1.0 - EWMA_ALPHA) * old + EWMA_ALPHA * ratio
        new = min(CORRECTION_CEILING, max(CORRECTION_FLOOR, new))
        self._corrections[token] = new
        if old > 0 and abs(new - old) / old > GENERATION_BUMP_RATIO:
            self.generation += 1

    def observe_many(
        self, estimated: Mapping[str, float], observed: Mapping[str, float]
    ) -> None:
        """Fold a whole query's per-token estimates against its observations."""
        for token, estimate in estimated.items():
            if token in observed:
                self.observe(token, estimate, observed[token])

    # ------------------------------------------------------------- give-ups
    def record_give_up(self, canonical_key: str) -> None:
        """Remember that bound pruning gave up on this canonical query."""
        if canonical_key not in self._gave_up:
            self._gave_up.add(canonical_key)
            self.generation += 1

    def gave_up(self, canonical_key: str) -> bool:
        return canonical_key in self._gave_up

    # -------------------------------------------------------------- summary
    def summary(self) -> dict[str, object]:
        """A snapshot for ``/stats`` and doctor output."""
        return {
            "tokens_corrected": len(self._corrections),
            "give_ups": len(self._gave_up),
            "generation": self.generation,
        }
