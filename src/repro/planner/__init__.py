"""``repro.planner``: the first-class query planning layer.

Everything strategy-shaped that used to live as static heuristics inside
the engines (rarest-first join order, the zig-zag selectivity ratio, the
top-k give-up constant) is owned here:

* :mod:`repro.planner.ir` -- the unified logical-plan IR: canonicalisation
  that maps commuted/re-associated AND/OR variants to one plan key;
* :mod:`repro.planner.cost` -- the cursor-op cost model over document
  frequencies;
* :mod:`repro.planner.feedback` -- runtime corrections folded from observed
  :class:`~repro.index.cursor.CursorStats` deltas;
* :mod:`repro.planner.physical` / :mod:`repro.planner.optimizer` -- the
  picklable :class:`PhysicalPlan` artifact and the :class:`QueryPlanner`
  that produces it.

Three optimizer modes thread through the CLI, server, and benches:
``"off"`` (no planner -- the engines' builtin heuristics, byte-for-byte the
pre-planner behaviour), ``"static"`` (a plan artifact is built and reported
but every choice defers to the builtin heuristics), and ``"on"``
(cost-based choices with runtime feedback).  The house invariant: all three
produce bit-identical ids, scores, and order.
"""

from __future__ import annotations

from repro.exceptions import EvaluationError
from repro.planner.feedback import CostFeedback
from repro.planner.ir import canonical_key, canonicalize
from repro.planner.optimizer import QueryPlanner
from repro.planner.physical import PhysicalPlan, TokenEstimate

OPTIMIZER_ON = "on"
OPTIMIZER_OFF = "off"
OPTIMIZER_STATIC = "static"
OPTIMIZER_MODES = (OPTIMIZER_ON, OPTIMIZER_OFF, OPTIMIZER_STATIC)
DEFAULT_OPTIMIZER = OPTIMIZER_STATIC


def check_optimizer_mode(mode: str) -> str:
    """Validate an optimizer mode string, returning it unchanged."""
    if mode not in OPTIMIZER_MODES:
        raise EvaluationError(
            f"unknown optimizer mode {mode!r}; expected one of {OPTIMIZER_MODES}"
        )
    return mode


__all__ = [
    "OPTIMIZER_ON",
    "OPTIMIZER_OFF",
    "OPTIMIZER_STATIC",
    "OPTIMIZER_MODES",
    "DEFAULT_OPTIMIZER",
    "check_optimizer_mode",
    "canonicalize",
    "canonical_key",
    "CostFeedback",
    "PhysicalPlan",
    "TokenEstimate",
    "QueryPlanner",
]
