"""The physical plan: one picklable artifact carrying every strategy choice.

A :class:`PhysicalPlan` is what flows through the stack -- executor →
engines → top-k collector → cache key → thread/process scatter workers →
EXPLAIN.  Shipping the artifact (rather than re-deriving choices per shard)
keeps every worker's decisions identical to the coordinator's, which is
what makes the sharded/unsharded bit-identity invariant cheap to maintain.

Every field is a plain value so the plan pickles across the process-scatter
boundary unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

# Strategy vocabulary.  "auto" defers to the engine's builtin static
# heuristic -- it is what optimizer="static" plans carry, and makes "static"
# behave exactly like the pre-planner code path.
MERGE_AUTO = "auto"
MERGE_ZIGZAG = "zigzag"
MERGE_SEQUENTIAL = "sequential"
BOUND_AUTO = "auto"
BOUND_BOUNDED = "bounded"
BOUND_HEAP = "heap"


@dataclass(frozen=True)
class TokenEstimate:
    """The cost model's view of one token at plan time."""

    token: str
    document_frequency: int
    corrected_cost: float
    estimated_ops: float
    role: str  # "lead" | "probe" | "scan"

    def as_dict(self) -> dict[str, object]:
        return {
            "token": self.token,
            "df": self.document_frequency,
            "corrected_cost": round(self.corrected_cost, 3),
            "estimated_ops": round(self.estimated_ops, 3),
            "role": self.role,
        }


@dataclass(frozen=True)
class PhysicalPlan:
    """Strategy choices for one canonical query.

    ``merge_strategy`` / ``bound_strategy`` of ``"auto"`` mean "whatever the
    engine's builtin heuristic picks" -- the static plan.  Everything the
    plan decides is score-neutral: join order and merge strategy change
    which cursor operations run, never which node ids or scores come out,
    and the bound strategy only controls *when* exact pruning is attempted.
    """

    key: str
    engine: str
    language_class: str
    optimizer: str
    provenance: str  # "optimized" | "static" | "cached"
    access_mode: str
    merge_strategy: str = MERGE_AUTO
    bound_strategy: str = BOUND_AUTO
    give_up_after: int | None = None
    join_order: tuple[str, ...] = ()
    estimates: tuple[TokenEstimate, ...] = ()
    estimated_cost: float | None = None
    feedback_generation: int = 0
    decides: tuple[str, ...] = field(default=())

    # ------------------------------------------------------- engine queries
    def order_for(self, tokens: Sequence[str]) -> list[int] | None:
        """Merge order (indices into ``tokens``) or None for builtin order.

        Only answers when the plan's join order covers exactly the tokens
        the engine is about to merge -- a mismatch (e.g. the engine flattened
        differently than the planner) falls back to the builtin heuristic
        rather than guessing.
        """
        if not self.join_order:
            return None
        if sorted(self.join_order) != sorted(tokens):
            return None
        remaining: dict[str, list[int]] = {}
        for index, token in enumerate(tokens):
            remaining.setdefault(token, []).append(index)
        order: list[int] = []
        for token in self.join_order:
            slots = remaining.get(token)
            if not slots:
                return None
            order.append(slots.pop(0))
        return order

    def use_zigzag(self) -> bool | None:
        """True/False when the plan decided the merge; None for builtin."""
        if self.merge_strategy == MERGE_ZIGZAG:
            return True
        if self.merge_strategy == MERGE_SEQUENTIAL:
            return False
        return None

    # ------------------------------------------------------------ reporting
    def estimated_token_ops(self) -> dict[str, float]:
        """Per-token estimated op counts (for the feedback loop)."""
        return {e.token: e.estimated_ops for e in self.estimates}

    def describe(self) -> dict[str, object]:
        """The plan section of EXPLAIN / slow-query log entries."""
        payload: dict[str, object] = {
            "key": self.key,
            "engine": self.engine,
            "language_class": self.language_class,
            "optimizer": self.optimizer,
            "provenance": self.provenance,
            "access_mode": self.access_mode,
            "merge_strategy": self.merge_strategy,
            "bound_strategy": self.bound_strategy,
        }
        if self.give_up_after is not None:
            payload["give_up_after"] = self.give_up_after
        if self.join_order:
            payload["join_order"] = list(self.join_order)
        if self.decides:
            payload["decides"] = list(self.decides)
        if self.estimated_cost is not None:
            payload["estimated_cost"] = round(self.estimated_cost, 3)
        if self.estimates:
            payload["tokens"] = [e.as_dict() for e in self.estimates]
        return payload
