"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by the library derive from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``KeyError`` from internal bugs, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CorpusError(ReproError):
    """Raised for invalid documents, collections, or corpus construction."""


class IndexError_(ReproError):
    """Raised for inverted-index construction or access problems.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``; exported as ``InvertedIndexError`` from the package root.
    """


class QuerySyntaxError(ReproError):
    """Raised when a surface-language query cannot be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        #: Character offset in the query string where the error was detected,
        #: or ``None`` when the location is unknown.
        self.position = position


class QuerySemanticsError(ReproError):
    """Raised when a parsed query is structurally invalid.

    Examples: an unbound position variable in a COMP query, a predicate that
    is not registered, or a query that is outside the language subset an
    engine supports.
    """


class PredicateError(ReproError):
    """Raised for unknown predicates or predicates applied with bad arity."""


class TranslationError(ReproError):
    """Raised when an FTC/FTA translation step receives an unsupported node."""


class EvaluationError(ReproError):
    """Raised when query evaluation fails (engine/plan mismatch, bad state)."""


class UnsupportedQueryError(EvaluationError):
    """Raised when a query is handed to an engine that cannot evaluate it.

    For example a query with negative predicates given to the PPRED engine,
    or a query using ``EVERY`` given to the NPRED engine.
    """


class ScoringError(ReproError):
    """Raised for scoring-model misuse (unknown model, missing statistics)."""


class StorageError(ReproError):
    """Raised when persisting or loading an index from disk fails."""


class ClusterError(ReproError):
    """Raised for sharding / scatter-gather misconfiguration or misuse."""


class WorkloadError(ReproError):
    """Raised when an experiment workload cannot be generated as requested."""
