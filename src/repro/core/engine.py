"""The high-level full-text search engine facade.

:class:`FullTextEngine` is the entry point a downstream user interacts with:
index a collection once, then run queries written in any of the paper's
languages (BOOL, DIST, COMP).  Classification, engine selection, evaluation
and (optional) scoring are delegated to the lower layers; results come back
as ranked :class:`~repro.core.results.SearchResults`.

Example
-------
::

    from repro import Collection, FullTextEngine

    collection = Collection.from_texts([
        "usability testing of efficient software",
        "software measures how well users achieve task completion",
    ])
    engine = FullTextEngine.from_collection(collection, scoring="tfidf")

    engine.search("'software' AND 'usability'")
    engine.search("dist('task', 'completion', 0)", language="dist")
    engine.search(
        "SOME p1 SOME p2 (p1 HAS 'efficient' AND p2 HAS 'task' "
        "AND ordered(p1, p2) AND distance(p1, p2, 10))"
    )
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.cache import DEFAULT_CACHE_SIZE, QueryCache
from repro.cluster.live import LiveShardedIndex
from repro.cluster.merge import MergedEvaluationResult
from repro.cluster.scatter import ScatterGatherExecutor
from repro.cluster.sharded_index import ShardedIndex
from repro.corpus.collection import Collection
from repro.exceptions import ReproError, ScoringError
from repro.index.inverted_index import InvertedIndex
from repro.segments.live_index import LiveIndex
from repro.languages import ast
from repro.model.predicates import Predicate, PredicateRegistry, default_registry
from repro.scoring.base import ScoringModel, get_model
from repro.engine.executor import AUTO, EvaluationResult, Executor
from repro.engine.topk import check_top_k
from repro.planner import DEFAULT_OPTIMIZER
from repro.core.query import Query, parse_query
from repro.core.results import SearchResult, SearchResults

#: Sentinel distinguishing "caller did not mention cache_size" from an
#: explicit value: an explicit request at shards=1 builds a one-shard
#: cluster so the cache actually applies.
_CACHE_UNSET = object()


class FullTextEngine:
    """Index + parser + evaluator + scorer behind one convenient API.

    The engine runs in one of two modes, chosen by the index it is given:

    * a plain :class:`InvertedIndex` -- the single-index path of the paper;
    * a :class:`~repro.cluster.sharded_index.ShardedIndex` -- queries fan out
      to every shard through the scatter-gather executor and the merged
      results (identical node ids and scores, see :mod:`repro.cluster`) come
      back with per-query cache/shard metadata.

    ``cache_size`` and ``max_workers`` belong to the cluster path and have
    no effect when the index is a plain :class:`InvertedIndex`; to get a
    cached engine without real sharding, use
    :meth:`from_collection` with an explicit ``cache_size`` (it builds a
    one-shard cluster) or pass a one-shard :class:`ShardedIndex` here.
    """

    def __init__(
        self,
        index: "InvertedIndex | ShardedIndex",
        registry: PredicateRegistry | None = None,
        scoring: "str | ScoringModel | None" = None,
        npred_orders: str = "minimal",
        access_mode: str = "paper",
        max_workers: int | None = None,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
        workers: str = "thread",
        optimizer: str = DEFAULT_OPTIMIZER,
    ) -> None:
        self.index = index
        self.registry = registry or default_registry()
        self.access_mode = access_mode
        self.optimizer = optimizer
        self._executor: Executor | None = None
        self._cluster: ScatterGatherExecutor | None = None
        self._scoring_spec = scoring
        self._scoring_generation: int | None = None
        if workers != "thread" and not isinstance(index, ShardedIndex):
            raise ReproError(
                f"workers={workers!r} requires a sharded index; build the "
                f"engine with shards >= 1 via FullTextEngine.from_collection "
                f"or pass a ShardedIndex"
            )
        if isinstance(index, ShardedIndex):
            self._cluster = ScatterGatherExecutor(
                index,
                self.registry,
                scoring,
                npred_orders=npred_orders,
                access_mode=access_mode,
                max_workers=max_workers,
                cache_size=cache_size,
                workers=workers,
                optimizer=optimizer,
            )
            self._scoring = None
        else:
            self._scoring = self._resolve_scoring(scoring)
            self._executor = Executor(
                index,
                self.registry,
                self.scoring,
                npred_orders=npred_orders,
                access_mode=access_mode,
                optimizer=optimizer,
            )
            if isinstance(index, LiveIndex):
                self._scoring_generation = index.generation

    # -------------------------------------------------------------- builders
    @classmethod
    def from_collection(
        cls,
        collection: Collection,
        registry: PredicateRegistry | None = None,
        scoring: "str | ScoringModel | None" = None,
        access_mode: str = "paper",
        shards: int = 1,
        partitioner: str = "hash",
        max_workers: int | None = None,
        cache_size=_CACHE_UNSET,
        live: bool = False,
        live_dir=None,
        flush_threshold: int | None = None,
        workers: str = "thread",
        optimizer: str = DEFAULT_OPTIMIZER,
    ) -> "FullTextEngine":
        """Build an engine by indexing ``collection``.

        With ``shards > 1`` the collection is partitioned (see
        ``partitioner``: ``"hash"``, ``"round-robin"`` or
        ``"metadata:<key>"``) and every search runs scatter-gather across the
        shards with an LRU result cache of ``cache_size`` entries
        (``cache_size=None`` disables caching).

        With ``live=True`` the index is built on the log-structured segment
        subsystem (:mod:`repro.segments`) and the engine accepts
        :meth:`add_document` / :meth:`update_document` /
        :meth:`delete_document` while serving queries.  ``live_dir`` adds
        WAL + segment-file persistence; ``flush_threshold`` bounds the
        memtable (documents per segment seal).

        Caching lives in the cluster layer, so *explicitly* requesting a
        cache at ``shards=1`` builds a one-shard cluster (the sequential
        fallback, identical results) instead of silently dropping the
        request -- the shape a cached long-running server such as
        ``repro serve`` uses.  Left unspecified, ``shards=1`` stays the
        plain single-index path.

        ``workers="process"`` fans each search out to a pool of worker
        *processes* (one per shard) instead of threads: per-shard evaluation
        escapes the GIL, at the cost of spilling the shards to packed
        segment files the workers ``mmap``.  It requires a static (non-live)
        index; results stay bit-identical to the thread path.  At
        ``shards=1`` it still builds a one-shard cluster so the process
        pool applies.

        ``optimizer`` selects the planning layer's mode: ``"on"`` plans
        every query with the statistics-driven cost model, ``"static"``
        (the default) builds plan artifacts but defers every choice to the
        builtin heuristics, ``"off"`` disables planning entirely.  Results
        are pinned bit-identical across all three modes.
        """
        requested_cache = (
            DEFAULT_CACHE_SIZE if cache_size is _CACHE_UNSET else cache_size
        )
        if not requested_cache:  # 0 disables caching, like the CLI flag
            requested_cache = None
        wants_cluster = (
            shards > 1
            or workers != "thread"
            or (cache_size is not _CACHE_UNSET and requested_cache is not None)
        )
        live_options = {}
        if flush_threshold is not None:
            live_options["flush_threshold"] = flush_threshold
        if wants_cluster:
            if live:
                index: "InvertedIndex | ShardedIndex" = LiveShardedIndex(
                    collection, shards, partitioner,
                    directory=live_dir, **live_options,
                )
            else:
                index = ShardedIndex(collection, shards, partitioner)
        elif live:
            index = LiveIndex(collection, directory=live_dir, **live_options)
        else:
            index = InvertedIndex(collection)
        return cls(
            index,
            registry,
            scoring,
            access_mode=access_mode,
            max_workers=max_workers,
            cache_size=requested_cache,
            workers=workers,
            optimizer=optimizer,
        )

    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        scoring: "str | ScoringModel | None" = None,
        access_mode: str = "paper",
        shards: int = 1,
    ) -> "FullTextEngine":
        """Build an engine straight from raw text strings (one node each)."""
        return cls.from_collection(
            Collection.from_texts(texts),
            scoring=scoring,
            access_mode=access_mode,
            shards=shards,
        )

    # ------------------------------------------------------------------ API
    @property
    def scoring(self) -> ScoringModel | None:
        """The active scoring model.

        On the sharded path this delegates to the cluster (shard 0's model),
        which re-binds to fresh aggregated statistics after incremental
        updates -- a snapshot taken at construction would go stale.
        """
        if self._cluster is not None:
            return self._cluster.scoring
        return self._scoring

    @property
    def collection(self) -> Collection:
        """The indexed collection (the search context)."""
        return self.index.collection

    @property
    def is_sharded(self) -> bool:
        """Whether searches run scatter-gather over a sharded index."""
        return self._cluster is not None

    @property
    def is_live(self) -> bool:
        """Whether the index accepts updates and deletes while serving."""
        return isinstance(self.index, (LiveIndex, LiveShardedIndex))

    @property
    def num_shards(self) -> int:
        """Number of index shards (1 for the single-index path)."""
        return self._cluster.num_shards if self._cluster is not None else 1

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard size figures (a single pseudo-shard when unsharded)."""
        if isinstance(self.index, ShardedIndex):
            return self.index.shard_stats()
        from repro.cluster.sharded_index import Shard

        return [Shard(0, self.index).describe()]

    def cache_stats(self) -> dict[str, float]:
        """Result-cache statistics (all zeros on the single-index path)."""
        if self._cluster is not None:
            return self._cluster.cache_stats()
        return QueryCache.empty_stats()

    def optimizer_stats(self) -> dict:
        """The planning layer's mode plus planner counters when it is live.

        Always carries ``"mode"``; with the optimizer ``"on"`` it adds the
        planner summary (plans built, memo hits, learned corrections,
        give-ups, feedback generation).
        """
        if self._cluster is not None:
            return self._cluster.optimizer_stats()
        payload: dict = {"mode": self.optimizer}
        if self._executor is not None and self._executor.planner is not None:
            payload.update(self._executor.planner.summary())
        return payload

    def stats(self) -> dict:
        """Consolidated engine-side statistics for serving surfaces.

        One dictionary with everything the CLI spreads over ``shard-stats``,
        ``segment-stats`` and the serve REPL's ``:stats``: per-shard sizes,
        cache hit rates, live segment/WAL state and (in process-scatter
        mode) the packed spool files.  ``repro serve-http`` returns this
        verbatim under the ``"engine"`` key of ``/stats``.
        """
        stats = {
            "collection": self.collection.name,
            "nodes": self.index.node_count(),
            "shards": self.num_shards,
            "live": self.is_live,
            "access_mode": self.access_mode,
            "workers": (
                self._cluster.workers if self._cluster is not None else "thread"
            ),
            "cache": self.cache_stats(),
            "optimizer": self.optimizer_stats(),
            "shard_stats": self.shard_stats(),
            "memory": self.index.memory_footprint(),
        }
        if self.is_live:
            stats["segments"] = self.segment_stats()
            if hasattr(self.index, "wal_stats"):
                stats["wal"] = self.index.wal_stats()
        if self._cluster is not None:
            spool = self._cluster.spool_stats()
            if spool is not None:
                stats["spool"] = spool
        return stats

    def close(self) -> None:
        """Release the worker pool and close live-index resources.

        On a live index this stops background compaction and makes the WAL
        durable; on the cluster path it additionally shuts the scatter
        worker pool down.  Idempotent.
        """
        if self._cluster is not None:
            self._cluster.close()
        if isinstance(self.index, (LiveIndex, LiveShardedIndex)):
            self.index.close()

    # -------------------------------------------------------------- mutation
    def add_document(self, text: str, metadata=None) -> int:
        """Tokenize and index a new document; returns its node id.

        Works on every index flavour: plain indexes append (the seed's
        append-only contract), live indexes route through the WAL + memtable
        write path.
        """
        return self.index.add_text(text, metadata=metadata)

    def update_document(self, node_id: int, text: str, metadata=None) -> None:
        """Replace a document's content in place (live indexes only)."""
        index = self._require_live("update")
        index.update_text(node_id, text, metadata=metadata)

    def delete_document(self, node_id: int) -> bool:
        """Delete a document (live indexes only); False if the id is unknown."""
        index = self._require_live("delete")
        return index.delete_node(node_id)

    def flush(self) -> None:
        """Seal the live memtable(s) into immutable segments (no-op unless live)."""
        if self.is_live:
            self.index.flush()

    def compact(self) -> dict[str, int]:
        """Fully compact the live index; returns the merge report."""
        if not self.is_live:
            return {"merges": 0, "segments_merged": 0}
        return self.index.compact()

    def segment_stats(self) -> list[dict[str, int]]:
        """Per-segment size rows of a live index ([] for static indexes)."""
        if not self.is_live:
            return []
        return self.index.segment_stats()

    def _require_live(self, operation: str):
        if not self.is_live:
            raise ReproError(
                f"cannot {operation} documents on a static index; build the "
                f"engine with live=True (FullTextEngine.from_collection) to "
                f"get the mutable write path"
            )
        return self.index

    def _refresh_scoring(self) -> None:
        """Re-bind the scoring model after live mutations (single path).

        Statistics (df / N / norms) change with every mutation; a model
        bound at construction would keep scoring against the old corpus.
        The cluster path refreshes itself through the sharded index's
        invalidation listeners; the single live path has no listeners, so
        the engine compares the index generation lazily before each search.
        """
        if (
            self._executor is None
            or self._scoring_spec is None
            or not isinstance(self.index, LiveIndex)
        ):
            return
        generation = self.index.generation
        if generation != self._scoring_generation:
            self._scoring = self._resolve_scoring(self._scoring_spec)
            self._executor.scoring = self._scoring
            self._scoring_generation = generation

    def register_predicate(self, predicate: Predicate) -> None:
        """Add a user-defined position predicate usable in COMP queries."""
        self.registry.register(predicate)

    def parse(self, text: str, language: str = "auto") -> Query:
        """Parse and classify a query without evaluating it."""
        return parse_query(text, language, self.registry)

    def search(
        self,
        query: "str | Query | ast.QueryNode",
        language: str = "auto",
        engine: str = AUTO,
        top_k: int | None = None,
        explain: bool = False,
        trace=None,
    ) -> SearchResults:
        """Run a search and return ranked results.

        Parameters
        ----------
        query:
            Query text, a pre-parsed :class:`Query`, or a surface AST node.
        language:
            ``"bool"``, ``"dist"``, ``"comp"`` or ``"auto"`` (only used when
            ``query`` is a string).
        engine:
            Force a specific evaluation algorithm (``"bool"``, ``"ppred"``,
            ``"npred"``, ``"comp"``); ``"auto"`` picks the cheapest engine for
            the query's class.
        top_k:
            Return only the best ``top_k`` results (all matches by default;
            must be ``>= 1`` when given).  The cut is pushed down into
            execution -- scoring models bound candidate scores so nodes that
            cannot reach the top ``k`` are never fully scored -- and the
            returned prefix is exactly the first ``top_k`` entries of the
            full ranking.
        explain:
            Attach an EXPLAIN ANALYZE payload (per-cursor operation counts,
            top-k collector statistics, cache provenance) to the result's
            ``metadata["explain"]``.  Purely observational: results are
            bit-identical to ``explain=False``.  On the cluster path the
            query cache is bypassed so every shard reports fresh counts.
        trace:
            Optional :class:`~repro.telemetry.trace.Span` receiving nested
            execution spans (``None``, the default, costs nothing).
        """
        check_top_k(top_k)
        parsed = self._as_query(query, language)
        if self._cluster is not None:
            outcome: EvaluationResult = self._cluster.execute(
                parsed.node, engine=engine, top_k=top_k,
                explain=explain, trace=trace,
            )
        else:
            self._refresh_scoring()
            outcome = self._executor.execute(
                parsed.node, engine=engine, top_k=top_k,
                explain=explain, trace=trace,
            )
        return self._build_results(parsed, outcome, top_k)

    def search_many(
        self,
        queries: Sequence["str | Query | ast.QueryNode"],
        language: str = "auto",
        engine: str = AUTO,
        top_k: int | None = None,
    ) -> list[SearchResults]:
        """Run a batch of searches, amortising per-query setup.

        All queries share one cursor factory and one parsed-plan cache (see
        :meth:`repro.engine.executor.Executor.execute_many`), which matters
        when serving many small queries against the same index: repeated
        query shapes skip re-planning entirely.
        """
        check_top_k(top_k)
        parsed_queries = [self._as_query(query, language) for query in queries]
        if self._cluster is not None:
            outcomes: Sequence[EvaluationResult] = self._cluster.execute_many(
                [parsed.node for parsed in parsed_queries],
                engine=engine,
                top_k=top_k,
            )
        else:
            self._refresh_scoring()
            outcomes = self._executor.execute_many(
                [parsed.node for parsed in parsed_queries],
                engine=engine,
                top_k=top_k,
            )
        return [
            self._build_results(parsed, outcome, top_k)
            for parsed, outcome in zip(parsed_queries, outcomes)
        ]

    def evaluate(
        self,
        query: "str | Query | ast.QueryNode",
        language: str = "auto",
        engine: str = AUTO,
    ) -> EvaluationResult:
        """Lower-level entry point returning the raw :class:`EvaluationResult`."""
        parsed = self._as_query(query, language)
        if self._cluster is not None:
            return self._cluster.execute(parsed.node, engine=engine)
        self._refresh_scoring()
        return self._executor.execute(parsed.node, engine=engine)

    def explain(
        self,
        query: "str | Query | ast.QueryNode",
        language: str = "auto",
        analyze: bool = False,
        engine: str = AUTO,
        top_k: int | None = None,
    ) -> dict:
        """Describe how a query would be run (class, engine, measures, calculus).

        With ``analyze=True`` the query is actually executed
        (``search(..., explain=True)``) and the static description gains an
        ``"analyze"`` key holding the EXPLAIN ANALYZE payload: the operator
        tree with per-cursor op counts, top-k collector statistics and --
        on the cluster path -- per-shard subtrees.
        """
        parsed = self._as_query(query, language)
        from repro.engine.executor import NATIVE_ENGINE

        description = {
            "text": parsed.text,
            "language_class": parsed.language_class.value,
            "engine": NATIVE_ENGINE[parsed.language_class],
            "measures": parsed.measures(),
            "calculus": parsed.to_calculus().to_text(),
        }
        if analyze:
            results = self.search(
                parsed, engine=engine, top_k=top_k, explain=True
            )
            description["analyze"] = results.metadata.get("explain")
        return description

    # ------------------------------------------------------------- internals
    def _resolve_scoring(
        self, scoring: "str | ScoringModel | None"
    ) -> ScoringModel | None:
        if scoring is None:
            return None
        if isinstance(scoring, ScoringModel):
            return scoring
        if isinstance(scoring, str):
            return get_model(scoring, self.index.statistics)
        raise ScoringError(
            "scoring must be None, a model name, or a ScoringModel instance"
        )

    def _preview(self, node_id: int) -> str:
        """The node's text preview, tolerant of a concurrent delete.

        On a live index a matched node can be deleted between evaluation
        (which correctly saw it, per snapshot isolation) and preview
        materialisation; the query result is still valid for its snapshot,
        so the preview degrades gracefully instead of failing the search.
        """
        node = self.collection.nodes.get(node_id)
        if node is None:
            return "(deleted)"
        return node.text_preview()

    def _as_query(self, query: "str | Query | ast.QueryNode", language: str) -> Query:
        if isinstance(query, Query):
            return query
        if isinstance(query, ast.QueryNode):
            from repro.languages.classify import classify_query

            return Query(
                text=query.to_text(),
                language=language,
                node=query,
                language_class=classify_query(query, self.registry),
            )
        return parse_query(query, language, self.registry)

    def _build_results(
        self, parsed: Query, outcome: EvaluationResult, top_k: int | None = None
    ) -> SearchResults:
        ranked = outcome.ranked()
        if top_k is not None:
            # Truncate before materialising previews: only the returned
            # results pay the per-node preview cost, not every match.
            ranked = ranked[:top_k]
        results = [
            SearchResult(
                node_id=node_id,
                score=score,
                preview=self._preview(node_id),
            )
            for node_id, score in ranked
        ]
        metadata = {}
        if isinstance(outcome, MergedEvaluationResult):
            metadata = {"shards": outcome.shard_count}
            if self._cluster is not None and self._cluster.cache is None:
                metadata["cache"] = "off"
            elif outcome.explain is not None:
                # Explained executions bypass the cache so every shard
                # reports fresh per-cursor counts.
                metadata["cache"] = "bypass"
            else:
                metadata["cache"] = "hit" if outcome.from_cache else "miss"
        if outcome.explain is not None:
            metadata["explain"] = outcome.explain
        return SearchResults(
            query_text=parsed.text,
            results=results,
            language_class=outcome.language_class,
            engine=outcome.engine,
            elapsed_seconds=outcome.elapsed_seconds,
            cursor_stats=outcome.cursor_stats,
            total_matches=len(outcome.node_ids),
            metadata=metadata,
            plan=outcome.plan,
        )
