"""The high-level full-text search engine facade.

:class:`FullTextEngine` is the entry point a downstream user interacts with:
index a collection once, then run queries written in any of the paper's
languages (BOOL, DIST, COMP).  Classification, engine selection, evaluation
and (optional) scoring are delegated to the lower layers; results come back
as ranked :class:`~repro.core.results.SearchResults`.

Example
-------
::

    from repro import Collection, FullTextEngine

    collection = Collection.from_texts([
        "usability testing of efficient software",
        "software measures how well users achieve task completion",
    ])
    engine = FullTextEngine.from_collection(collection, scoring="tfidf")

    engine.search("'software' AND 'usability'")
    engine.search("dist('task', 'completion', 0)", language="dist")
    engine.search(
        "SOME p1 SOME p2 (p1 HAS 'efficient' AND p2 HAS 'task' "
        "AND ordered(p1, p2) AND distance(p1, p2, 10))"
    )
"""

from __future__ import annotations

from typing import Sequence

from repro.corpus.collection import Collection
from repro.exceptions import ScoringError
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.model.predicates import Predicate, PredicateRegistry, default_registry
from repro.scoring.base import ScoringModel, get_model
from repro.engine.executor import AUTO, EvaluationResult, Executor
from repro.core.query import Query, parse_query
from repro.core.results import SearchResult, SearchResults


class FullTextEngine:
    """Index + parser + evaluator + scorer behind one convenient API."""

    def __init__(
        self,
        index: InvertedIndex,
        registry: PredicateRegistry | None = None,
        scoring: "str | ScoringModel | None" = None,
        npred_orders: str = "minimal",
        access_mode: str = "paper",
    ) -> None:
        self.index = index
        self.registry = registry or default_registry()
        self.scoring = self._resolve_scoring(scoring)
        self.access_mode = access_mode
        self._executor = Executor(
            self.index,
            self.registry,
            self.scoring,
            npred_orders=npred_orders,
            access_mode=access_mode,
        )

    # -------------------------------------------------------------- builders
    @classmethod
    def from_collection(
        cls,
        collection: Collection,
        registry: PredicateRegistry | None = None,
        scoring: "str | ScoringModel | None" = None,
        access_mode: str = "paper",
    ) -> "FullTextEngine":
        """Build an engine by indexing ``collection``."""
        return cls(InvertedIndex(collection), registry, scoring, access_mode=access_mode)

    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        scoring: "str | ScoringModel | None" = None,
        access_mode: str = "paper",
    ) -> "FullTextEngine":
        """Build an engine straight from raw text strings (one node each)."""
        return cls.from_collection(
            Collection.from_texts(texts), scoring=scoring, access_mode=access_mode
        )

    # ------------------------------------------------------------------ API
    @property
    def collection(self) -> Collection:
        """The indexed collection (the search context)."""
        return self.index.collection

    def register_predicate(self, predicate: Predicate) -> None:
        """Add a user-defined position predicate usable in COMP queries."""
        self.registry.register(predicate)

    def parse(self, text: str, language: str = "auto") -> Query:
        """Parse and classify a query without evaluating it."""
        return parse_query(text, language, self.registry)

    def search(
        self,
        query: "str | Query | ast.QueryNode",
        language: str = "auto",
        engine: str = AUTO,
        top_k: int | None = None,
    ) -> SearchResults:
        """Run a search and return ranked results.

        Parameters
        ----------
        query:
            Query text, a pre-parsed :class:`Query`, or a surface AST node.
        language:
            ``"bool"``, ``"dist"``, ``"comp"`` or ``"auto"`` (only used when
            ``query`` is a string).
        engine:
            Force a specific evaluation algorithm (``"bool"``, ``"ppred"``,
            ``"npred"``, ``"comp"``); ``"auto"`` picks the cheapest engine for
            the query's class.
        top_k:
            Return only the best ``top_k`` results (all matches by default).
        """
        parsed = self._as_query(query, language)
        outcome = self._executor.execute(parsed.node, engine=engine)
        results = self._build_results(parsed, outcome)
        return results.top(top_k) if top_k is not None else results

    def search_many(
        self,
        queries: Sequence["str | Query | ast.QueryNode"],
        language: str = "auto",
        engine: str = AUTO,
        top_k: int | None = None,
    ) -> list[SearchResults]:
        """Run a batch of searches, amortising per-query setup.

        All queries share one cursor factory and one parsed-plan cache (see
        :meth:`repro.engine.executor.Executor.execute_many`), which matters
        when serving many small queries against the same index: repeated
        query shapes skip re-planning entirely.
        """
        parsed_queries = [self._as_query(query, language) for query in queries]
        outcomes = self._executor.execute_many(
            [parsed.node for parsed in parsed_queries], engine=engine
        )
        batch = []
        for parsed, outcome in zip(parsed_queries, outcomes):
            results = self._build_results(parsed, outcome)
            batch.append(results.top(top_k) if top_k is not None else results)
        return batch

    def evaluate(
        self,
        query: "str | Query | ast.QueryNode",
        language: str = "auto",
        engine: str = AUTO,
    ) -> EvaluationResult:
        """Lower-level entry point returning the raw :class:`EvaluationResult`."""
        parsed = self._as_query(query, language)
        return self._executor.execute(parsed.node, engine=engine)

    def explain(self, query: "str | Query | ast.QueryNode", language: str = "auto") -> dict:
        """Describe how a query would be run (class, engine, measures, calculus)."""
        parsed = self._as_query(query, language)
        from repro.engine.executor import NATIVE_ENGINE

        return {
            "text": parsed.text,
            "language_class": parsed.language_class.value,
            "engine": NATIVE_ENGINE[parsed.language_class],
            "measures": parsed.measures(),
            "calculus": parsed.to_calculus().to_text(),
        }

    # ------------------------------------------------------------- internals
    def _resolve_scoring(
        self, scoring: "str | ScoringModel | None"
    ) -> ScoringModel | None:
        if scoring is None:
            return None
        if isinstance(scoring, ScoringModel):
            return scoring
        if isinstance(scoring, str):
            return get_model(scoring, self.index.statistics)
        raise ScoringError(
            "scoring must be None, a model name, or a ScoringModel instance"
        )

    def _as_query(self, query: "str | Query | ast.QueryNode", language: str) -> Query:
        if isinstance(query, Query):
            return query
        if isinstance(query, ast.QueryNode):
            from repro.languages.classify import classify_query

            return Query(
                text=query.to_text(),
                language=language,
                node=query,
                language_class=classify_query(query, self.registry),
            )
        return parse_query(query, language, self.registry)

    def _build_results(self, parsed: Query, outcome: EvaluationResult) -> SearchResults:
        ranked = outcome.ranked()
        results = [
            SearchResult(
                node_id=node_id,
                score=score,
                preview=self.collection.get(node_id).text_preview(),
            )
            for node_id, score in ranked
        ]
        return SearchResults(
            query_text=parsed.text,
            results=results,
            language_class=outcome.language_class,
            engine=outcome.engine,
            elapsed_seconds=outcome.elapsed_seconds,
            cursor_stats=outcome.cursor_stats,
            total_matches=len(outcome.node_ids),
        )
