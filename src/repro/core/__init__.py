"""High-level public API: the full-text engine facade, queries, results."""

from repro.core.engine import FullTextEngine
from repro.core.query import Query, parse_query
from repro.core.results import SearchResult, SearchResults

__all__ = [
    "FullTextEngine",
    "Query",
    "parse_query",
    "SearchResult",
    "SearchResults",
]
