"""Search results returned by the high-level engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.index.cursor import CursorStats
from repro.languages.classify import LanguageClass


@dataclass(frozen=True)
class SearchResult:
    """One matching context node."""

    node_id: int
    score: float = 0.0
    preview: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SearchResult(node={self.node_id}, score={self.score:.4f})"


@dataclass
class SearchResults:
    """The ranked answer to one search, plus evaluation metadata."""

    query_text: str
    results: list[SearchResult]
    language_class: LanguageClass
    engine: str
    elapsed_seconds: float
    cursor_stats: CursorStats | None = None
    total_matches: int = 0
    metadata: dict = field(default_factory=dict)
    #: Physical-plan provenance payload
    #: (:meth:`~repro.planner.physical.PhysicalPlan.describe`) when the
    #: planning layer produced a plan; ``None`` with the optimizer off.
    plan: dict | None = None

    def __post_init__(self) -> None:
        if not self.total_matches:
            self.total_matches = len(self.results)

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def __bool__(self) -> bool:
        return bool(self.results)

    @property
    def node_ids(self) -> list[int]:
        """Node ids of the returned results, in rank order."""
        return [result.node_id for result in self.results]

    @property
    def scores(self) -> dict[int, float]:
        """Node id -> score for the returned results."""
        return {result.node_id: result.score for result in self.results}

    def top(self, count: int) -> "SearchResults":
        """A copy limited to the ``count`` best results."""
        return SearchResults(
            query_text=self.query_text,
            results=self.results[:count],
            language_class=self.language_class,
            engine=self.engine,
            elapsed_seconds=self.elapsed_seconds,
            cursor_stats=self.cursor_stats,
            total_matches=self.total_matches,
            metadata=dict(self.metadata),
            plan=self.plan,
        )

    def summary(self) -> str:
        """One-line human-readable summary (used by the examples)."""
        return (
            f"{self.total_matches} match(es) for {self.query_text!r} "
            f"[{self.language_class.value} via {self.engine}, "
            f"{self.elapsed_seconds * 1000:.2f} ms]"
        )
