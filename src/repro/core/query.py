"""Parsed query objects: surface text + AST + classification + calculus form."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QuerySyntaxError
from repro.languages import ast
from repro.languages.classify import LanguageClass, classify_query
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model.calculus import CalculusQuery
from repro.model.predicates import PredicateRegistry, default_registry

#: Accepted language names for :func:`parse_query`.
LANGUAGE_LEVELS = {
    "bool": LanguageLevel.BOOL,
    "dist": LanguageLevel.DIST,
    "comp": LanguageLevel.COMP,
    "auto": LanguageLevel.COMP,
}


@dataclass
class Query:
    """A parsed, classified query ready for execution."""

    text: str
    language: str
    node: ast.QueryNode
    language_class: LanguageClass

    def to_calculus(self) -> CalculusQuery:
        """The calculus form of the query (Section 4 semantics)."""
        return self.node.to_calculus_query()

    def measures(self) -> dict[str, int]:
        """The paper's query parameters: ``toks_Q``, ``preds_Q``, ``ops_Q``."""
        return ast.query_measures(self.node)

    def tokens(self) -> set[str]:
        """Every token literal mentioned in the query."""
        return ast.query_tokens(self.node)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Query({self.text!r}, language={self.language}, "
            f"class={self.language_class.value})"
        )


def parse_query(
    text: str,
    language: str = "auto",
    registry: PredicateRegistry | None = None,
) -> Query:
    """Parse ``text`` in the requested language and classify it.

    ``language`` is one of ``"bool"``, ``"dist"``, ``"comp"`` or ``"auto"``
    (the default): ``auto`` parses with the full COMP grammar, so any query of
    any of the three languages is accepted, and the classifier then reports
    the cheapest class the query belongs to.
    """
    registry = registry or default_registry()
    try:
        level = LANGUAGE_LEVELS[language.lower()]
    except KeyError as exc:
        raise QuerySyntaxError(
            f"unknown language {language!r}; expected one of "
            f"{sorted(LANGUAGE_LEVELS)}"
        ) from exc
    parser = QueryParser(level, registry)
    node = parser.parse_closed(text)
    return Query(
        text=text,
        language=language.lower(),
        node=node,
        language_class=classify_query(node, registry),
    )
