"""Merging per-shard evaluation results into one global answer.

Because every context node lives in exactly one shard and the paper's
semantics are per-node, the global answer to any BOOL / PPRED / NPRED / COMP
query is simply the disjoint union of the per-shard answers.  What this
module adds on top of the union is *ordering*:

* matching node ids are k-way merged from the shards' ascending id streams
  (``heapq.merge``), reproducing the single-index engines' output order;
* ranked results are k-way merged from the shards' already-ranked streams by
  ``(-score, node_id)`` -- the tie-break every scoring backend in
  :mod:`repro.scoring` uses -- with an optional ``top_k`` cut-off that stops
  the merge after ``k`` items instead of materialising the full ranking.

Scores need no adjustment here: the shard executors score against the
globally-aggregated statistics (:mod:`repro.cluster.stats`), so per-shard
scores already *are* global scores.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.engine.executor import EvaluationResult
from repro.engine.topk import check_top_k
from repro.index.cursor import CursorStats
from repro.languages.classify import LanguageClass


@dataclass
class MergedEvaluationResult(EvaluationResult):
    """An :class:`EvaluationResult` assembled from per-shard results.

    ``node_ids`` covers *all* matches (so ``total_matches`` stays exact);
    :meth:`ranked` returns the pre-merged ranking, truncated to the
    ``ranked_limit`` the merge was asked for (``None`` = full).  When the
    shards themselves executed with top-k pushdown, ``scores`` holds only
    the scores the shards actually computed -- the ranking prefix is still
    exact, because every globally-top-k node is in its own shard's top-k.
    """

    shard_count: int = 0
    from_cache: bool = False
    _ranked: list[tuple[int, float]] = field(default_factory=list)

    def ranked(self) -> list[tuple[int, float]]:
        return self._ranked


def merge_cursor_stats(per_shard: "list[CursorStats | None]") -> CursorStats | None:
    """Sum shard cursor counters; ``None`` when no shard reported any."""
    reported = [stats for stats in per_shard if stats is not None]
    if not reported:
        return None
    total = CursorStats()
    for stats in reported:
        total.merge(stats)
    return total


def merge_ranked(
    ranked_streams: "list[list[tuple[int, float]]]", top_k: int | None = None
) -> list[tuple[int, float]]:
    """Heap-based k-way merge of per-shard rankings.

    Each input stream must already be sorted by ``(-score, node_id)`` (the
    contract of :meth:`EvaluationResult.ranked`).  With ``top_k`` the merge
    stops after ``k`` items, so the cost is ``O(k log s)`` instead of
    ``O(n log s)`` -- the scatter-gather path's answer to top-k queries.

    ``top_k`` must be ``None`` or ``>= 1`` -- the same validation every
    other entry point applies (a non-positive ``k`` used to return an empty
    ranking here while the single-index slice treated it differently).
    """
    check_top_k(top_k)
    merged = heapq.merge(
        *ranked_streams, key=lambda pair: (-pair[1], pair[0])
    )
    if top_k is None:
        return list(merged)
    out = []
    for pair in merged:
        out.append(pair)
        if len(out) >= top_k:
            break
    return out


def merge_shard_results(
    per_shard: "list[EvaluationResult]",
    elapsed_seconds: float,
    top_k: int | None = None,
) -> MergedEvaluationResult:
    """Combine per-shard :class:`EvaluationResult` objects into one.

    ``per_shard`` must be in shard order (the scatter layer guarantees it),
    which keeps the merge deterministic.  ``elapsed_seconds`` is the
    scatter-gather wall clock, not the sum of shard times -- with a worker
    pool the shards overlap.
    """
    if not per_shard:
        raise ValueError("cannot merge zero shard results")
    node_ids = list(heapq.merge(*(result.node_ids for result in per_shard)))
    scores: dict[int, float] = {}
    for result in per_shard:
        scores.update(result.scores)
    ranked = merge_ranked([result.ranked() for result in per_shard], top_k)
    language_class: LanguageClass = per_shard[0].language_class
    return MergedEvaluationResult(
        node_ids=node_ids,
        language_class=language_class,
        engine=per_shard[0].engine,
        elapsed_seconds=elapsed_seconds,
        scores=scores,
        cursor_stats=merge_cursor_stats([r.cursor_stats for r in per_shard]),
        ranked_limit=top_k,
        # Every shard executed the same coordinator-shipped plan, so shard
        # 0's provenance payload speaks for the whole scatter.
        plan=per_shard[0].plan,
        shard_count=len(per_shard),
        _ranked=ranked,
    )
