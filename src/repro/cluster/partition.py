"""Pluggable partitioners: how a collection is split across shards.

A partitioner maps every :class:`~repro.corpus.document.ContextNode` to a
shard number in ``[0, num_shards)``.  The assignment must be deterministic
for a given collection so that a sharded index can be rebuilt identically
(e.g. after a storage round-trip) and so that incremental appends land on a
predictable shard.

Three strategies are provided:

* ``hash`` -- multiplicative hash of the node id.  Consecutive ids spread
  across shards without clustering, and the placement of a node never depends
  on what else is in the collection (stable under appends).
* ``round-robin`` -- nodes go to shards in arrival order (``i % num_shards``).
  Gives the tightest balance but placement depends on insertion order.
* ``metadata:<key>`` -- hash of a metadata value, so all nodes sharing the
  value (e.g. a tenant or source file) land on the same shard.  Nodes missing
  the key fall back to the hash strategy.
"""

from __future__ import annotations

import zlib
from typing import Callable, Iterable

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import ClusterError

#: Knuth's multiplicative constant; spreads consecutive node ids.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF


class Partitioner:
    """Base class of shard-assignment strategies."""

    name: str = "partitioner"

    def assign(self, node: ContextNode, ordinal: int, num_shards: int) -> int:
        """Shard number for ``node``; ``ordinal`` is its arrival position."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable name used by ``repro shard-stats``."""
        return self.name


class HashPartitioner(Partitioner):
    """Multiplicative hash of the node id (the default strategy)."""

    name = "hash"

    def assign(self, node: ContextNode, ordinal: int, num_shards: int) -> int:
        return ((node.node_id * _HASH_MULTIPLIER) & _HASH_MASK) % num_shards


class RoundRobinPartitioner(Partitioner):
    """Nodes go to shards in arrival order; tightest possible balance."""

    name = "round-robin"

    def assign(self, node: ContextNode, ordinal: int, num_shards: int) -> int:
        return ordinal % num_shards


class MetadataPartitioner(Partitioner):
    """Co-locate nodes sharing a metadata value on one shard."""

    name = "metadata"

    def __init__(self, key: str) -> None:
        if not key:
            raise ClusterError("the metadata partitioner needs a non-empty key")
        self.key = key
        self._fallback = HashPartitioner()

    def assign(self, node: ContextNode, ordinal: int, num_shards: int) -> int:
        value = node.metadata.get(self.key)
        if value is None:
            return self._fallback.assign(node, ordinal, num_shards)
        return zlib.crc32(str(value).encode("utf-8")) % num_shards

    def describe(self) -> str:
        return f"metadata:{self.key}"


_PARTITIONER_FACTORIES: dict[str, Callable[[], Partitioner]] = {
    "hash": HashPartitioner,
    "round-robin": RoundRobinPartitioner,
}


def make_partitioner(spec: "str | Partitioner") -> Partitioner:
    """Resolve a partitioner from a name (``hash``, ``round-robin``,
    ``metadata:<key>``) or pass an instance through unchanged."""
    if isinstance(spec, Partitioner):
        return spec
    if not isinstance(spec, str):
        raise ClusterError(
            f"partitioner must be a name or a Partitioner, got {type(spec).__name__}"
        )
    name = spec.lower()
    if name.startswith("metadata:"):
        return MetadataPartitioner(spec.split(":", 1)[1])
    factory = _PARTITIONER_FACTORIES.get(name)
    if factory is None:
        raise ClusterError(
            f"unknown partitioner {spec!r}; expected one of "
            f"{sorted(_PARTITIONER_FACTORIES)} or 'metadata:<key>'"
        )
    return factory()


def partition_collection(
    collection: Collection,
    num_shards: int,
    partitioner: "str | Partitioner" = "hash",
) -> tuple[list[Collection], dict[int, int]]:
    """Split ``collection`` into ``num_shards`` sub-collections.

    Returns ``(shard_collections, assignment)`` where ``assignment`` maps each
    node id to its shard.  Every shard collection keeps the original node ids,
    so per-shard evaluation results can be merged without translation; empty
    shards are legal (a shard simply matches nothing).
    """
    if num_shards < 1:
        raise ClusterError(f"need at least one shard, got {num_shards}")
    partitioner = make_partitioner(partitioner)
    buckets: list[dict[int, ContextNode]] = [{} for _ in range(num_shards)]
    assignment: dict[int, int] = {}
    for ordinal, node in enumerate(collection):
        shard = partitioner.assign(node, ordinal, num_shards)
        if not 0 <= shard < num_shards:
            raise ClusterError(
                f"partitioner {partitioner.describe()!r} assigned node "
                f"{node.node_id} to shard {shard} of {num_shards}"
            )
        buckets[shard][node.node_id] = node
        assignment[node.node_id] = shard
    shards = [
        Collection(bucket, f"{collection.name}-shard{shard_id}")
        for shard_id, bucket in enumerate(buckets)
    ]
    return shards, assignment


def balance_report(shard_sizes: Iterable[int]) -> dict[str, float]:
    """Balance metrics of a shard layout (used by ``repro shard-stats``)."""
    sizes = list(shard_sizes)
    if not sizes:
        return {"shards": 0, "min": 0, "max": 0, "mean": 0.0, "imbalance": 0.0}
    mean = sum(sizes) / len(sizes)
    return {
        "shards": len(sizes),
        "min": min(sizes),
        "max": max(sizes),
        "mean": mean,
        # max/mean - 1: 0.0 is a perfectly even layout.
        "imbalance": (max(sizes) / mean - 1.0) if mean else 0.0,
    }
