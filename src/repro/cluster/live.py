"""A sharded index whose shards are live (mutable) indexes.

:class:`LiveShardedIndex` combines the cluster layer with the live-indexing
subsystem: every shard runs its own
:class:`~repro.segments.live_index.LiveIndex` (private WAL, memtable,
sealed segments and compaction), and the cluster facade routes writes --
adds through the partitioner, updates and deletes through the global
``node_id -> shard`` assignment -- while the scatter-gather executor keeps
fanning queries out per shard unchanged (each shard executor snapshots its
shard per query).

Cache invalidation is *generation-keyed* instead of wholesale: the index
carries a mutation generation that changes exactly when results may change
(adds / updates / deletes, but **not** flushes or compactions), and the
query cache includes it in every key.  Stale entries simply become
unreachable and age out of the LRU; results cached before an unrelated
maintenance operation stay warm.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator

from repro.cluster.partition import Partitioner
from repro.cluster.sharded_index import ShardedIndex
from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import ClusterError
from repro.segments.live_index import LiveIndex
from repro.segments.manager import (
    DEFAULT_COMPACTION_FANOUT,
    DEFAULT_FLUSH_THRESHOLD,
)
from repro.segments.stats import LiveStatistics
from repro.segments.wal import DEFAULT_SYNC_EVERY


class LiveShardedIndex(ShardedIndex):
    """``N`` live-index shards behind the sharded-index facade."""

    def __init__(
        self,
        collection: Collection,
        num_shards: int,
        partitioner: "str | Partitioner" = "hash",
        *,
        directory: "Path | str | None" = None,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        compaction_fanout: int = DEFAULT_COMPACTION_FANOUT,
        sync_every: int = DEFAULT_SYNC_EVERY,
        auto_compact: bool = False,
    ) -> None:
        self._directory = Path(directory) if directory is not None else None
        self._live_options = {
            "flush_threshold": flush_threshold,
            "compaction_fanout": compaction_fanout,
            "sync_every": sync_every,
            "auto_compact": auto_compact,
        }
        self._generation = 0
        self._write_lock = threading.RLock()
        self._check_persisted_layout(num_shards)
        super().__init__(collection, num_shards, partitioner)
        self._adopt_restored_shards()

    def _check_persisted_layout(self, num_shards: int) -> None:
        """Refuse to open a persisted cluster with the wrong shard count.

        Opening a 4-shard directory as 2 shards would silently load half the
        corpus (and then rewrite manifests for the divergent view, orphaning
        the rest); the shard count is part of the on-disk layout, so a
        mismatch is an error, not a reinterpretation.
        """
        if self._directory is None or not self._directory.exists():
            return
        persisted = sorted(
            path.name
            for path in self._directory.glob("shard-*")
            if path.is_dir() and (path / "MANIFEST.json").exists()
        )
        if persisted and len(persisted) != num_shards:
            from repro.exceptions import StorageError

            raise StorageError(
                f"{self._directory} holds a {len(persisted)}-shard live "
                f"cluster ({', '.join(persisted)}); reopen it with "
                f"num_shards={len(persisted)}, not {num_shards}"
            )

    def _build_shard_index(self, shard_collection: Collection, shard_id: int):
        directory = (
            self._directory / f"shard-{shard_id:02d}"
            if self._directory is not None
            else None
        )
        return LiveIndex(
            shard_collection if len(shard_collection) else None,
            directory=directory,
            **self._live_options,
        )

    def _adopt_restored_shards(self) -> None:
        """Fold shard state restored from disk into the global view.

        Reopening a persisted cluster starts from an empty collection; each
        shard's :class:`LiveIndex` then restores its own documents, which
        must be reflected in the global collection and assignment map.
        """
        for shard in self.shards:
            for node in shard.index.collection:
                if node.node_id in self.collection:
                    continue
                self.collection.add(node)
                self._assignment[node.node_id] = shard.shard_id
                if self._max_node_id is None or node.node_id > self._max_node_id:
                    self._max_node_id = node.node_id

    @classmethod
    def open(
        cls,
        directory: "Path | str",
        num_shards: int,
        partitioner: "str | Partitioner" = "hash",
        **kwargs,
    ) -> "LiveShardedIndex":
        """Reopen a persisted live cluster (``num_shards`` must match)."""
        return cls(
            Collection({}, "live-cluster"),
            num_shards,
            partitioner,
            directory=directory,
            **kwargs,
        )

    # ---------------------------------------------------- incremental updates
    def add_node(self, node: ContextNode) -> None:
        with self._write_lock:
            super().add_node(node)

    def update_node(self, node: ContextNode) -> None:
        """Replace a live document's content on whichever shard holds it."""
        with self._write_lock:
            shard_id = self.shard_of(node.node_id)
            self.shards[shard_id].index.update_node(node)
            self.collection.replace(node)
            self._statistics = None
            self._notify_invalidation()

    def update_text(self, node_id: int, text: str, tokenizer=None, metadata=None) -> None:
        node = ContextNode.from_text(node_id, text, tokenizer, metadata=metadata)
        self.update_node(node)

    def delete_node(self, node_id: int) -> bool:
        """Delete a document; returns False when the id is not live."""
        with self._write_lock:
            shard_id = self._assignment.get(node_id)
            if shard_id is None:
                return False
            if not self.shards[shard_id].index.delete_node(node_id):
                raise ClusterError(
                    f"node {node_id} assigned to shard {shard_id} but not live there"
                )
            self.collection.remove(node_id)
            del self._assignment[node_id]
            self._statistics = None
            self._notify_invalidation()
            return True

    def _notify_invalidation(self) -> None:
        self._generation += 1
        super()._notify_invalidation()

    # ------------------------------------------------------------- accessors
    def cache_generation(self) -> int:
        """The mutation generation result caches key their entries on."""
        return self._generation

    @property
    def statistics(self) -> LiveStatistics:
        """Exact survivor-based global statistics (df summed over shards).

        Rebuilt under the write lock so the scan cannot interleave with a
        routed mutation; the resulting object freezes its own document map,
        so readers keep using it safely after the lock is released.
        """
        with self._write_lock:
            if self._statistics is None:
                self._statistics = LiveStatistics(
                    self.collection, self._chained_posting_lists
                )
            return self._statistics

    def _chained_posting_lists(self) -> Iterator:
        for shard in self.shards:
            yield from shard.index.posting_lists()

    # ----------------------------------------------------------- maintenance
    def flush(self) -> int:
        """Seal every shard's memtable; returns the number of new segments."""
        return sum(
            1 for shard in self.shards if shard.index.flush() is not None
        )

    def compact(self) -> dict[str, int]:
        """Fully compact every shard; merged per-shard reports summed."""
        totals = {"merges": 0, "segments_merged": 0}
        for shard in self.shards:
            report = shard.index.compact()
            for key in totals:
                totals[key] += report[key]
        return totals

    def maybe_compact(self) -> dict[str, int]:
        """One tiered-compaction round on every shard."""
        totals = {"merges": 0, "segments_merged": 0}
        for shard in self.shards:
            report = shard.index.maybe_compact()
            for key in totals:
                totals[key] += report[key]
        return totals

    def start_auto_compaction(self, interval: float = 0.05) -> None:
        for shard in self.shards:
            shard.index.start_auto_compaction(interval)

    def stop_auto_compaction(self) -> None:
        for shard in self.shards:
            shard.index.stop_auto_compaction()

    def close(self) -> None:
        """Close every shard (stop compactors, make the WALs durable)."""
        for shard in self.shards:
            shard.index.close()

    def segment_stats(self) -> list[dict[str, int]]:
        """Per-segment rows over all shards, tagged with their shard id."""
        rows = []
        for shard in self.shards:
            for row in shard.index.segment_stats():
                rows.append({"shard": shard.shard_id, **row})
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LiveShardedIndex(nodes={self.node_count()}, "
            f"shards={self.num_shards}, generation={self._generation})"
        )
