"""Sharded indexing and concurrent scatter-gather query execution.

This package scales the single-index engine stack horizontally while keeping
the paper's semantics and scores bit-identical:

* :mod:`repro.cluster.partition`     -- pluggable shard-assignment strategies
  (hash-by-node-id, round-robin, by-metadata-key);
* :mod:`repro.cluster.sharded_index` -- ``N`` private inverted indexes behind
  one collection-level facade, with incremental appends and invalidation
  notifications;
* :mod:`repro.cluster.stats`         -- globally-aggregated df / N / norm
  statistics so sharded scoring equals single-index scoring;
* :mod:`repro.cluster.scatter`       -- the worker-pool scatter-gather
  executor (sequential fallback for one shard);
* :mod:`repro.cluster.merge`         -- heap-based k-way merging of per-shard
  id streams and rankings;
* :mod:`repro.cluster.cache`         -- the LRU result cache keyed on
  normalized plan + access mode + scoring, serving smaller top-k requests
  from a warm wider entry (exact rankings are prefixes of each other);
* :mod:`repro.cluster.live`          -- live (mutable) shards: one
  :class:`~repro.segments.live_index.LiveIndex` per shard with routed
  updates/deletes and generation-keyed cache invalidation.

The high-level entry point is
``FullTextEngine.from_collection(collection, shards=N)``.
"""

from repro.cluster.cache import DEFAULT_CACHE_SIZE, QueryCache, make_cache_key
from repro.cluster.live import LiveShardedIndex
from repro.cluster.merge import (
    MergedEvaluationResult,
    merge_cursor_stats,
    merge_ranked,
    merge_shard_results,
)
from repro.cluster.partition import (
    HashPartitioner,
    MetadataPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    balance_report,
    make_partitioner,
    partition_collection,
)
from repro.cluster.process_scatter import FrozenStatistics, freeze_statistics
from repro.cluster.scatter import WORKER_MODES, ScatterGatherExecutor
from repro.cluster.sharded_index import Shard, ShardedIndex
from repro.cluster.stats import AggregatedStatistics

__all__ = [
    "AggregatedStatistics",
    "DEFAULT_CACHE_SIZE",
    "HashPartitioner",
    "LiveShardedIndex",
    "MergedEvaluationResult",
    "MetadataPartitioner",
    "Partitioner",
    "QueryCache",
    "RoundRobinPartitioner",
    "ScatterGatherExecutor",
    "Shard",
    "ShardedIndex",
    "balance_report",
    "make_cache_key",
    "make_partitioner",
    "merge_cursor_stats",
    "merge_ranked",
    "merge_shard_results",
    "partition_collection",
]
