"""Globally-aggregated statistics over a set of index shards.

Scoring must not change when a collection is sharded: TF-IDF and the
probabilistic model both depend on corpus-level quantities -- document
frequency ``df(t)``, the node count ``db_size``, per-node token counts and
the derived L2 norms.  Computing those per shard would skew every score by
the shard's local token distribution.

:class:`AggregatedStatistics` therefore sums the per-shard document
frequencies and node tables into one global view and presents it through the
exact :class:`~repro.index.statistics.IndexStatistics` interface, so the
unmodified scoring models (which each shard's executor instantiates against
this object) produce scores identical to a single monolithic index.  This is
the sharded counterpart of the paper's "precomputed score" story: the static
factors live with the data, the corpus-level factors live here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.corpus.collection import Collection
from repro.index.statistics import ComplexityParameters, IndexStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.index.inverted_index import InvertedIndex
    from repro.index.postings import PostingList


class _ShardedIndexView:
    """The minimal index surface the statistics/scoring layer touches.

    Scoring models reach through ``statistics._index`` for the collection
    (node content) and, for complexity parameters, the posting lists.  This
    proxy serves the *global* collection and chains the shards' lists.
    """

    def __init__(self, collection: Collection, shards: "list[InvertedIndex]") -> None:
        self.collection = collection
        self._shards = shards

    def posting_lists(self) -> "Iterator[PostingList]":
        for shard in self._shards:
            yield from shard.posting_lists()

    def max_positions(self, token: str) -> int:
        """Global ``max_occurrences(t)``: a max over the shards' lists.

        Exact, because every posting entry lives wholly inside one shard.
        """
        return max(
            (
                shard.posting_list(token).max_positions_per_entry()
                for shard in self._shards
            ),
            default=0,
        )

    def node_count(self) -> int:
        return len(self.collection)


class AggregatedStatistics(IndexStatistics):
    """Corpus statistics summed over every shard of a sharded index.

    Document frequencies add up exactly (a node lives in precisely one
    shard), node-level tables are disjoint unions, and the IDF / norm
    formulae inherited from :class:`IndexStatistics` then evaluate on the
    global quantities -- which is what makes sharded scores bit-equal to
    single-index scores.
    """

    def __init__(
        self, shard_indexes: "list[InvertedIndex]", collection: Collection
    ) -> None:
        # Deliberately no super().__init__: the parent derives its tables by
        # scanning one index; here they are aggregated from the shards.
        self._index = _ShardedIndexView(collection, list(shard_indexes))
        self._node_count = len(collection)
        document_frequency: dict[str, int] = {}
        unique_tokens: dict[int, int] = {}
        node_lengths: dict[int, int] = {}
        for shard in shard_indexes:
            for posting_list in shard.posting_lists():
                document_frequency[posting_list.token] = (
                    document_frequency.get(posting_list.token, 0)
                    + posting_list.document_frequency()
                )
        # The node tables come from the global collection directly -- it is
        # the disjoint union of the shard collections, in one ordered pass.
        for node in collection:
            unique_tokens[node.node_id] = node.unique_token_count()
            node_lengths[node.node_id] = len(node)
        self._document_frequency = document_frequency
        self._unique_tokens = unique_tokens
        self._node_lengths = node_lengths
        self._max_occurrences = {}
        self._idf_cache = {}

    def _compute_max_occurrences(self, token: str) -> int:
        return self._index.max_positions(token)

    def complexity_parameters(self) -> ComplexityParameters:
        """Global complexity parameters of the sharded corpus.

        ``entries_per_token`` is the global document frequency (per-shard
        maxima would undercount a token split across shards);
        ``pos_per_entry`` is a max over shards, which is exact because every
        entry lives wholly inside one shard.
        """
        pos_per_entry = [
            pl.max_positions_per_entry() for pl in self._index.posting_lists()
        ]
        return ComplexityParameters(
            cnodes=self._node_count,
            pos_per_cnode=max(self._node_lengths.values(), default=0),
            entries_per_token=max(self._document_frequency.values(), default=0),
            pos_per_entry=max(pos_per_entry, default=0),
        )
