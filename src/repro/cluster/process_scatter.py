"""Worker-process machinery behind ``ScatterGatherExecutor(workers="process")``.

The thread-pool scatter path is GIL-bound: per-shard evaluation is pure
Python, so threads interleave instead of running in parallel.  This module
supplies the pieces that let the scatter executor fan out to *processes*
instead:

* :func:`freeze_statistics` -- a picklable snapshot of the parent's
  aggregated statistics (df, N, per-node lengths/unique counts, **all**
  TF-IDF L2 norms and the full max-occurrences table).  Norms are computed
  in the *parent* process on the aggregated statistics object: their float
  summation iterates a ``set`` of token strings, whose order depends on the
  per-process string hash seed, so recomputing them in a worker could
  differ in the last ULP.  Shipping the parent's values keeps worker scores
  bit-identical to the thread path.
* :class:`_WorkerStatistics` -- an :class:`~repro.index.statistics.IndexStatistics`
  stand-in built from a frozen snapshot plus the worker's lazy shard
  collection; every scoring read (df, idf, norms, bounds) comes from the
  shipped tables.
* :func:`_init_worker` / :func:`run_shard_batch` -- the process-pool
  initializer and task function.  Each worker lazily opens its shard's
  packed v4 spill file via ``mmap`` (O(1) open; the pages are shared
  read-only with every sibling through the OS page cache), builds a
  shard-local :class:`~repro.engine.executor.Executor`, and evaluates the
  batch.  Queries travel as canonical query text (re-parsed with the
  default predicate registry) and answers come back as plain picklable
  :class:`~repro.engine.executor.EvaluationResult` objects holding only the
  exact best-k prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.engine.executor import Executor, EvaluationResult
from repro.index.packed_index import PackedInvertedIndex
from repro.index.statistics import IndexStatistics
from repro.model.predicates import default_registry
from repro.scoring.base import get_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.collection import Collection


@dataclass(frozen=True)
class FrozenStatistics:
    """A picklable snapshot of aggregated corpus statistics."""

    node_count: int
    document_frequency: dict[str, int]
    unique_tokens: dict[int, int]
    node_lengths: dict[int, int]
    node_norms: dict[int, float]
    max_occurrences: dict[str, int]


def freeze_statistics(
    statistics: IndexStatistics, *, with_norms: bool
) -> FrozenStatistics:
    """Snapshot ``statistics`` into picklable tables (computed in the parent).

    ``with_norms`` skips the L2-norm pass for scoring models that never read
    norms -- it is the only table whose computation touches every document.
    """
    vocabulary = sorted(statistics.vocabulary())
    node_ids = statistics.collection.node_ids()
    return FrozenStatistics(
        node_count=statistics.node_count,
        document_frequency={
            token: statistics.document_frequency(token) for token in vocabulary
        },
        unique_tokens={
            node_id: statistics.unique_token_count(node_id) for node_id in node_ids
        },
        node_lengths={
            node_id: statistics.node_length(node_id) for node_id in node_ids
        },
        node_norms=(
            {node_id: statistics.node_l2_norm(node_id) for node_id in node_ids}
            if with_norms
            else {}
        ),
        max_occurrences={
            token: statistics.max_occurrences(token) for token in vocabulary
        },
    )


class _WorkerStatistics(IndexStatistics):
    """Statistics served from a frozen snapshot inside a worker process.

    Mirrors the trick of :class:`~repro.cluster.stats.AggregatedStatistics`:
    skip the scanning constructor and fill the base-class tables directly.
    ``node_l2_norm`` returns the parent-computed value verbatim (see module
    docstring); a missing id is a logic error and raises ``KeyError`` loudly
    rather than silently recomputing a possibly ULP-different norm.
    """

    def __init__(
        self, frozen: FrozenStatistics, collection: "Collection"
    ) -> None:
        self._index = None
        self._worker_collection = collection
        self._node_count = frozen.node_count
        self._document_frequency = dict(frozen.document_frequency)
        self._unique_tokens = dict(frozen.unique_tokens)
        self._node_lengths = dict(frozen.node_lengths)
        self._max_occurrences = dict(frozen.max_occurrences)
        self._node_norms = dict(frozen.node_norms)
        self._idf_cache: dict[str, float] = {}

    @property
    def collection(self) -> "Collection":
        return self._worker_collection

    def node(self, node_id: int):
        return self._worker_collection.get(node_id)

    def node_l2_norm(self, node_id: int) -> float:
        return self._node_norms[node_id]

    def _compute_max_occurrences(self, token: str) -> int:
        # The full vocabulary's maxima were shipped; anything else never
        # occurs in the corpus.
        return 0


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to serve its shards."""

    shard_paths: tuple[str, ...]
    scoring_name: str  # "none" when running unscored
    npred_orders: str
    access_mode: str
    statistics: FrozenStatistics | None


#: Per-process state set up by :func:`_init_worker` (one config, plus the
#: lazily opened shard executors this worker has served so far).
_WORKER_STATE: dict = {}


def _init_worker(config: WorkerConfig) -> None:
    _WORKER_STATE["config"] = config
    _WORKER_STATE["executors"] = {}


def _shard_executor(shard_id: int) -> Executor:
    executors: Mapping[int, Executor] = _WORKER_STATE["executors"]
    executor = executors.get(shard_id)
    if executor is None:
        config: WorkerConfig = _WORKER_STATE["config"]
        index = PackedInvertedIndex.open(config.shard_paths[shard_id])
        scoring = None
        if config.scoring_name != "none":
            statistics = _WorkerStatistics(config.statistics, index.collection)
            scoring = get_model(config.scoring_name, statistics)
        executor = Executor(
            index,
            default_registry(),
            scoring,
            npred_orders=config.npred_orders,
            access_mode=config.access_mode,
            # The coordinator plans once from global statistics and ships
            # the plan with the batch; workers never re-plan locally.
            optimizer="off",
        )
        _WORKER_STATE["executors"][shard_id] = executor
    return executor


def run_shard_batch(
    shard_id: int,
    query_texts: Sequence[str],
    engine: str,
    top_k: int | None,
    explain: bool = False,
    plans: "Sequence | None" = None,
) -> list[EvaluationResult]:
    """Evaluate a batch of canonical query texts on one shard (in a worker).

    With ``explain`` every result carries its per-operator explain payload
    (a plain dict, so it pickles back to the parent unchanged).  ``plans``
    is the coordinator's per-query physical-plan list (aligned with
    ``query_texts``; entries may be ``None``): a shipped plan is executed
    as-is, so every shard applies the same globally-planned join order,
    merge strategy and access mode.
    """
    # Imported here, not at module top: repro.core imports the cluster
    # package, so a top-level import would be circular in the parent.
    from repro.core.query import parse_query

    executor = _shard_executor(shard_id)
    queries = [
        parse_query(text, "auto", executor.registry).node for text in query_texts
    ]
    return executor.execute_many(
        queries, engine=engine, top_k=top_k, explain=explain, plans=plans
    )
