"""Concurrent scatter-gather query execution over a sharded index.

:class:`ScatterGatherExecutor` is the cluster-side counterpart of
:class:`~repro.engine.executor.Executor`: it owns one shard-local executor
per shard (each scoring against the globally-aggregated statistics, so
per-shard scores *are* global scores), fans a parsed query out to every
shard through a :class:`~concurrent.futures.ThreadPoolExecutor`, gathers the
per-shard results in shard order -- which keeps the merge deterministic --
and combines them with the heap merge of :mod:`repro.cluster.merge`.

Single-shard clusters (and ``max_workers=1``) skip the pool entirely and run
sequentially; the results are identical either way.

With ``workers="process"`` the fan-out escapes the GIL: each shard is
spilled once to a packed v4 segment file
(:mod:`repro.index.packed`), and a persistent
:class:`~concurrent.futures.ProcessPoolExecutor` of workers serves queries
against mmap'd, zero-copy views of those files -- the spill pages are
shared read-only across all workers through the OS page cache, and each
worker ships back only its exact best-k prefix.  Scores stay bit-identical
to the thread path because the aggregated statistics (including every
TF-IDF norm) are computed once in the parent and shipped to the workers
(:mod:`repro.cluster.process_scatter`).  Process mode requires a *static*
sharded index (no live generation) and a registered scoring name;
incremental appends are supported -- the next query respills and restarts
the pool.

Merged results are memoised in a :class:`~repro.cluster.cache.QueryCache`
keyed on the normalized plan, engine choice, access mode, scoring backend
and NPRED order strategy -- but *not* the top-k cut: exact top-k rankings
are prefixes of each other, so a warm ``k=10`` entry serves a ``k=5``
request (a genuine hit) and only a wider request recomputes and overwrites
the entry.  The cache registers itself for invalidation on incremental
updates of the sharded index.

``top_k`` is forwarded to every shard executor, so each shard runs the
score-bounded pushdown of :mod:`repro.engine.topk` and ships back only its
own exact top-``k`` prefix; the k-way merge then needs ``O(k log s)`` work.

One executor serves one caller at a time (the worker pool parallelises
*shards*, not client sessions); wrap it in its own lock if several threads
must share it.
"""

from __future__ import annotations

import atexit
import multiprocessing
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Sequence

from repro.cluster.cache import DEFAULT_CACHE_SIZE, QueryCache, make_cache_key
from repro.cluster.merge import MergedEvaluationResult, merge_shard_results
from repro.cluster.process_scatter import (
    WorkerConfig,
    _init_worker,
    freeze_statistics,
    run_shard_batch,
)
from repro.cluster.sharded_index import ShardedIndex
from repro.engine.executor import AUTO, NATIVE_ENGINE, EvaluationResult, Executor
from repro.engine.topk import check_top_k
from repro.exceptions import ClusterError
from repro.index.cursor import PAPER_MODE, check_access_mode
from repro.index.packed_index import save_packed_index
from repro.languages import ast
from repro.languages.classify import classify_query
from repro.model.predicates import PredicateRegistry, default_registry
from repro.planner import (
    DEFAULT_OPTIMIZER,
    OPTIMIZER_OFF,
    check_optimizer_mode,
)
from repro.planner.ir import canonical_key
from repro.planner.optimizer import QueryPlanner
from repro.planner.physical import BOUND_HEAP, PhysicalPlan
from repro.scoring.base import ScoringModel, available_models, get_model
from repro.telemetry import instruments

#: Worker-pool flavours of the scatter stage.
WORKER_MODES = ("thread", "process")


# ---------------------------------------------------------------------------
# Spool-directory lifetime.  Explicit ``close()`` removes an executor's spool
# directly, but a long-running server that dies to SIGTERM -- or any process
# that simply exits without closing its engine -- must not leak epoch'd
# spool directories under the system temp dir.  Every owned spool is tracked
# in a module-level registry swept by an ``atexit`` hook, plus (when no one
# else claimed SIGTERM and we are on the main thread) a chained SIGTERM
# handler that sweeps and then re-raises the default termination.
# ---------------------------------------------------------------------------
_SPOOL_REGISTRY: "set[str]" = set()
_SPOOL_LOCK = threading.Lock()
_SPOOL_CLEANUP_INSTALLED = False


def cleanup_registered_spools() -> None:
    """Remove every registered spool directory (idempotent, never raises)."""
    with _SPOOL_LOCK:
        paths = list(_SPOOL_REGISTRY)
        _SPOOL_REGISTRY.clear()
    for path in paths:
        shutil.rmtree(path, ignore_errors=True)


def _sweep_and_reraise_sigterm(signum, frame) -> None:  # pragma: no cover
    cleanup_registered_spools()
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.raise_signal(signal.SIGTERM)  # exit with the conventional 143


def _install_spool_cleanup() -> None:
    """Install the atexit sweep (once) and, where safe, the SIGTERM chain.

    The SIGTERM handler is only installed from the main thread and only when
    the signal is still at its default disposition: a host application (for
    example ``repro serve-http``'s drain handler) that manages SIGTERM
    itself is expected to close its engines, which removes the spools
    explicitly.
    """
    global _SPOOL_CLEANUP_INSTALLED
    if _SPOOL_CLEANUP_INSTALLED:
        return
    _SPOOL_CLEANUP_INSTALLED = True
    atexit.register(cleanup_registered_spools)
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sweep_and_reraise_sigterm)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _register_spool(path: Path) -> None:
    with _SPOOL_LOCK:
        _SPOOL_REGISTRY.add(str(path))
    _install_spool_cleanup()


def _unregister_spool(path: Path) -> None:
    with _SPOOL_LOCK:
        _SPOOL_REGISTRY.discard(str(path))


class ScatterGatherExecutor:
    """Fan queries out to index shards; gather, merge and cache the results."""

    def __init__(
        self,
        sharded_index: ShardedIndex,
        registry: PredicateRegistry | None = None,
        scoring: "str | ScoringModel | None" = None,
        npred_orders: str = "minimal",
        access_mode: str = PAPER_MODE,
        max_workers: int | None = None,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
        workers: str = "thread",
        spool_dir: "Path | str | None" = None,
        mp_context: str | None = None,
        optimizer: str = DEFAULT_OPTIMIZER,
    ) -> None:
        if workers not in WORKER_MODES:
            raise ClusterError(
                f"unknown workers mode {workers!r} (choose from {WORKER_MODES})"
            )
        self.workers = workers
        self.sharded_index = sharded_index
        self.registry = registry or default_registry()
        self.npred_orders = npred_orders
        self.access_mode = check_access_mode(access_mode)
        self.max_workers = max_workers
        self._scoring_spec = scoring
        self.scoring_name = self._resolve_scoring_name(scoring)
        # Planning is a *coordinator* concern: one planner over the global
        # aggregated statistics plans each query once, and the physical plan
        # ships to every shard -- so all shards make identical choices, and
        # shard-local executors never plan on their own (optimizer="off").
        self.optimizer = check_optimizer_mode(optimizer)
        self.planner: QueryPlanner | None = (
            QueryPlanner(self._planner_df)
            if self.optimizer != OPTIMIZER_OFF
            else None
        )
        self._shard_executors = [
            Executor(
                shard.index,
                self.registry,
                self._make_shard_model(),
                npred_orders=npred_orders,
                access_mode=self.access_mode,
                optimizer=OPTIMIZER_OFF,
            )
            for shard in sharded_index.shards
        ]
        self._pool: ThreadPoolExecutor | None = None
        self.cache = QueryCache(cache_size) if cache_size else None
        # Two invalidation regimes: a static sharded index has no data
        # version, so the cache is flushed wholesale on every mutation; a
        # live index exposes a mutation generation that every cache key
        # embeds, so stale entries just age out of the LRU and flushes /
        # compactions (which cannot change results) leave the cache warm.
        self._generation_keyed = sharded_index.cache_generation() is not None
        self._cache_listener_registered = False
        if self.cache is not None and not self._generation_keyed:
            sharded_index.add_invalidation_listener(self.cache.invalidate)
            self._cache_listener_registered = True
        # An incremental append changes the global df/N, so the shard models
        # must re-bind to the recomputed statistics before the next query.
        self._scoring_stale = False
        if self._scoring_spec is not None:
            sharded_index.add_invalidation_listener(self._mark_scoring_stale)
        # A mutation changes the global dfs the cost model planned with, so
        # the planner's memoised plans (not its learned feedback) are dropped.
        self._planner_stale = False
        if self.planner is not None:
            sharded_index.add_invalidation_listener(self._mark_planner_stale)
        # Process-mode state: the spill files, the worker pool, and a dirty
        # flag that forces a respill + pool restart after any mutation.
        self._process_pool: ProcessPoolExecutor | None = None
        self._spool_root = Path(spool_dir) if spool_dir is not None else None
        self._spool_owned = False
        self._spool_epoch = 0
        self._shard_paths: tuple[str, ...] = ()
        # Bytes this executor last reported into repro_spool_bytes.
        self._spool_bytes_reported = 0
        self._process_stale = True
        self._process_listener_registered = False
        self.mp_context = mp_context
        if workers == "process":
            if sharded_index.cache_generation() is not None:
                raise ClusterError(
                    "workers='process' requires a static sharded index: live "
                    "(mutable) shards change under the spilled segment files; "
                    "use the thread pool for live indexes"
                )
            if (
                self._scoring_spec is not None
                and self.scoring_name not in available_models()
            ):
                from repro.exceptions import ScoringError

                raise ScoringError(
                    f"workers='process' needs a registered scoring model name "
                    f"to rebuild scoring in the workers; {self.scoring_name!r} "
                    f"is not registered (see repro.scoring.base.register_model)"
                )
            sharded_index.add_invalidation_listener(self._mark_process_stale)
            self._process_listener_registered = True

    # ------------------------------------------------------------------ API
    @property
    def num_shards(self) -> int:
        return self.sharded_index.num_shards

    @property
    def scoring(self) -> ScoringModel | None:
        """A representative scoring model (shard 0's, bound to global stats)."""
        return self._shard_executors[0].scoring if self._shard_executors else None

    def execute(
        self,
        query: ast.QueryNode,
        engine: str = AUTO,
        top_k: int | None = None,
        explain: bool = False,
        trace=None,
    ) -> MergedEvaluationResult:
        """Evaluate ``query`` on every shard and merge the answers.

        The merged result's ``elapsed_seconds`` is the scatter-gather wall
        clock; ``top_k`` is pushed down to every shard executor (each ships
        back only its exact best-``k`` prefix) and bounds the k-way merge
        (``node_ids`` and the match count stay complete).

        ``explain=True`` bypasses the result cache entirely -- a cache hit
        carries no fresh per-cursor counts -- and returns a merged result
        whose ``explain`` payload wraps one subtree per shard.  ``trace``
        receives one span per shard task.  Results stay bit-identical.
        """
        check_top_k(top_k)
        if not explain:
            key = self._cache_key(query, engine)
            cached = self._cache_get(key, top_k)
            if cached is not None:
                return cached
        self._refresh_scoring_if_stale()
        plan = self._plan_for(query, engine, top_k)
        started = time.perf_counter()
        if self.workers == "process":
            per_shard = [
                shard_batch[0]
                for shard_batch in self._process_scatter(
                    [query], engine, top_k, explain=explain, trace=trace,
                    plans=[plan],
                )
            ]
        else:
            per_shard = self._scatter(
                lambda executor: executor.execute(
                    query, engine=engine, top_k=top_k, explain=explain,
                    plan=plan,
                ),
                trace=trace,
            )
        self._fold_feedback(plan, per_shard)
        merged = merge_shard_results(
            per_shard, time.perf_counter() - started, top_k
        )
        if explain:
            merged.explain = self._merged_explain(
                query, merged, per_shard, plan=plan
            )
            return merged  # never cached: hand the fresh object out directly
        if self.cache is None:
            return merged
        self._cache_put(key, merged)
        return self._detached(merged, from_cache=False)

    def _plan_for(
        self, query: ast.QueryNode, engine: str, top_k: int | None
    ) -> PhysicalPlan | None:
        """Plan once at the coordinator; the plan ships to every shard.

        The planner costs over the cluster's *aggregated* statistics, so the
        choices reflect global document frequencies -- and because every
        shard executes the same artifact, choices cannot diverge between
        shards (the sharded/unsharded bit-identity invariant stays cheap).
        """
        if self.planner is None:
            return None
        if self._planner_stale:
            self._planner_stale = False
            self.planner = QueryPlanner(
                self._planner_df, feedback=self.planner.feedback
            )
        language_class = classify_query(query, self.registry)
        engine_name = (
            NATIVE_ENGINE[language_class] if engine == AUTO else engine.lower()
        )
        if engine_name == "comp":
            return None
        plan = self.planner.plan(
            query,
            engine=engine_name,
            language_class=language_class.value,
            optimizer=self.optimizer,
            access_mode=self.access_mode,
            top_k=top_k,
            scored=self._scoring_spec is not None,
        )
        if instruments.REGISTRY.enabled:
            instruments.PLANS_TOTAL.labels(plan.provenance).inc()
        return plan

    def _fold_feedback(
        self,
        plan: PhysicalPlan | None,
        per_shard: "list[EvaluationResult]",
    ) -> None:
        """Fold shard-observed cursor ops back into the coordinator's model.

        Each shard ships its per-token op counts; their sum is the global
        observation the plan's estimate (made from global dfs) predicted.
        Memo hits are skipped: the observation for this canonical query was
        folded when the plan was fresh, and shards executing a "cached" plan
        do not harvest token ops in the first place.
        """
        if (
            plan is None
            or self.planner is None
            or plan.optimizer != "on"
            or plan.provenance == "cached"
        ):
            return
        totals: dict[str, float] = {}
        gave_up = False
        for result in per_shard:
            if result.token_ops:
                for token, count in result.token_ops.items():
                    totals[token] = totals.get(token, 0.0) + count
            if result.plan is not None and result.plan.get("gave_up"):
                gave_up = True
        if totals:
            self.planner.observe(plan, totals)
        if gave_up and plan.bound_strategy != BOUND_HEAP:
            self.planner.record_give_up(plan)

    def _mark_planner_stale(self) -> None:
        self._planner_stale = True

    def _planner_df(self, token: "str | None") -> int:
        statistics = self.sharded_index.statistics
        if token is None:
            return statistics.node_count
        return statistics.document_frequency(token)

    def optimizer_stats(self) -> dict[str, object]:
        """Optimizer mode + planner/feedback counters for ``/stats``."""
        payload: dict[str, object] = {"mode": self.optimizer}
        if self.planner is not None:
            payload.update(self.planner.summary())
        return payload

    def _merged_explain(
        self,
        query: ast.QueryNode,
        merged: MergedEvaluationResult,
        per_shard: "list[EvaluationResult]",
        plan: PhysicalPlan | None = None,
    ) -> dict:
        """The cluster-level EXPLAIN ANALYZE payload wrapping shard subtrees."""
        from repro.telemetry.explain import build_scatter_explain

        shard_payloads = [result.explain or {} for result in per_shard]
        top_k_info = None
        infos = [
            payload.get("top_k")
            for payload in shard_payloads
            if payload.get("top_k") is not None
        ]
        if infos:
            top_k_info = {
                "k": infos[0].get("k"),
                "scored": sum(info.get("scored", 0) for info in infos),
                "pruned": sum(info.get("pruned", 0) for info in infos),
                "gave_up": any(info.get("gave_up") for info in infos),
            }
        return build_scatter_explain(
            query_text=query.to_text(),
            language_class=merged.language_class.value,
            engine=merged.engine,
            access_mode=self.access_mode,
            elapsed_seconds=merged.elapsed_seconds,
            rows_produced=len(merged.node_ids),
            shard_payloads=shard_payloads,
            workers=self.workers,
            cache="bypass" if self.cache is not None else "off",
            top_k=top_k_info,
            plan=plan.describe() if plan is not None else None,
        )

    def execute_many(
        self,
        queries: Sequence[ast.QueryNode],
        engine: str = AUTO,
        top_k: int | None = None,
    ) -> list[MergedEvaluationResult]:
        """Evaluate a batch, fanning the *whole batch* out per shard.

        Each shard worker runs :meth:`Executor.execute_many` over every
        not-yet-cached query, so the shard-local plan cache and cursor
        factory are amortised across the batch exactly as in the single-index
        path, and the shards overlap for the full batch duration instead of
        meeting at a barrier after every query.

        When the cache is enabled, duplicated queries inside one batch are
        also evaluated only once (they would hit the cache on a second call
        anyway); with caching disabled every query is evaluated, matching
        the single-index ``execute_many`` semantics exactly.
        """
        check_top_k(top_k)
        keys = [self._cache_key(query, engine) for query in queries]
        answers: dict[int, MergedEvaluationResult] = {}
        pending: list[int] = []
        scheduled: dict[tuple, int] = {}
        for position, key in enumerate(keys):
            if self.cache is not None and key in scheduled:
                # A duplicate of a query scheduled in this batch: served from
                # the cache after execution (and counted as a hit there).
                continue
            cached = self._cache_get(key, top_k)
            if cached is not None:
                answers[position] = cached
            else:
                scheduled.setdefault(key, position)
                pending.append(position)
        if pending:
            self._refresh_scoring_if_stale()
            batch = [queries[position] for position in pending]
            batch_plans = [
                self._plan_for(query, engine, top_k) for query in batch
            ]
            if self.workers == "process":
                per_shard_batches = self._process_scatter(
                    batch, engine, top_k, plans=batch_plans
                )
            else:
                per_shard_batches = self._scatter(
                    lambda executor: executor.execute_many(
                        batch, engine=engine, top_k=top_k, plans=batch_plans
                    )
                )
            for offset, position in enumerate(pending):
                per_shard = [shard_batch[offset] for shard_batch in per_shard_batches]
                self._fold_feedback(batch_plans[offset], per_shard)
                # With a pool the shards overlap, so the best wall-clock
                # estimate for one query is the slowest shard, not the sum.
                elapsed = max(result.elapsed_seconds for result in per_shard)
                merged = merge_shard_results(per_shard, elapsed, top_k)
                if self.cache is None:
                    answers[position] = merged
                else:
                    self._cache_put(keys[position], merged)
                    answers[position] = self._detached(merged, from_cache=False)
        # Duplicates of a scheduled query: now cache-resident, a real hit.
        # (Unless the entry was already evicted by later puts of this very
        # batch -- then hand out a detached copy of the first occurrence's
        # result so no two positions alias one mutable object.)
        for position, key in enumerate(keys):
            if position not in answers:
                hit = self._cache_get(key, top_k)
                answers[position] = (
                    hit
                    if hit is not None
                    else self._detached(answers[scheduled[key]], from_cache=False)
                )
        return [answers[position] for position in range(len(queries))]

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss statistics of the result cache (zeros when disabled)."""
        if self.cache is None:
            return QueryCache.empty_stats()
        return self.cache.stats()

    def spool_stats(self) -> dict | None:
        """Size and location of the process-mode spill files (else ``None``)."""
        if self.workers != "process" or not self._shard_paths:
            return None
        total = 0
        present = 0
        for path in self._shard_paths:
            try:
                total += Path(path).stat().st_size
                present += 1
            except OSError:  # a respill epoch just replaced this file
                pass
        return {
            "directory": str(self._spool_root),
            "epoch": self._spool_epoch,
            "files": present,
            "bytes": total,
        }

    def _report_spool_bytes(self, current: int) -> None:
        """Move this executor's repro_spool_bytes contribution to ``current``."""
        delta = current - self._spool_bytes_reported
        if delta and instruments.REGISTRY.enabled:
            instruments.SPOOL_BYTES.inc(delta)
        self._spool_bytes_reported = current

    def close(self) -> None:
        """Shut the worker pool down and deregister listeners (idempotent).

        Deregistering matters when one long-lived :class:`ShardedIndex` is
        served by successive executors: a closed executor must not keep
        receiving (and being kept alive by) invalidation notifications.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._teardown_process_pool()
        if self._spool_owned and self._spool_root is not None:
            _unregister_spool(self._spool_root)
            shutil.rmtree(self._spool_root, ignore_errors=True)
            self._spool_root = None
            self._spool_owned = False
        self._report_spool_bytes(0)
        if self.cache is not None:
            self.cache.unregister()
        if self._process_listener_registered:
            self.sharded_index.remove_invalidation_listener(
                self._mark_process_stale
            )
            self._process_listener_registered = False
        if self._cache_listener_registered:
            self.sharded_index.remove_invalidation_listener(self.cache.invalidate)
            self._cache_listener_registered = False
        if self._scoring_spec is not None:
            self.sharded_index.remove_invalidation_listener(self._mark_scoring_stale)
        if self.planner is not None:
            self.sharded_index.remove_invalidation_listener(self._mark_planner_stale)

    def __enter__(self) -> "ScatterGatherExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _scatter(self, task, trace=None) -> list:
        """Run ``task(shard_executor)`` on every shard; results in shard order.

        With a ``trace`` each shard task runs inside its own
        ``scatter.shard`` span (opened in the worker thread, so the span
        wall clock is the task itself, not the gather wait).
        """
        executors = self._shard_executors
        if instruments.REGISTRY.enabled:
            instruments.SCATTER_TASKS_TOTAL.labels(self.workers).inc(
                len(executors)
            )

        def run(shard_id: int, executor: Executor):
            if trace is None:
                return task(executor)
            with trace.span("scatter.shard", shard=shard_id, workers="thread"):
                return task(executor)

        if len(executors) == 1 or self.max_workers == 1:
            return [run(i, executor) for i, executor in enumerate(executors)]
        pool = self._ensure_pool()
        futures = [
            pool.submit(run, i, executor)
            for i, executor in enumerate(executors)
        ]
        return [future.result() for future in futures]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or self.num_shards
            self._pool = ThreadPoolExecutor(
                max_workers=max(1, min(workers, self.num_shards)),
                thread_name_prefix="repro-shard",
            )
        return self._pool

    # ---------------------------------------------------- process-pool path
    def _mark_process_stale(self) -> None:
        self._process_stale = True

    def _process_scatter(
        self,
        batch: Sequence[ast.QueryNode],
        engine: str,
        top_k: int | None,
        explain: bool = False,
        trace=None,
        plans: "Sequence[PhysicalPlan | None] | None" = None,
    ) -> "list[list[EvaluationResult]]":
        """Fan a batch out to the worker processes; one result list per shard.

        Queries travel as surface text plus (when the optimizer is on) the
        coordinator's pickled physical plans, aligned by position -- workers
        execute the shipped plan instead of re-deriving choices per shard.
        Results come back as picklable per-shard :class:`EvaluationResult`
        lists in shard order (with ``explain`` the per-query explain
        payloads pickle back too).  With a ``trace``, per-shard spans wrap
        the submit-to-result window observed from the parent -- worker-side
        wall time plus queueing, the best a process boundary can offer.
        """
        pool = self._ensure_process_pool()
        texts = [query.to_text() for query in batch]
        if instruments.REGISTRY.enabled:
            instruments.SCATTER_TASKS_TOTAL.labels(self.workers).inc(
                self.num_shards
            )
        spans = None
        if trace is not None:
            spans = [
                trace.span("scatter.shard", shard=shard_id, workers="process")
                for shard_id in range(self.num_shards)
            ]
        futures = [
            pool.submit(
                run_shard_batch, shard_id, texts, engine, top_k, explain,
                list(plans) if plans is not None else None,
            )
            for shard_id in range(self.num_shards)
        ]
        results = []
        for shard_id, future in enumerate(futures):
            result = future.result()
            if spans is not None:
                spans[shard_id].end()
            results.append(result)
        return results

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        if self._process_stale:
            self._teardown_process_pool()
            self._spill_shards()
            self._process_stale = False
        if self._process_pool is None:
            config = WorkerConfig(
                shard_paths=self._shard_paths,
                scoring_name=self.scoring_name,
                npred_orders=self.npred_orders,
                access_mode=self.access_mode,
                statistics=(
                    freeze_statistics(
                        self.sharded_index.statistics, with_norms=True
                    )
                    if self._scoring_spec is not None
                    else None
                ),
            )
            context = multiprocessing.get_context(self.mp_context or "spawn")
            workers = self.max_workers or self.num_shards
            self._process_pool = ProcessPoolExecutor(
                max_workers=max(1, min(workers, self.num_shards)),
                mp_context=context,
                initializer=_init_worker,
                initargs=(config,),
            )
        return self._process_pool

    def _spill_shards(self) -> None:
        """Write every shard index as a packed v4 file the workers can mmap.

        Each (re)spill goes to a fresh epoch subdirectory: a worker from a
        dying pool may still hold mappings of the previous files, so they
        are never overwritten in place.
        """
        if self._spool_root is None:
            self._spool_root = Path(
                tempfile.mkdtemp(prefix="repro-shard-spool-")
            )
            self._spool_owned = True
            # A SIGTERM or plain interpreter exit must not leak the spool:
            # register it for the atexit/SIGTERM sweep until close() runs.
            _register_spool(self._spool_root)
        previous = self._spool_root / f"epoch-{self._spool_epoch:04d}"
        self._spool_epoch += 1
        if self._spool_epoch > 1:
            # Epoch 1 is the initial spill; anything later is a respill
            # forced by an index mutation.
            instruments.SPOOL_RESPILLS_TOTAL.inc()
        epoch_dir = self._spool_root / f"epoch-{self._spool_epoch:04d}"
        epoch_dir.mkdir(parents=True, exist_ok=True)
        paths = []
        for shard in self.sharded_index.shards:
            path = epoch_dir / f"shard-{shard.shard_id:04d}.seg"
            save_packed_index(shard.index, path)
            paths.append(str(path))
        self._shard_paths = tuple(paths)
        if previous.exists():
            shutil.rmtree(previous, ignore_errors=True)
        self._report_spool_bytes(
            sum(Path(path).stat().st_size for path in paths)
        )

    def _teardown_process_pool(self) -> None:
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    def _make_shard_model(self) -> ScoringModel | None:
        """A private scoring-model instance for one shard executor.

        Every instance is bound to the *aggregated* statistics, so all shards
        score with the global df / N / norms; each shard gets its own object
        because ``prepare()`` carries per-query state that must not be shared
        across concurrently-evaluating shards.
        """
        from repro.exceptions import ScoringError

        spec = self._scoring_spec
        if spec is None:
            return None
        statistics = self.sharded_index.statistics
        if isinstance(spec, str):
            return get_model(spec, statistics)
        if isinstance(spec, ScoringModel):
            # Re-bind the model class to the aggregated statistics.  This
            # requires the standard ScoringModel constructor signature; a
            # customised instance cannot be cloned faithfully, so fail loud
            # rather than drop its configuration silently.
            try:
                return type(spec)(statistics)
            except TypeError as exc:
                raise ScoringError(
                    f"cannot shard scoring model {type(spec).__name__}: its "
                    f"constructor does not accept (statistics); register it "
                    f"with repro.scoring.base.register_model and pass the "
                    f"name instead"
                ) from exc
        raise ScoringError(
            "scoring must be None, a model name, or a ScoringModel instance"
        )

    def _mark_scoring_stale(self) -> None:
        self._scoring_stale = True

    def _refresh_scoring_if_stale(self) -> None:
        """Re-bind shard scoring models after an incremental index update.

        ``ShardedIndex.add_node`` drops the aggregated statistics; the next
        query must score with the recomputed global df / N, so every shard
        executor gets a fresh model bound to the fresh statistics.
        """
        if not self._scoring_stale:
            return
        self._scoring_stale = False
        for executor in self._shard_executors:
            executor.scoring = self._make_shard_model()

    def _resolve_scoring_name(self, spec: "str | ScoringModel | None") -> str:
        if spec is None:
            return "none"
        if isinstance(spec, str):
            return spec.lower()
        return getattr(spec, "name", type(spec).__name__)

    def _cache_key(self, query: ast.QueryNode, engine: str) -> tuple:
        # Keyed on the *canonical* plan IR text, not the surface text:
        # ``b AND a`` and ``a AND b`` are the same plan and share one cache
        # entry (AND/OR evaluation and scoring are order-independent).
        key = make_cache_key(
            canonical_key(query),
            engine,
            self.access_mode,
            self.scoring_name,
            self.npred_orders,
        )
        if self._generation_keyed:
            # Segment-aware invalidation: the data generation is part of the
            # key, so a mutation makes old entries unreachable rather than
            # flushing the cache.
            key = key + (self.sharded_index.cache_generation(),)
        return key

    @staticmethod
    def _covers(entry: MergedEvaluationResult, top_k: int | None) -> bool:
        """Whether a cached entry's ranking can serve a ``top_k`` request.

        A full ranking (``ranked_limit is None``) serves everything; a
        pruned one serves any request that is at most as wide.  Exact top-k
        rankings are prefixes of each other (the merge contract), so serving
        a smaller ``k`` from a wider entry is just a truncation.
        """
        if entry.ranked_limit is None:
            return True
        return top_k is not None and top_k <= entry.ranked_limit

    def _cache_get(
        self, key: tuple, top_k: int | None = None
    ) -> MergedEvaluationResult | None:
        if self.cache is None:
            return None
        hit = self.cache.get(key, accept=lambda entry: self._covers(entry, top_k))
        if hit is None:
            return None
        return self._detached(hit, from_cache=True, top_k=top_k)

    def _cache_put(self, key: tuple, merged: MergedEvaluationResult) -> None:
        if self.cache is not None:
            self.cache.put(key, merged)

    #: Sentinel for "hand the result back at its own width" (``None`` is a
    #: meaningful top_k value -- the full ranking -- so it cannot be used).
    _OWN_WIDTH = object()

    def _detached(
        self,
        result: MergedEvaluationResult,
        from_cache: bool,
        top_k=_OWN_WIDTH,
    ) -> MergedEvaluationResult:
        """A caller-owned copy of a (possibly cached) merged result.

        The object stored in the cache must never be handed out directly:
        ``node_ids`` / ``scores`` / ``_ranked`` are mutable and
        ``CursorStats.merge`` mutates in place, so a caller poking at a
        returned result would otherwise corrupt every future hit.  With
        ``top_k`` the copy's ranking is narrowed to the requested prefix
        (the cache stores one entry per query at its widest ranking).
        """
        ranked = list(result.ranked())
        limit = result.ranked_limit
        if top_k is not self._OWN_WIDTH and top_k is not None:
            ranked = ranked[:top_k]
            limit = top_k
        return MergedEvaluationResult(
            node_ids=list(result.node_ids),
            language_class=result.language_class,
            engine=result.engine,
            elapsed_seconds=result.elapsed_seconds,
            scores=dict(result.scores),
            cursor_stats=(
                result.cursor_stats.copy()
                if result.cursor_stats is not None
                else None
            ),
            ranked_limit=limit,
            plan=dict(result.plan) if result.plan is not None else None,
            shard_count=result.shard_count,
            from_cache=from_cache,
            _ranked=ranked,
        )
