"""An LRU result cache for the scatter-gather query service.

Keys are built from everything that determines the answer: the *normalized*
query plan (the parsed AST rendered back to canonical text, so surface
variants of the same query share an entry), the forced engine, the cursor
access mode, the scoring backend, the NPRED order strategy, and the top-k
cut (a top-k merged result is genuinely a different -- truncated -- object,
see :mod:`repro.cluster.merge`).

The cache is invalidated wholesale on incremental index updates: a new node
can change global document frequencies, so *every* cached score is suspect,
not just entries mentioning the node's tokens.  Hit / miss / eviction
counters feed the ``repro serve`` session statistics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.exceptions import ClusterError

#: Default number of cached query results.
DEFAULT_CACHE_SIZE = 128


def make_cache_key(
    plan_text: str,
    engine: str,
    access_mode: str,
    scoring: str,
    npred_orders: str,
    top_k: int | None,
) -> tuple:
    """The canonical cache key for one query execution."""
    return (plan_text, engine, access_mode, scoring, npred_orders, top_k)


class QueryCache:
    """A bounded, thread-safe LRU mapping of query keys to merged results."""

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ClusterError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value for ``key`` (refreshing its recency) or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting the least-recently-used entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = value

    def invalidate(self) -> None:
        """Drop every entry (called on incremental index updates)."""
        with self._lock:
            self._entries.clear()
            self.invalidations += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, float]:
        """Counters plus the hit rate over all lookups so far.

        Taken under the cache lock so the snapshot is internally consistent
        even while scatter-gather workers and ``search_many`` batches are
        hitting the cache concurrently.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            lookups = hits + misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }

    @staticmethod
    def empty_stats() -> dict[str, float]:
        """The all-zero stats shape reported when caching is disabled."""
        return {
            "capacity": 0,
            "size": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
            "hit_rate": 0.0,
        }
