"""An LRU result cache for the scatter-gather query service.

Keys are built from everything that determines the answer: the *canonical*
plan IR text (:func:`repro.planner.ir.canonical_key` -- AND/OR chains
flattened and operand order normalised, so commuted variants like
``b AND a`` vs ``a AND b`` share one entry), the forced engine, the cursor
access mode, the scoring backend, and the NPRED order strategy.

The top-k cut is deliberately **not** part of the key: exact top-k rankings
are prefixes of each other, so one entry computed at ``k=10`` can serve any
request with ``k <= 10`` (see the ``accept`` hook of :meth:`QueryCache.get`
and the coverage check in :mod:`repro.cluster.scatter`).  An entry that is
*too narrow* for the requested ``k`` counts as a miss and is overwritten by
the wider recomputation, so entries only ever grow toward the full ranking.

The cache is invalidated wholesale on incremental index updates: a new node
can change global document frequencies, so *every* cached score is suspect,
not just entries mentioning the node's tokens.  Hit / miss / eviction
counters feed the ``repro serve`` session statistics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.exceptions import ClusterError
from repro.telemetry import instruments

#: Default number of cached query results.
DEFAULT_CACHE_SIZE = 128


def make_cache_key(
    plan_text: str,
    engine: str,
    access_mode: str,
    scoring: str,
    npred_orders: str,
) -> tuple:
    """The canonical cache key for one query execution (top-k excluded).

    ``plan_text`` is the canonical plan-IR rendering of the query, not its
    surface text -- callers pass ``canonical_key(query)``.
    """
    return (plan_text, engine, access_mode, scoring, npred_orders)


class QueryCache:
    """A bounded, thread-safe LRU mapping of query keys to merged results."""

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ClusterError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._unregistered = False
        if instruments.REGISTRY.enabled:
            instruments.QUERY_CACHE_CAPACITY.inc(capacity)

    def get(
        self, key: Hashable, accept: "Callable[[Any], bool] | None" = None
    ) -> Any | None:
        """The cached value for ``key`` (refreshing its recency) or ``None``.

        ``accept`` lets the caller reject an entry that exists but cannot
        serve the request (e.g. a top-k ranking prefix narrower than the
        requested ``k``); a rejected entry counts as a miss and keeps its
        LRU position, and the caller is expected to overwrite it with the
        wider recomputation.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None or (accept is not None and not accept(value)):
                self.misses += 1
                if instruments.REGISTRY.enabled:
                    instruments.CACHE_LOOKUPS_TOTAL.labels("miss").inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if instruments.REGISTRY.enabled:
                instruments.CACHE_LOOKUPS_TOTAL.labels("hit").inc()
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting the least-recently-used entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                if instruments.REGISTRY.enabled:
                    instruments.CACHE_EVICTIONS_TOTAL.inc()
                    if not self._unregistered:
                        instruments.QUERY_CACHE_ENTRIES.dec()
            self._entries[key] = value
            if instruments.REGISTRY.enabled and not self._unregistered:
                instruments.QUERY_CACHE_ENTRIES.inc()

    def invalidate(self) -> None:
        """Drop every entry (called on incremental index updates)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += 1
            if instruments.REGISTRY.enabled:
                instruments.CACHE_INVALIDATIONS_TOTAL.inc()
                if dropped and not self._unregistered:
                    instruments.QUERY_CACHE_ENTRIES.dec(dropped)

    def unregister(self) -> None:
        """Withdraw this cache's contribution to the shared gauges.

        Called when the owning executor closes: the gauge families count
        *open* caches, so a retired cache must not keep inflating them.
        Idempotent; the cache itself keeps working afterwards.
        """
        with self._lock:
            if self._unregistered:
                return
            self._unregistered = True
            if instruments.REGISTRY.enabled:
                instruments.QUERY_CACHE_CAPACITY.dec(self.capacity)
                if self._entries:
                    instruments.QUERY_CACHE_ENTRIES.dec(len(self._entries))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, float]:
        """Counters plus the hit rate over all lookups so far.

        Taken under the cache lock so the snapshot is internally consistent
        even while scatter-gather workers and ``search_many`` batches are
        hitting the cache concurrently.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            lookups = hits + misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }

    @staticmethod
    def empty_stats() -> dict[str, float]:
        """The all-zero stats shape reported when caching is disabled."""
        return {
            "capacity": 0,
            "size": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
            "hit_rate": 0.0,
        }
