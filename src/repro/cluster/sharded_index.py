"""A collection partitioned into independently-indexed shards.

:class:`ShardedIndex` is the storage side of the cluster subsystem: it splits
a :class:`~repro.corpus.collection.Collection` into ``N`` sub-collections
with a pluggable :mod:`~repro.cluster.partition` strategy and builds one
:class:`~repro.index.inverted_index.InvertedIndex` per shard.  Node ids are
global (a shard keeps the original ids), so per-shard evaluation results
merge without translation, and every node lives in exactly one shard, which
is what makes per-shard evaluation of the paper's per-node semantics exact.

Incremental appends route through the same partitioner and notify registered
invalidation listeners (the query caches of any executors built on top).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.cluster.partition import Partitioner, make_partitioner, partition_collection
from repro.cluster.stats import AggregatedStatistics
from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import ClusterError
from repro.index.inverted_index import InvertedIndex


@dataclass
class Shard:
    """One shard: an id plus its private inverted index."""

    shard_id: int
    index: InvertedIndex

    @property
    def collection(self) -> Collection:
        return self.index.collection

    def describe(self) -> dict[str, int]:
        """Size figures used by ``repro shard-stats`` and the benchmarks."""
        postings = sum(pl.document_frequency() for pl in self.index.posting_lists())
        positions = sum(pl.total_positions() for pl in self.index.posting_lists())
        return {
            "shard": self.shard_id,
            "nodes": self.index.node_count(),
            "tokens": len(self.index.tokens()),
            "postings": postings,
            "positions": positions,
            "memory_bytes": self.index.memory_footprint()["total_bytes"],
        }


class ShardedIndex:
    """``N`` inverted-index shards behind one collection-level facade."""

    def __init__(
        self,
        collection: Collection,
        num_shards: int,
        partitioner: "str | Partitioner" = "hash",
    ) -> None:
        if num_shards < 1:
            raise ClusterError(f"need at least one shard, got {num_shards}")
        self.collection = collection
        self.partitioner = make_partitioner(partitioner)
        shard_collections, assignment = partition_collection(
            collection, num_shards, self.partitioner
        )
        self.shards = [
            Shard(shard_id, self._build_shard_index(shard_collection, shard_id))
            for shard_id, shard_collection in enumerate(shard_collections)
        ]
        self._assignment = assignment
        node_ids = collection.node_ids()
        self._max_node_id = node_ids[-1] if node_ids else None
        self._statistics: AggregatedStatistics | None = None
        self._invalidation_listeners: list[Callable[[], None]] = []

    def _build_shard_index(self, shard_collection: Collection, shard_id: int):
        """Build one shard's index; the live subclass overrides this hook."""
        return InvertedIndex(shard_collection)

    @classmethod
    def from_collection(
        cls,
        collection: Collection,
        num_shards: int,
        partitioner: "str | Partitioner" = "hash",
    ) -> "ShardedIndex":
        """Build a sharded index (alias of the constructor, mirroring
        :meth:`InvertedIndex.from_collection`)."""
        return cls(collection, num_shards, partitioner)

    # ------------------------------------------------------------- accessors
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def node_count(self) -> int:
        """Total nodes over all shards (the global ``cnodes``)."""
        return len(self.collection)

    def node_ids(self) -> list[int]:
        """All node ids, ascending (global view)."""
        return self.collection.node_ids()

    def tokens(self) -> list[str]:
        """Every token indexed by at least one shard, sorted."""
        return sorted(self.statistics.vocabulary())

    def document_frequency(self, token: str) -> int:
        """Global ``df(t)`` summed over the shards."""
        return self.statistics.document_frequency(token)

    def shard_of(self, node_id: int) -> int:
        """The shard holding ``node_id``."""
        try:
            return self._assignment[node_id]
        except KeyError as exc:
            raise ClusterError(f"unknown node id {node_id}") from exc

    @property
    def statistics(self) -> AggregatedStatistics:
        """Lazily-aggregated global corpus statistics (df / N / norms)."""
        if self._statistics is None:
            self._statistics = AggregatedStatistics(
                [shard.index for shard in self.shards], self.collection
            )
        return self._statistics

    # ---------------------------------------------------- incremental updates
    def add_node(self, node: ContextNode) -> None:
        """Append one node: route it to its shard, keep the global view.

        Global node ids must be strictly increasing (the same append-only
        contract as :meth:`InvertedIndex.add_node`); within a shard they then
        are as well.  Statistics are invalidated and all registered listeners
        (query caches) are notified.
        """
        if self._max_node_id is not None and node.node_id <= self._max_node_id:
            from repro.exceptions import IndexError_

            raise IndexError_(
                f"cannot append node {node.node_id}: ids must be strictly "
                f"increasing (largest existing id is {self._max_node_id})"
            )
        ordinal = len(self.collection)
        shard_id = self.partitioner.assign(node, ordinal, self.num_shards)
        if not 0 <= shard_id < self.num_shards:
            raise ClusterError(
                f"partitioner {self.partitioner.describe()!r} assigned node "
                f"{node.node_id} to shard {shard_id} of {self.num_shards}"
            )
        self.shards[shard_id].index.add_node(node)
        self.collection.add(node)
        self._assignment[node.node_id] = shard_id
        self._max_node_id = node.node_id
        self._statistics = None
        self._notify_invalidation()

    def add_text(self, text: str, tokenizer=None, metadata=None) -> int:
        """Tokenize ``text``, append it as a new node, and return its id."""
        node_id = self.next_node_id()
        node = ContextNode.from_text(node_id, text, tokenizer, metadata=metadata)
        self.add_node(node)
        return node_id

    def next_node_id(self) -> int:
        """The id :meth:`add_text` would assign next (global, not per shard)."""
        return 0 if self._max_node_id is None else self._max_node_id + 1

    def add_invalidation_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` after every mutation (query-cache invalidation)."""
        self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(self, listener: Callable[[], None]) -> None:
        """Deregister a listener (no-op if absent); executors call this on close."""
        try:
            self._invalidation_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_invalidation(self) -> None:
        for listener in self._invalidation_listeners:
            listener()

    def cache_generation(self) -> int | None:
        """The cache-keying generation, or ``None`` for listener invalidation.

        A static sharded index has no cheap notion of "which version of the
        data produced this result", so result caches built on top register an
        invalidation listener and flush wholesale on every mutation.  The
        live subclass returns a real generation instead, letting caches key
        entries by data version and keep old entries merely unreachable.
        """
        return None

    # ------------------------------------------------------------ diagnostics
    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard size figures, one dict per shard in shard order."""
        return [shard.describe() for shard in self.shards]

    def memory_footprint(self) -> dict[str, int]:
        """Columnar posting-storage bytes aggregated over every shard.

        The same shape as :meth:`InvertedIndex.memory_footprint`, summed
        shard-by-shard; surfaced by ``repro shard-stats``.
        """
        totals = {
            "node_ids_bytes": 0,
            "entry_bounds_bytes": 0,
            "offsets_bytes": 0,
            "structure_bytes": 0,
        }
        for shard in self.shards:
            breakdown = shard.index.memory_footprint()
            for key in totals:
                totals[key] += breakdown[key]
        totals["total_bytes"] = sum(totals.values())
        return totals

    def validate(self) -> None:
        """Check every shard's index invariants plus the partition itself."""
        seen: set[int] = set()
        for shard in self.shards:
            shard.index.validate()
            for node_id in shard.index.node_ids():
                if node_id in seen:
                    raise ClusterError(
                        f"node {node_id} appears in more than one shard"
                    )
                if self._assignment.get(node_id) != shard.shard_id:
                    raise ClusterError(
                        f"node {node_id} is in shard {shard.shard_id} but "
                        f"assigned to {self._assignment.get(node_id)}"
                    )
                seen.add(node_id)
        if seen != set(self.collection.node_ids()):
            raise ClusterError("shards do not cover exactly the collection")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedIndex(nodes={self.node_count()}, shards={self.num_shards}, "
            f"partitioner={self.partitioner.describe()!r})"
        )
