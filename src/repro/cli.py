"""Command-line interface.

The CLI exposes the typical lifecycle of the library without writing Python:

* ``repro index``       -- tokenize documents and persist a collection/index;
* ``repro search``      -- run a BOOL / DIST / COMP query against a saved index
  (``--access-mode fast`` switches to seek-based skipping);
* ``repro explain``     -- show a query's language class, engine, measures and
  calculus form; with ``--index`` it also *runs* the query and prints an
  EXPLAIN ANALYZE operator tree with per-cursor operation counts;
* ``repro metrics``     -- Prometheus text metrics: scrape a running
  ``serve-http`` instance's ``/metrics``, or dump this process's registry;
* ``repro info``        -- corpus statistics and complexity parameters of an index;
* ``repro index-stats`` -- posting-storage statistics and the memory footprint
  of the columnar arrays;
* ``repro shard-stats`` -- how a partitioner would spread an index over N
  shards (per-shard sizes and balance);
* ``repro serve``       -- a long-running query server reading one query per
  stdin line (REPL on a terminal, batch otherwise) with per-query latency and
  cache statistics; ``--live`` enables the mutation commands (``:add``,
  ``:update``, ``:delete``, ``:flush``, ``:compact``, ``:segments``);
* ``repro serve-http``  -- the network query service: an asyncio HTTP/JSON
  server with request micro-batching, per-request deadlines, admission
  control, ``/health`` + ``/stats`` endpoints and graceful SIGTERM drain
  (see :mod:`repro.server`); accepts a saved collection file or a live
  data directory;
* ``repro doctor``      -- validate the environment (and optionally an index
  file / live data directory, or a host:port) before serving traffic;
* ``repro ingest``      -- tail a document stream (file or stdin) into a live
  index, optionally interleaving queries to measure serving under ingest;
* ``repro segment-stats`` -- per-segment sizes and tombstone counts of a live
  index (a saved collection or a persisted live-index directory);
* ``repro experiment``  -- regenerate the paper's figures as text tables;
* ``repro bench``       -- the performance observatory: ``bench run`` executes
  registered suites through the shared min-of-N timing core and writes
  machine-readable ``BENCH_<suite>.json`` results; ``bench compare`` diffs
  two result sets and exits non-zero on regression (the CI perf gate);
* ``repro replay``      -- drive a captured (``serve-http --capture``) or
  synthetic zipfian workload against an engine or a live HTTP endpoint,
  with explicit cache-warming phases, results verified bit-identical to
  direct ``engine.search`` before timing.

Invoke as ``python -m repro ...`` (or the ``repro`` console script when the
package is installed with entry points enabled).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro import __version__
from repro.bench.complexity import QueryParameters, hierarchy_table
from repro.bench.figures import ALL_FIGURES, FigureScale, run_all
from repro.bench.reporting import render_report, shape_summary, table_to_text
from repro.cluster import ShardedIndex, balance_report
from repro.core.engine import FullTextEngine
from repro.core.query import parse_query
from repro.corpus.loaders import load_directory, load_text_files
from repro.exceptions import ReproError
from repro.index.inverted_index import InvertedIndex
from repro.index.packed import packed_index_bytes
from repro.index.storage import load_collection, load_index, save_collection
from repro.telemetry import LatencyRecorder, format_latency_summary
from repro.telemetry.latency import _fmt_ms


def _positive_int(text: str) -> int:
    """Argparse type for ``--top-k``: the uniform ``top_k >= 1`` contract.

    Matches the :func:`repro.engine.topk.check_top_k` validation applied by
    the engine and cluster entry points, so a bad ``k`` fails at argument
    parsing instead of deep inside a search.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_optimizer_argument(command: argparse.ArgumentParser) -> None:
    """The planning-layer mode switch shared by the query-running commands."""
    command.add_argument(
        "--optimizer",
        default="static",
        choices=["on", "off", "static"],
        help="query planning layer: 'on' plans with the statistics-driven "
        "cost model (join order, merge strategy, access mode, top-k bound "
        "strategy), 'static' (default) builds plan artifacts but keeps the "
        "builtin heuristics, 'off' disables planning; results are "
        "bit-identical in every mode",
    )


def _add_sharding_arguments(command: argparse.ArgumentParser) -> None:
    """The sharding knobs shared by ``search``, ``serve`` and ``shard-stats``."""
    command.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the index over N shards and run scatter-gather "
        "(default: 1, the single-index path)",
    )
    command.add_argument(
        "--partitioner",
        default="hash",
        help="shard assignment: 'hash', 'round-robin' or 'metadata:<key>' "
        "(default: hash)",
    )
    command.add_argument(
        "--workers",
        default="thread",
        choices=["thread", "process"],
        help="scatter worker pool: 'thread' (default, shared memory) or "
        "'process' (one process per shard over mmap'd packed segments; "
        "escapes the GIL, static indexes only)",
    )


def build_argument_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for documentation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Full-text search languages (EDBT 2006 reproduction).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    index_cmd = subparsers.add_parser(
        "index", help="tokenize documents and write a collection file"
    )
    index_cmd.add_argument("inputs", nargs="+", help="files or a directory to index")
    index_cmd.add_argument("-o", "--output", required=True, help="output .json[.gz] file")
    index_cmd.add_argument(
        "--glob", default="*.txt", help="file pattern when indexing a directory"
    )
    index_cmd.add_argument(
        "--strip-tags", action="store_true", help="strip XML/HTML tags before indexing"
    )

    search_cmd = subparsers.add_parser("search", help="run a query against a saved index")
    search_cmd.add_argument("index_file", help="collection file written by 'repro index'")
    search_cmd.add_argument("query", help="the query text")
    search_cmd.add_argument(
        "--language", default="auto", choices=["auto", "bool", "dist", "comp"]
    )
    search_cmd.add_argument(
        "--engine", default="auto", choices=["auto", "bool", "ppred", "npred", "comp"]
    )
    search_cmd.add_argument(
        "--scoring", default="tfidf", choices=["none", "tfidf", "probabilistic"]
    )
    search_cmd.add_argument("--top-k", type=_positive_int, default=10)
    search_cmd.add_argument(
        "--access-mode",
        default="paper",
        choices=["paper", "fast"],
        help="'paper' charges seeks as sequential scans (the paper's cost "
        "model); 'fast' uses galloping seeks (the production path)",
    )
    _add_optimizer_argument(search_cmd)
    _add_sharding_arguments(search_cmd)

    serve_cmd = subparsers.add_parser(
        "serve",
        help="serve queries from stdin (one per line) with latency stats",
    )
    serve_cmd.add_argument("index_file", help="collection file written by 'repro index'")
    serve_cmd.add_argument(
        "--language", default="auto", choices=["auto", "bool", "dist", "comp"]
    )
    serve_cmd.add_argument(
        "--scoring", default="tfidf", choices=["none", "tfidf", "probabilistic"]
    )
    serve_cmd.add_argument("--top-k", type=_positive_int, default=5)
    serve_cmd.add_argument(
        "--access-mode", default="fast", choices=["paper", "fast"],
        help="cursor access mode (default: fast, the production path)",
    )
    serve_cmd.add_argument(
        "--cache-size", type=int, default=128,
        help="LRU result-cache capacity; 0 disables caching (default: 128)",
    )
    serve_cmd.add_argument(
        "--live", action="store_true",
        help="serve a live (mutable) index: ':add TEXT', ':update ID TEXT', "
        "':delete ID', ':flush', ':compact' and ':segments' become available",
    )
    serve_cmd.add_argument(
        "--flush-threshold", type=int, default=None,
        help="documents the live memtable holds before it is sealed "
        "(default: 256; only with --live)",
    )
    _add_optimizer_argument(serve_cmd)
    _add_sharding_arguments(serve_cmd)

    serve_http_cmd = subparsers.add_parser(
        "serve-http",
        help="serve queries over HTTP/JSON with micro-batching and deadlines",
    )
    serve_http_cmd.add_argument(
        "index_file",
        help="collection file written by 'repro index', or a live data "
        "directory written by 'repro ingest --data-dir'",
    )
    serve_http_cmd.add_argument("--host", default="127.0.0.1")
    serve_http_cmd.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 picks a free port; the bound port is printed)",
    )
    serve_http_cmd.add_argument(
        "--scoring", default="tfidf", choices=["none", "tfidf", "probabilistic"]
    )
    serve_http_cmd.add_argument(
        "--top-k", type=_positive_int, default=10,
        help="default top_k when a request does not send one (default: 10)",
    )
    serve_http_cmd.add_argument(
        "--access-mode", default="fast", choices=["paper", "fast"],
        help="cursor access mode (default: fast, the production path)",
    )
    serve_http_cmd.add_argument(
        "--cache-size", type=int, default=128,
        help="LRU result-cache capacity; 0 disables caching (default: 128)",
    )
    serve_http_cmd.add_argument(
        "--live", action="store_true",
        help="build the index on the live (mutable) segment subsystem",
    )
    serve_http_cmd.add_argument("--flush-threshold", type=int, default=None)
    serve_http_cmd.add_argument(
        "--max-batch", type=_positive_int, default=32,
        help="largest micro-batch coalesced into one search_many call "
        "(default: 32; 1 disables batching)",
    )
    serve_http_cmd.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="how long the dispatcher waits for stragglers after the first "
        "request of a batch (default: 2.0 ms; 0 disables lingering)",
    )
    serve_http_cmd.add_argument(
        "--max-inflight", type=_positive_int, default=64,
        help="admission limit: requests queued or executing before the "
        "server answers 429 (default: 64)",
    )
    serve_http_cmd.add_argument(
        "--timeout-ms", type=float, default=30_000.0,
        help="default per-request deadline when a request does not send "
        "timeout_ms (default: 30000)",
    )
    serve_http_cmd.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds SIGTERM waits for in-flight requests (default: 10)",
    )
    serve_http_cmd.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one JSON object per request to PATH ('-' for stderr)",
    )
    serve_http_cmd.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help="dump a JSONL trace of every search slower than MS milliseconds",
    )
    serve_http_cmd.add_argument(
        "--slow-query-log", default=None, metavar="PATH",
        help="slow-query dump destination ('-' for stderr; default: the "
        "access log stream, else stderr)",
    )
    serve_http_cmd.add_argument(
        "--capture", default=None, metavar="PATH",
        help="record served /search traffic as a replayable JSONL workload "
        "(see 'repro replay')",
    )
    serve_http_cmd.add_argument(
        "--capture-sample", type=float, default=1.0, metavar="FRACTION",
        help="fraction of /search requests recorded into --capture "
        "(default: 1.0, everything)",
    )
    _add_optimizer_argument(serve_http_cmd)
    _add_sharding_arguments(serve_http_cmd)

    doctor_cmd = subparsers.add_parser(
        "doctor",
        help="validate the environment (and optionally an index) for serving",
    )
    doctor_cmd.add_argument(
        "index_path", nargs="?", default=None,
        help="a saved collection file or a live data directory to validate",
    )
    doctor_cmd.add_argument(
        "--host", default=None, help="with --port: check the bind address"
    )
    doctor_cmd.add_argument(
        "--port", type=int, default=None,
        help="check that this TCP port can be bound",
    )

    ingest_cmd = subparsers.add_parser(
        "ingest",
        help="tail documents (one per line) from a file or stdin into a live index",
    )
    ingest_cmd.add_argument(
        "docs", help="document stream: a text file with one document per line, "
        "or '-' for stdin",
    )
    ingest_cmd.add_argument(
        "--base", default=None,
        help="start from a saved collection file instead of an empty index",
    )
    ingest_cmd.add_argument(
        "--data-dir", default=None,
        help="persist the live index (WAL + segment files) in this directory",
    )
    ingest_cmd.add_argument(
        "--queries", default=None,
        help="file with one query per line, served interleaved with the ingest",
    )
    ingest_cmd.add_argument(
        "--query-every", type=int, default=50,
        help="run the query set after every N ingested documents (default: 50)",
    )
    ingest_cmd.add_argument("--flush-threshold", type=int, default=None)
    ingest_cmd.add_argument(
        "--compact", action="store_true",
        help="run a full compaction after the ingest and report the effect",
    )
    ingest_cmd.add_argument(
        "--access-mode", default="fast", choices=["paper", "fast"],
    )
    ingest_cmd.add_argument(
        "--scoring", default="none", choices=["none", "tfidf", "probabilistic"],
    )
    _add_sharding_arguments(ingest_cmd)

    explain_cmd = subparsers.add_parser(
        "explain",
        help="classify a query; with --index, run it and print EXPLAIN ANALYZE",
    )
    explain_cmd.add_argument("query", help="the query text")
    explain_cmd.add_argument(
        "--language", default="auto", choices=["auto", "bool", "dist", "comp"]
    )
    explain_cmd.add_argument(
        "--index", default=None, metavar="FILE",
        help="run the query against this saved index and print the EXPLAIN "
        "ANALYZE operator tree (per-cursor operation counts, top-k pruning, "
        "wall time)",
    )
    explain_cmd.add_argument(
        "--engine", default="auto", choices=["auto", "bool", "ppred", "npred", "comp"]
    )
    explain_cmd.add_argument(
        "--scoring", default="tfidf", choices=["none", "tfidf", "probabilistic"]
    )
    explain_cmd.add_argument("--top-k", type=_positive_int, default=None)
    explain_cmd.add_argument(
        "--access-mode", default="paper", choices=["paper", "fast"],
    )
    _add_sharding_arguments(explain_cmd)

    metrics_cmd = subparsers.add_parser(
        "metrics",
        help="Prometheus metrics: scrape a serve-http instance or dump the "
        "in-process registry",
    )
    metrics_cmd.add_argument(
        "target", nargs="?", default=None,
        help="host:port or URL of a running 'repro serve-http' (its /metrics "
        "is fetched); omitted: render this process's own registry",
    )
    metrics_cmd.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="socket timeout for the scrape (default: 10)",
    )

    bench_cmd = subparsers.add_parser(
        "bench",
        help="the performance observatory: run benchmark suites, compare "
        "BENCH_*.json results",
    )
    bench_sub = bench_cmd.add_subparsers(dest="bench_command", required=True)
    bench_run_cmd = bench_sub.add_parser(
        "run",
        help="run registered suites; write one BENCH_<suite>.json each",
    )
    bench_run_cmd.add_argument(
        "--suite", action="append", default=None, metavar="NAME",
        help="suite to run (repeatable; default: all registered suites)",
    )
    bench_run_cmd.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale: smaller corpus, fewer repeats",
    )
    bench_run_cmd.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="where BENCH_<suite>.json files are written (default: .)",
    )
    bench_run_cmd.add_argument(
        "--profile", type=int, nargs="?", const=15, default=0, metavar="TOP_N",
        help="attach cProfile to every case and print the top-N cumulative "
        "hotspots (default N: 15)",
    )
    bench_run_cmd.add_argument(
        "--list", action="store_true", dest="list_suites",
        help="list registered suites and exit",
    )
    _add_optimizer_argument(bench_run_cmd)
    bench_compare_cmd = bench_sub.add_parser(
        "compare",
        help="diff two BENCH results (files or directories); exit non-zero "
        "on regression",
    )
    bench_compare_cmd.add_argument(
        "baseline", help="baseline BENCH_*.json file or directory of them"
    )
    bench_compare_cmd.add_argument(
        "current", help="current BENCH_*.json file or directory of them"
    )
    bench_compare_cmd.add_argument(
        "--fail-over", type=float, default=10.0, metavar="PCT",
        help="fail when any case's min_seconds regressed by more than PCT "
        "percent (default: 10)",
    )

    replay_cmd = subparsers.add_parser(
        "replay",
        help="replay a captured or synthetic-zipf workload against an "
        "engine or a live serve-http endpoint (verified, then timed)",
    )
    replay_cmd.add_argument(
        "index_file",
        help="collection file; builds the direct reference engine (and, "
        "without --url, the cached replay target)",
    )
    replay_cmd.add_argument(
        "workload", nargs="?", default=None,
        help="JSONL workload from 'serve-http --capture' (omit with "
        "--synthetic-zipf)",
    )
    replay_cmd.add_argument(
        "--synthetic-zipf", type=float, default=None, metavar="SKEW",
        help="generate a zipfian-skewed synthetic workload with this skew "
        "instead of reading a capture file (0 = uniform)",
    )
    replay_cmd.add_argument(
        "--count", type=int, default=200,
        help="synthetic workload length (default: 200)",
    )
    replay_cmd.add_argument(
        "--pool-size", type=int, default=32,
        help="synthetic query pool size, hottest corpus tokens first "
        "(default: 32)",
    )
    replay_cmd.add_argument(
        "--top-k", type=_positive_int, default=10,
        help="top_k of synthetic queries (default: 10)",
    )
    replay_cmd.add_argument(
        "--seed", type=int, default=0,
        help="random seed of the synthetic zipf draw (default: 0)",
    )
    replay_cmd.add_argument(
        "--url", default=None, metavar="URL",
        help="replay over HTTP against a running serve-http instead of an "
        "in-process engine",
    )
    replay_cmd.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request HTTP timeout with --url (default: 30)",
    )
    replay_cmd.add_argument(
        "--warm-passes", type=int, default=1,
        help="cache-warming passes over the distinct queries before timing "
        "(default: 1; 0 replays cold)",
    )
    replay_cmd.add_argument(
        "--no-verify", action="store_true",
        help="skip the bit-identical results check against direct "
        "engine.search (verification is on by default)",
    )
    replay_cmd.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the replay report as JSON to PATH",
    )
    replay_cmd.add_argument(
        "--scoring", default="tfidf", choices=["none", "tfidf", "probabilistic"]
    )
    replay_cmd.add_argument(
        "--access-mode", default="fast", choices=["paper", "fast"]
    )
    replay_cmd.add_argument(
        "--cache-size", type=int, default=128,
        help="result-cache capacity of the in-process replay target "
        "(default: 128; 0 replays uncached)",
    )
    _add_optimizer_argument(replay_cmd)

    info_cmd = subparsers.add_parser("info", help="statistics of a saved index")
    info_cmd.add_argument("index_file")

    index_stats_cmd = subparsers.add_parser(
        "index-stats",
        help="posting-storage statistics and columnar memory footprint",
    )
    index_stats_cmd.add_argument("index_file")

    shard_stats_cmd = subparsers.add_parser(
        "shard-stats",
        help="per-shard sizes and balance for a shard count / partitioner",
    )
    shard_stats_cmd.add_argument("index_file")
    _add_sharding_arguments(shard_stats_cmd)

    segment_stats_cmd = subparsers.add_parser(
        "segment-stats",
        help="per-segment sizes and tombstones of a live index",
    )
    segment_stats_cmd.add_argument(
        "index_path",
        help="a saved collection file, or a live-index directory "
        "(as written by 'repro ingest --data-dir')",
    )
    segment_stats_cmd.add_argument("--flush-threshold", type=int, default=None)

    experiment_cmd = subparsers.add_parser(
        "experiment", help="regenerate the paper's figures"
    )
    experiment_cmd.add_argument(
        "--figure",
        default="all",
        choices=["all", "3", "5", "6", "7", "8"],
        help="which figure to regenerate",
    )
    experiment_cmd.add_argument(
        "--scale", default="laptop", choices=["smoke", "laptop", "paper"]
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_argument_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "index":
            return _command_index(args)
        if args.command == "search":
            return _command_search(args)
        if args.command == "explain":
            return _command_explain(args)
        if args.command == "metrics":
            return _command_metrics(args)
        if args.command == "info":
            return _command_info(args)
        if args.command == "index-stats":
            return _command_index_stats(args)
        if args.command == "shard-stats":
            return _command_shard_stats(args)
        if args.command == "segment-stats":
            return _command_segment_stats(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "serve-http":
            return _command_serve_http(args)
        if args.command == "doctor":
            return _command_doctor(args)
        if args.command == "ingest":
            return _command_ingest(args)
        if args.command == "experiment":
            return _command_experiment(args)
        if args.command == "bench":
            return _command_bench(args)
        if args.command == "replay":
            return _command_replay(args)
        parser.error(f"unknown command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------
# Commands
# --------------------------------------------------------------------------
def _command_index(args: argparse.Namespace) -> int:
    inputs = [Path(item) for item in args.inputs]
    if len(inputs) == 1 and inputs[0].is_dir():
        collection = load_directory(
            inputs[0], pattern=args.glob, strip_tags=args.strip_tags
        )
    else:
        collection = load_text_files(inputs, strip_tags=args.strip_tags)
    save_collection(collection, args.output)
    summary = collection.describe()
    print(
        f"indexed {summary['nodes']} documents "
        f"({summary['tokens']} tokens, vocabulary {summary['vocabulary']}) "
        f"-> {args.output}"
    )
    return 0


def _load_engine(args: argparse.Namespace, cache_size: int | None = None) -> FullTextEngine:
    """Build a (possibly sharded, possibly live) engine from an index file."""
    scoring = None if args.scoring == "none" else args.scoring
    collection = load_collection(args.index_file)
    return FullTextEngine.from_collection(
        collection,
        scoring=scoring,
        access_mode=args.access_mode,
        shards=args.shards,
        partitioner=args.partitioner,
        cache_size=cache_size,
        live=getattr(args, "live", False),
        flush_threshold=getattr(args, "flush_threshold", None),
        workers=getattr(args, "workers", "thread"),
        optimizer=getattr(args, "optimizer", "static"),
    )


def _command_search(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    results = engine.search(
        args.query, language=args.language, engine=args.engine, top_k=args.top_k
    )
    print(results.summary())
    if results.metadata.get("shards"):
        print(f"(scatter-gather over {results.metadata['shards']} shards)")
    collection = engine.collection
    for rank, result in enumerate(results, start=1):
        title = collection.get(result.node_id).metadata.get("title", "")
        label = f" [{title}]" if title else ""
        print(f"{rank:3d}. node {result.node_id}{label}  score={result.score:.4f}")
        print(f"     {result.preview}")
    engine.close()
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    query = parse_query(args.query, args.language)
    from repro.engine.executor import NATIVE_ENGINE

    print(f"query          : {query.text}")
    print(f"language class : {query.language_class.value}")
    print(f"engine         : {NATIVE_ENGINE[query.language_class]}")
    measures = query.measures()
    print(
        "measures       : "
        f"toks_Q={measures['toks_Q']} preds_Q={measures['preds_Q']} "
        f"ops_Q={measures['ops_Q']}"
    )
    print(f"calculus       : {query.to_calculus().to_text()}")
    if getattr(args, "index", None) is None:
        return 0
    from repro.telemetry.explain import render_explain

    args.index_file = args.index
    engine = _load_engine(args)
    try:
        description = engine.explain(
            args.query,
            language=args.language,
            analyze=True,
            engine=args.engine,
            top_k=args.top_k,
        )
        print()
        print(render_explain(description["analyze"]))
    finally:
        engine.close()
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    if args.target:
        from urllib.error import URLError
        from urllib.request import urlopen

        target = args.target
        if not target.startswith(("http://", "https://")):
            target = f"http://{target}"
        if not target.rstrip("/").endswith("/metrics"):
            target = target.rstrip("/") + "/metrics"
        try:
            with urlopen(target, timeout=args.timeout) as response:
                sys.stdout.write(response.read().decode("utf-8"))
        except URLError as exc:
            reason = exc.reason
            if isinstance(reason, ConnectionRefusedError):
                print(
                    f"error: connection refused by {target} -- is "
                    f"'repro serve-http' running there?",
                    file=sys.stderr,
                )
            elif isinstance(reason, TimeoutError):
                print(
                    f"error: {target} did not answer within "
                    f"{args.timeout:g} s (--timeout raises the limit)",
                    file=sys.stderr,
                )
            else:
                print(f"error: cannot scrape {target}: {reason}", file=sys.stderr)
            return 1
        except (OSError, ValueError) as exc:
            print(f"error: cannot scrape {target}: {exc}", file=sys.stderr)
            return 1
        return 0
    from repro.telemetry import render_metrics

    sys.stdout.write(render_metrics())
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.bench.perf import (
        available_suites,
        compare_results,
        render_comparison,
        run_suites,
    )

    if args.bench_command == "run":
        if args.list_suites:
            for name, description in available_suites():
                print(f"{name:<14} {description}")
            return 0
        written = run_suites(
            args.suite,
            quick=args.quick,
            out_dir=args.out_dir,
            profile_top=args.profile,
            optimizer=args.optimizer,
            echo=print,
        )
        print(f"wrote {len(written)} result file(s) to {args.out_dir}")
        return 0
    if args.bench_command == "compare":
        deltas, notes, regressions = compare_results(
            args.baseline, args.current, args.fail_over
        )
        print(render_comparison(deltas, notes, regressions, args.fail_over))
        return 1 if regressions else 0
    raise ReproError(f"unknown bench command {args.bench_command!r}")


def _command_replay(args: argparse.Namespace) -> int:
    from repro.bench.capture import (
        load_workload,
        query_pool_from_collection,
        synthetic_zipf_workload,
    )
    from repro.bench.replay import (
        EngineTarget,
        HttpTarget,
        render_replay_report,
        replay_workload,
        write_replay_report,
    )

    if (args.workload is None) == (args.synthetic_zipf is None):
        raise ReproError(
            "pass exactly one workload source: a capture file, or "
            "--synthetic-zipf SKEW"
        )
    scoring = None if args.scoring == "none" else args.scoring
    collection = load_collection(args.index_file)
    if args.workload is not None:
        records = load_workload(args.workload)
        source = args.workload
    else:
        pool = query_pool_from_collection(collection, size=args.pool_size)
        records = synthetic_zipf_workload(
            pool,
            args.count,
            args.synthetic_zipf,
            top_k=args.top_k,
            seed=args.seed,
        )
        source = f"synthetic zipf (skew {args.synthetic_zipf:g})"
    # The reference engine is the plain, uncached direct path -- the ground
    # truth every served result must match bit-for-bit.
    reference = FullTextEngine.from_collection(
        collection, scoring=scoring, access_mode=args.access_mode
    )
    target_engine = None
    try:
        if args.url:
            target = HttpTarget(args.url, timeout=args.timeout)
        else:
            target_engine = FullTextEngine.from_collection(
                collection,
                scoring=scoring,
                access_mode=args.access_mode,
                cache_size=args.cache_size if args.cache_size > 0 else None,
                optimizer=args.optimizer,
            )
            target = EngineTarget(target_engine)
        print(f"replay: {len(records)} record(s) from {source}")
        report = replay_workload(
            records,
            target,
            reference_engine=None if args.no_verify else reference,
            warm_passes=max(args.warm_passes, 0),
            verify=not args.no_verify,
            echo=print,
        )
    finally:
        reference.close()
        if target_engine is not None:
            target_engine.close()
    print(render_replay_report(report))
    if args.json_out:
        path = write_replay_report(report, args.json_out)
        print(f"report written to {path}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    index = load_index(args.index_file, validate=False)
    summary = index.collection.describe()
    params = index.statistics.complexity_parameters()
    print(f"collection     : {index.collection.name}")
    for key, value in summary.items():
        print(f"{key:22}: {value}")
    print("complexity parameters:")
    for key, value in params.as_dict().items():
        print(f"  {key:20}: {value}")
    print("analytic bounds (3 tokens, 2 predicates, 4 operations):")
    for name, bound in hierarchy_table(params, QueryParameters(3, 2, 4)):
        print(f"  {name:11}: {bound:,.0f} operations")
    return 0


def _command_index_stats(args: argparse.Namespace) -> int:
    index = load_index(args.index_file, validate=False)
    total_postings = sum(pl.document_frequency() for pl in index.posting_lists())
    total_positions = sum(pl.total_positions() for pl in index.posting_lists())
    footprint = index.memory_footprint()
    print(f"collection     : {index.collection.name}")
    print(f"nodes          : {index.node_count()}")
    print(f"tokens         : {len(index.tokens())}")
    print(f"postings       : {total_postings}")
    print(f"positions      : {total_positions}")
    print(f"any-list size  : {len(index.any_list())} entries, "
          f"{index.any_list().total_positions()} positions")
    print("columnar memory footprint:")
    for key, value in footprint.items():
        print(f"  {key:20}: {value:,} bytes")
    if total_positions:
        per_position = footprint["total_bytes"] / (
            total_positions + index.any_list().total_positions()
        )
        print(f"  bytes/position      : {per_position:.1f}")
    packed_bytes = packed_index_bytes(index)
    source_bytes = Path(args.index_file).stat().st_size
    print("on-disk formats:")
    print(f"  source file         : {source_bytes:,} bytes ({args.index_file})")
    print(f"  packed v4           : {packed_bytes:,} bytes")
    if source_bytes:
        print(f"  packed/source ratio : {packed_bytes / source_bytes:.2f}")
    if footprint["total_bytes"]:
        print(
            f"  packed/memory ratio : "
            f"{packed_bytes / footprint['total_bytes']:.2f}"
        )
    return 0


def _command_shard_stats(args: argparse.Namespace) -> int:
    collection = load_collection(args.index_file)
    sharded = ShardedIndex(collection, max(args.shards, 1), args.partitioner)
    stats = sharded.shard_stats()
    print(f"collection     : {collection.name}")
    print(f"partitioner    : {sharded.partitioner.describe()}")
    print(f"shards         : {sharded.num_shards}")
    header = f"{'shard':>5} {'nodes':>8} {'tokens':>8} {'postings':>10} {'positions':>10} {'memory':>12}"
    print(header)
    for row in stats:
        print(
            f"{row['shard']:>5} {row['nodes']:>8} {row['tokens']:>8} "
            f"{row['postings']:>10} {row['positions']:>10} "
            f"{row['memory_bytes']:>10,} B"
        )
    balance = balance_report(row["nodes"] for row in stats)
    print(
        f"balance        : min={balance['min']} max={balance['max']} "
        f"mean={balance['mean']:.1f} imbalance={balance['imbalance'] * 100:.1f}%"
    )
    footprint = sharded.memory_footprint()
    print(
        f"memory         : {footprint['total_bytes']:,} B total "
        f"(node ids {footprint['node_ids_bytes']:,} B, "
        f"offsets {footprint['offsets_bytes']:,} B, "
        f"bounds {footprint['entry_bounds_bytes']:,} B, "
        f"structure {footprint['structure_bytes']:,} B)"
    )
    packed_total = sum(
        packed_index_bytes(shard.index) for shard in sharded.shards
    )
    source_bytes = Path(args.index_file).stat().st_size
    line = (
        f"packed v4      : {packed_total:,} B over {sharded.num_shards} "
        f"shard spill files"
    )
    if source_bytes:
        line += f" ({packed_total / source_bytes:.2f}x the source file)"
    print(line)
    return 0


def _print_segment_rows(rows: list[dict], with_shard: bool = False) -> None:
    shard_col = f"{'shard':>5} " if with_shard else ""
    print(
        f"{shard_col}{'segment':>8} {'docs':>8} {'live':>8} {'tombs':>6} "
        f"{'tokens':>8} {'positions':>10} {'memory':>12}"
    )
    for row in rows:
        label = "memtable" if row["generation"] < 0 else str(row["generation"])
        shard_val = f"{row['shard']:>5} " if with_shard else ""
        print(
            f"{shard_val}{label:>8} {row['docs']:>8} {row['live_docs']:>8} "
            f"{row['tombstones']:>6} {row['tokens']:>8} {row['positions']:>10} "
            f"{row['memory_bytes']:>10,} B"
        )


def _command_segment_stats(args: argparse.Namespace) -> int:
    from repro.segments import LiveIndex

    path = Path(args.index_path)
    kwargs = {}
    if args.flush_threshold is not None:
        kwargs["flush_threshold"] = args.flush_threshold
    if path.is_dir():
        index = LiveIndex.open(path, **kwargs)
    else:
        index = LiveIndex(load_collection(path), **kwargs)
    try:
        rows = index.segment_stats()
        print(f"live documents : {index.node_count()}")
        print(f"segments       : {len(rows)}")
        _print_segment_rows(rows)
        footprint = index.memory_footprint()
        print(f"memory         : {footprint['total_bytes']:,} B total")
    finally:
        index.close()
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    if args.base is not None:
        collection = load_collection(args.base)
    else:
        from repro.corpus import Collection

        collection = Collection({}, "ingested")
    scoring = None if args.scoring == "none" else args.scoring
    engine = FullTextEngine.from_collection(
        collection,
        scoring=scoring,
        access_mode=args.access_mode,
        shards=args.shards,
        partitioner=args.partitioner,
        live=True,
        live_dir=args.data_dir,
        flush_threshold=args.flush_threshold,
    )
    queries: list[str] = []
    if args.queries is not None:
        queries = [
            line.strip()
            for line in Path(args.queries).read_text(encoding="utf-8").splitlines()
            if line.strip() and not line.startswith("#")
        ]
    stream = sys.stdin if args.docs == "-" else open(args.docs, "r", encoding="utf-8")
    ingested = 0
    recorder = LatencyRecorder()
    started = time.perf_counter()
    try:
        for line in stream:
            text = line.strip()
            if not text:
                continue
            engine.add_document(text)
            ingested += 1
            if queries and ingested % max(args.query_every, 1) == 0:
                for query in queries:
                    q_started = time.perf_counter()
                    engine.search(query, top_k=5)
                    recorder.record((time.perf_counter() - q_started) * 1000.0)
        elapsed = time.perf_counter() - started
    finally:
        if stream is not sys.stdin:
            stream.close()
    rate = ingested / elapsed if elapsed > 0 else 0.0
    print(f"ingested {ingested} documents in {elapsed:.2f}s ({rate:,.0f} docs/s)")
    if recorder.count:
        print(
            f"served {recorder.count} queries during ingest: "
            f"p50={_fmt_ms(recorder.percentile_ms(0.50))} "
            f"p95={_fmt_ms(recorder.percentile_ms(0.95))}"
        )
    rows = engine.segment_stats()
    print(f"segments after ingest: {len(rows)}")
    if args.compact:
        report = engine.compact()
        rows = engine.segment_stats()
        print(
            f"compacted: merged {report['segments_merged']} segments in "
            f"{report['merges']} merge(s); {len(rows)} segment(s) remain"
        )
    _print_segment_rows(rows, with_shard=args.shards > 1)
    engine.close()
    return 0


def _serve_live_command(engine: FullTextEngine, command: str) -> bool:
    """Execute a live mutation command; returns False when unrecognised."""
    parts = command.split(None, 1)
    head = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    if head == ":add":
        if not rest:
            print("usage: :add TEXT")
            return True
        node_id = engine.add_document(rest)
        print(f"added node {node_id}")
        return True
    if head == ":update":
        pieces = rest.split(None, 1)
        if len(pieces) < 2 or not pieces[0].isdigit():
            print("usage: :update ID TEXT")
            return True
        engine.update_document(int(pieces[0]), pieces[1])
        print(f"updated node {pieces[0]}")
        return True
    if head == ":delete":
        if not rest.strip().isdigit():
            print("usage: :delete ID")
            return True
        removed = engine.delete_document(int(rest.strip()))
        print(f"deleted node {rest.strip()}" if removed else f"no node {rest.strip()}")
        return True
    if head == ":flush":
        engine.flush()
        print(f"flushed; {len(engine.segment_stats())} segment(s)")
        return True
    if head == ":compact":
        report = engine.compact()
        print(
            f"compacted {report['segments_merged']} segment(s) in "
            f"{report['merges']} merge(s); {len(engine.segment_stats())} remain"
        )
        return True
    if head == ":segments":
        _print_segment_rows(engine.segment_stats(), with_shard=engine.num_shards > 1)
        return True
    return False


def _command_serve(args: argparse.Namespace) -> int:
    cache_size = args.cache_size if args.cache_size > 0 else None
    engine = _load_engine(args, cache_size=cache_size)
    interactive = sys.stdin.isatty()
    if interactive:  # pragma: no cover - exercised manually
        live_note = ", live" if getattr(args, "live", False) else ""
        print(
            f"repro serve: {engine.collection.name!r}, "
            f"{engine.num_shards} shard(s), scoring={args.scoring}, "
            f"cache={args.cache_size}{live_note}"
        )
        print("one query per line; ':stats' for statistics, ':quit' to exit")
        if engine.is_live:
            print(
                "live commands: ':add TEXT', ':update ID TEXT', ':delete ID', "
                "':flush', ':compact', ':segments'"
            )
    # The recorder keeps percentiles over a bounded window of recent
    # requests (the mean and count cover everything served); it is the same
    # accounting the HTTP server reports, so both frontends agree.
    recorder = LatencyRecorder()
    # The final summary must appear exactly once however the loop ends --
    # ':quit', stream EOF, Ctrl-C, or an unexpected error -- so it lives in
    # the finally block behind a once-guard.
    summary_printed = False

    def print_final_summary() -> None:
        nonlocal summary_printed
        if summary_printed:
            return
        summary_printed = True
        print()
        _print_serve_stats(engine, recorder)

    try:
        for line in sys.stdin:
            query = line.strip()
            if not query or query.startswith("#"):
                continue
            if query in (":quit", ":q", ":exit"):
                break
            if query in (":stats", ":cache"):
                _print_serve_stats(engine, recorder)
                continue
            if query.startswith(":") and engine.is_live:
                try:
                    if _serve_live_command(engine, query):
                        continue
                except ReproError as exc:
                    print(f"error: {exc}")
                    continue
            started = time.perf_counter()
            try:
                results = engine.search(
                    query, language=args.language, top_k=args.top_k
                )
            except ReproError as exc:
                print(f"error: {exc}")
                continue
            # Wall clock around the call, not results.elapsed_seconds: a
            # cache hit carries the *original* evaluation time, while the
            # request it served took microseconds.
            latency = (time.perf_counter() - started) * 1000.0
            recorder.record(latency)
            cache_note = ""
            if results.metadata.get("cache") == "hit":
                cache_note = f" [cached, {latency:.2f} ms]"
            print(f"> {results.summary()}{cache_note}")
            for rank, result in enumerate(results, start=1):
                print(
                    f"  {rank:2d}. node {result.node_id}  "
                    f"score={result.score:.4f}  {result.preview}"
                )
    except (KeyboardInterrupt, EOFError):  # pragma: no cover - interactive
        print()
    finally:
        print_final_summary()
        engine.close()
    return 0


def _print_serve_stats(engine: FullTextEngine, recorder: LatencyRecorder) -> None:
    snapshot = recorder.snapshot()
    print(
        f"served {snapshot['count']} queries over {engine.num_shards} "
        f"shard(s): {format_latency_summary(snapshot)}"
    )
    cache = engine.cache_stats()
    print(
        f"cache: size={cache['size']}/{cache['capacity']} "
        f"hits={cache['hits']} misses={cache['misses']} "
        f"hit_rate={cache['hit_rate'] * 100:.1f}% "
        f"evictions={cache['evictions']} invalidations={cache['invalidations']}"
    )


def _command_serve_http(args: argparse.Namespace) -> int:
    from repro.server import ServerConfig, serve

    cache_size = args.cache_size if args.cache_size > 0 else None
    path = Path(args.index_file)
    if path.is_dir():
        # A live data directory (as written by `repro ingest --data-dir`):
        # reopen it in place instead of loading a collection file.
        if args.shards > 1 or args.workers != "thread":
            print(
                "error: serving a live data directory supports neither "
                "--shards > 1 nor --workers process",
                file=sys.stderr,
            )
            return 1
        from repro.segments import LiveIndex

        live_options = {}
        if args.flush_threshold is not None:
            live_options["flush_threshold"] = args.flush_threshold
        engine = FullTextEngine(
            LiveIndex.open(path, **live_options),
            scoring=None if args.scoring == "none" else args.scoring,
            access_mode=args.access_mode,
            optimizer=args.optimizer,
        )
    else:
        engine = _load_engine(args, cache_size=cache_size)
    from repro.telemetry import ReopenableLog, install_sighup_reopen

    # File logs are SIGHUP-reopenable so logrotate works without dropped
    # lines; '-' and the default stay plain stderr.
    log_stream = None
    if args.access_log == "-":
        log_stream = sys.stderr
    elif args.access_log:
        log_stream = ReopenableLog(args.access_log)
    slow_stream = None
    if args.slow_query_log == "-":
        slow_stream = sys.stderr
    elif args.slow_query_log:
        slow_stream = ReopenableLog(args.slow_query_log)
    capture = None
    if args.capture:
        from repro.bench.capture import WorkloadCapture

        capture = WorkloadCapture(args.capture, sample=args.capture_sample)
    if log_stream is not None or slow_stream is not None:
        install_sighup_reopen()
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch,
        max_linger_ms=max(args.linger_ms, 0.0),
        max_inflight=args.max_inflight,
        default_timeout_ms=args.timeout_ms,
        default_top_k=args.top_k,
        drain_grace_seconds=args.drain_grace,
        access_log=log_stream,
        slow_query_ms=args.slow_query_ms,
        slow_query_log=slow_stream,
        capture=capture,
    )
    try:
        return serve(engine, config)
    finally:
        engine.close()
        if capture is not None:
            capture.close()
            print(
                f"capture: {capture.recorded} record(s) written to "
                f"{capture.path}"
                + (
                    f" ({capture.skipped} sampled out)"
                    if capture.skipped
                    else ""
                ),
                flush=True,
            )
        for stream in (log_stream, slow_stream):
            if stream is not None and stream is not sys.stderr:
                stream.close()


def _command_doctor(args: argparse.Namespace) -> int:
    from repro.server.doctor import render_report, run_doctor

    host = args.host
    if host is None and args.port is not None:
        host = "127.0.0.1"
    results = run_doctor(args.index_path, host=host, port=args.port)
    print(render_report(results))
    return 1 if any(result.failed for result in results) else 0


def _command_experiment(args: argparse.Namespace) -> int:
    scale = {
        "smoke": FigureScale.smoke,
        "laptop": FigureScale.laptop,
        "paper": FigureScale.paper,
    }[args.scale]()
    if args.figure == "3":
        from repro.corpus.synthetic import generate_inex_like_collection

        collection = generate_inex_like_collection(
            num_nodes=scale.num_nodes, pos_per_entry=scale.pos_per_entry
        )
        params = InvertedIndex(collection).statistics.complexity_parameters()
        print("Figure 3: analytic complexity hierarchy")
        for name, bound in hierarchy_table(params, QueryParameters(3, 2, 4)):
            print(f"  {name:11}: {bound:,.0f} operations")
        return 0
    if args.figure == "all":
        tables = run_all(scale)
        print(render_report(list(tables.values())))
        return 0
    figure = ALL_FIGURES[f"figure{args.figure}"]
    table = figure(scale)
    print(table_to_text(table))
    summary = shape_summary(table)
    if summary:
        print()
        print("\n".join(summary))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
