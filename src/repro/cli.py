"""Command-line interface.

The CLI exposes the typical lifecycle of the library without writing Python:

* ``repro index``       -- tokenize documents and persist a collection/index;
* ``repro search``      -- run a BOOL / DIST / COMP query against a saved index
  (``--access-mode fast`` switches to seek-based skipping);
* ``repro explain``     -- show a query's language class, engine, measures and
  calculus form without evaluating it;
* ``repro info``        -- corpus statistics and complexity parameters of an index;
* ``repro index-stats`` -- posting-storage statistics and the memory footprint
  of the columnar arrays;
* ``repro experiment``  -- regenerate the paper's figures as text tables.

Invoke as ``python -m repro ...`` (or the ``repro`` console script when the
package is installed with entry points enabled).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.bench.complexity import QueryParameters, hierarchy_table
from repro.bench.figures import ALL_FIGURES, FigureScale, run_all
from repro.bench.reporting import render_report, shape_summary, table_to_text
from repro.core.engine import FullTextEngine
from repro.core.query import parse_query
from repro.corpus.loaders import load_directory, load_text_files
from repro.exceptions import ReproError
from repro.index.inverted_index import InvertedIndex
from repro.index.storage import load_index, save_collection


def build_argument_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for documentation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Full-text search languages (EDBT 2006 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    index_cmd = subparsers.add_parser(
        "index", help="tokenize documents and write a collection file"
    )
    index_cmd.add_argument("inputs", nargs="+", help="files or a directory to index")
    index_cmd.add_argument("-o", "--output", required=True, help="output .json[.gz] file")
    index_cmd.add_argument(
        "--glob", default="*.txt", help="file pattern when indexing a directory"
    )
    index_cmd.add_argument(
        "--strip-tags", action="store_true", help="strip XML/HTML tags before indexing"
    )

    search_cmd = subparsers.add_parser("search", help="run a query against a saved index")
    search_cmd.add_argument("index_file", help="collection file written by 'repro index'")
    search_cmd.add_argument("query", help="the query text")
    search_cmd.add_argument(
        "--language", default="auto", choices=["auto", "bool", "dist", "comp"]
    )
    search_cmd.add_argument(
        "--engine", default="auto", choices=["auto", "bool", "ppred", "npred", "comp"]
    )
    search_cmd.add_argument(
        "--scoring", default="tfidf", choices=["none", "tfidf", "probabilistic"]
    )
    search_cmd.add_argument("--top-k", type=int, default=10)
    search_cmd.add_argument(
        "--access-mode",
        default="paper",
        choices=["paper", "fast"],
        help="'paper' charges seeks as sequential scans (the paper's cost "
        "model); 'fast' uses galloping seeks (the production path)",
    )

    explain_cmd = subparsers.add_parser("explain", help="classify a query without running it")
    explain_cmd.add_argument("query", help="the query text")
    explain_cmd.add_argument(
        "--language", default="auto", choices=["auto", "bool", "dist", "comp"]
    )

    info_cmd = subparsers.add_parser("info", help="statistics of a saved index")
    info_cmd.add_argument("index_file")

    index_stats_cmd = subparsers.add_parser(
        "index-stats",
        help="posting-storage statistics and columnar memory footprint",
    )
    index_stats_cmd.add_argument("index_file")

    experiment_cmd = subparsers.add_parser(
        "experiment", help="regenerate the paper's figures"
    )
    experiment_cmd.add_argument(
        "--figure",
        default="all",
        choices=["all", "3", "5", "6", "7", "8"],
        help="which figure to regenerate",
    )
    experiment_cmd.add_argument(
        "--scale", default="laptop", choices=["smoke", "laptop", "paper"]
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_argument_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "index":
            return _command_index(args)
        if args.command == "search":
            return _command_search(args)
        if args.command == "explain":
            return _command_explain(args)
        if args.command == "info":
            return _command_info(args)
        if args.command == "index-stats":
            return _command_index_stats(args)
        if args.command == "experiment":
            return _command_experiment(args)
        parser.error(f"unknown command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------
# Commands
# --------------------------------------------------------------------------
def _command_index(args: argparse.Namespace) -> int:
    inputs = [Path(item) for item in args.inputs]
    if len(inputs) == 1 and inputs[0].is_dir():
        collection = load_directory(
            inputs[0], pattern=args.glob, strip_tags=args.strip_tags
        )
    else:
        collection = load_text_files(inputs, strip_tags=args.strip_tags)
    save_collection(collection, args.output)
    summary = collection.describe()
    print(
        f"indexed {summary['nodes']} documents "
        f"({summary['tokens']} tokens, vocabulary {summary['vocabulary']}) "
        f"-> {args.output}"
    )
    return 0


def _command_search(args: argparse.Namespace) -> int:
    index = load_index(args.index_file, validate=False)
    scoring = None if args.scoring == "none" else args.scoring
    engine = FullTextEngine(index, scoring=scoring, access_mode=args.access_mode)
    results = engine.search(
        args.query, language=args.language, engine=args.engine, top_k=args.top_k
    )
    print(results.summary())
    for rank, result in enumerate(results, start=1):
        title = index.collection.get(result.node_id).metadata.get("title", "")
        label = f" [{title}]" if title else ""
        print(f"{rank:3d}. node {result.node_id}{label}  score={result.score:.4f}")
        print(f"     {result.preview}")
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    query = parse_query(args.query, args.language)
    from repro.engine.executor import NATIVE_ENGINE

    print(f"query          : {query.text}")
    print(f"language class : {query.language_class.value}")
    print(f"engine         : {NATIVE_ENGINE[query.language_class]}")
    measures = query.measures()
    print(
        "measures       : "
        f"toks_Q={measures['toks_Q']} preds_Q={measures['preds_Q']} "
        f"ops_Q={measures['ops_Q']}"
    )
    print(f"calculus       : {query.to_calculus().to_text()}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    index = load_index(args.index_file, validate=False)
    summary = index.collection.describe()
    params = index.statistics.complexity_parameters()
    print(f"collection     : {index.collection.name}")
    for key, value in summary.items():
        print(f"{key:22}: {value}")
    print("complexity parameters:")
    for key, value in params.as_dict().items():
        print(f"  {key:20}: {value}")
    print("analytic bounds (3 tokens, 2 predicates, 4 operations):")
    for name, bound in hierarchy_table(params, QueryParameters(3, 2, 4)):
        print(f"  {name:11}: {bound:,.0f} operations")
    return 0


def _command_index_stats(args: argparse.Namespace) -> int:
    index = load_index(args.index_file, validate=False)
    total_postings = sum(pl.document_frequency() for pl in index.posting_lists())
    total_positions = sum(pl.total_positions() for pl in index.posting_lists())
    footprint = index.memory_footprint()
    print(f"collection     : {index.collection.name}")
    print(f"nodes          : {index.node_count()}")
    print(f"tokens         : {len(index.tokens())}")
    print(f"postings       : {total_postings}")
    print(f"positions      : {total_positions}")
    print(f"any-list size  : {len(index.any_list())} entries, "
          f"{index.any_list().total_positions()} positions")
    print("columnar memory footprint:")
    for key, value in footprint.items():
        print(f"  {key:20}: {value:,} bytes")
    if total_positions:
        per_position = footprint["total_bytes"] / (
            total_positions + index.any_list().total_positions()
        )
        print(f"  bytes/position      : {per_position:.1f}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    scale = {
        "smoke": FigureScale.smoke,
        "laptop": FigureScale.laptop,
        "paper": FigureScale.paper,
    }[args.scale]()
    if args.figure == "3":
        from repro.corpus.synthetic import generate_inex_like_collection

        collection = generate_inex_like_collection(
            num_nodes=scale.num_nodes, pos_per_entry=scale.pos_per_entry
        )
        params = InvertedIndex(collection).statistics.complexity_parameters()
        print("Figure 3: analytic complexity hierarchy")
        for name, bound in hierarchy_table(params, QueryParameters(3, 2, 4)):
            print(f"  {name:11}: {bound:,.0f} operations")
        return 0
    if args.figure == "all":
        tables = run_all(scale)
        print(render_report(list(tables.values())))
        return 0
    figure = ALL_FIGURES[f"figure{args.figure}"]
    table = figure(scale)
    print(table_to_text(table))
    summary = shape_summary(table)
    if summary:
        print()
        print("\n".join(summary))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
