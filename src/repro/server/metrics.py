"""Deprecated alias of :mod:`repro.telemetry.latency`.

The latency recorder moved into the telemetry subsystem (percentile windows
are telemetry, not an HTTP-server detail).  This shim keeps the historical
import path working; new code should import from :mod:`repro.telemetry`.
"""

from __future__ import annotations

import warnings

from repro.telemetry.latency import (  # noqa: F401  (re-exports)
    DEFAULT_WINDOW,
    LatencyRecorder,
    format_latency_summary,
    percentile,
)

warnings.warn(
    "repro.server.metrics has moved to repro.telemetry; "
    "import LatencyRecorder/percentile from repro.telemetry instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "DEFAULT_WINDOW",
    "LatencyRecorder",
    "format_latency_summary",
    "percentile",
]
