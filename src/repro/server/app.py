"""The asyncio HTTP/JSON query service.

:class:`QueryServer` puts a network front end on a
:class:`~repro.core.engine.FullTextEngine` using only the standard library:

* **Endpoints.**  ``GET/POST /search`` (query text, ``top_k``, ``language``,
  ``timeout_ms``), ``GET /health`` (liveness + version) and ``GET /stats``
  (latency histograms, batching shape, and the engine's shard / cache /
  segment / packed statistics).
* **Micro-batching.**  Every search goes through the
  :class:`~repro.server.batching.BatchingDispatcher`: concurrent requests
  coalesce into single ``search_many`` calls on a dedicated engine thread,
  and each client gets back exactly what a direct ``engine.search`` with its
  own ``top_k`` would have returned (ids, scores and order bit-identical).
* **Deadlines.**  Every request carries a deadline (``timeout_ms``,
  defaulting to :attr:`ServerConfig.default_timeout_ms`).  A request that
  cannot be answered in time receives a structured ``504`` JSON error --
  and the connection stays usable for the next request; evaluation already
  in flight finishes on the engine thread and is discarded.
* **Admission control.**  At most :attr:`ServerConfig.max_inflight`
  requests may be queued or executing; the next one is refused immediately
  with ``429`` (and ``503`` once draining), so the queue cannot grow
  without bound and no socket is ever left hanging.
* **Observability.**  Per-endpoint latency recorders and Prometheus
  exposition at ``/metrics`` (:mod:`repro.telemetry`), request ids stamped
  into responses/errors/access logs, per-request span traces on explain
  and slow-query paths, and optional JSONL access logs, one object per
  line.
* **Graceful drain.**  On SIGTERM/SIGINT the listener closes, in-flight
  requests finish (bounded by :attr:`ServerConfig.drain_grace_seconds`),
  idle keep-alive connections are torn down, and :func:`serve` returns 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import __version__
from repro.core.engine import FullTextEngine
from repro.exceptions import ReproError
from repro.server.batching import (
    BatchingDispatcher,
    DeadlineExceeded,
    DispatcherClosed,
)
from repro.server.http import (
    MAX_HEADER_BYTES,
    ProtocolError,
    Request,
    error_payload,
    read_request,
    render_response,
    render_text_response,
)
from repro.telemetry import SlowQueryLog, Trace, instruments, new_trace_id
from repro.telemetry.latency import LatencyRecorder, _fmt_ms
from repro.telemetry.registry import render_metrics

#: Endpoints with their own latency recorder in ``/stats``.
TRACKED_PATHS = ("/search", "/health", "/stats", "/metrics")

#: Content type of the Prometheus text exposition served at ``/metrics``.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _TextBody(str):
    """Marker: a response body already rendered as text, not JSON."""

    content_type = PROMETHEUS_CONTENT_TYPE


@dataclass
class ServerConfig:
    """Tunables of the HTTP query service (all have serving-safe defaults)."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Micro-batching: largest ``search_many`` batch, and how long the
    #: dispatcher lingers for stragglers after the first request arrives.
    max_batch_size: int = 32
    max_linger_ms: float = 2.0
    #: Admission control: requests queued or executing before 429s start.
    max_inflight: int = 64
    #: Deadline applied when a request does not send ``timeout_ms``.
    default_timeout_ms: float = 30_000.0
    #: ``top_k`` applied when a request does not send one.
    default_top_k: int = 10
    #: Ceiling on any requested ``top_k`` (bounds per-request work).
    max_top_k: int = 1_000
    #: How long SIGTERM waits for in-flight requests before cutting them.
    drain_grace_seconds: float = 10.0
    #: Idle keep-alive connections are closed after this long.
    idle_timeout_seconds: float = 120.0
    #: Writable text stream receiving one JSON object per request (or None).
    access_log: "object | None" = field(default=None, repr=False)
    #: Searches slower than this (milliseconds) dump their full trace to the
    #: slow-query log; ``None`` disables the log entirely.
    slow_query_ms: "float | None" = None
    #: Writable text stream for slow-query JSONL dumps (defaults to the
    #: access log stream, else stderr, when ``slow_query_ms`` is set).
    slow_query_log: "object | None" = field(default=None, repr=False)
    #: Optional :class:`~repro.bench.capture.WorkloadCapture` recording
    #: sampled /search traffic into a replayable JSONL workload.
    capture: "object | None" = field(default=None, repr=False)


class QueryServer:
    """One engine behind an asyncio HTTP front end.  See the module docstring."""

    def __init__(
        self, engine: FullTextEngine, config: ServerConfig | None = None
    ) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self._server: asyncio.base_events.Server | None = None
        self._engine_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self.dispatcher = BatchingDispatcher(
            engine,
            max_batch_size=self.config.max_batch_size,
            max_linger_ms=self.config.max_linger_ms,
            engine_pool=self._engine_pool,
            # Adaptive linger: once a batch holds every admitted /search
            # request, waiting longer cannot add stragglers, only latency.
            pending_probe=lambda: self._inflight,
        )
        self._started = time.monotonic()
        self._draining = False
        self._inflight = 0  # /search requests queued or executing
        self._active = 0  # requests of any kind currently being served
        self._idle: asyncio.Event | None = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._connections_total = 0
        self._requests_total = 0
        self._status_counts: dict[int, int] = {}
        self._latency = {path: LatencyRecorder() for path in TRACKED_PATHS}
        self._other_latency = LatencyRecorder()
        self._slowlog: SlowQueryLog | None = None
        if self.config.slow_query_ms is not None:
            import sys

            stream = (
                self.config.slow_query_log
                or self.config.access_log
                or sys.stderr
            )
            self._slowlog = SlowQueryLog(stream, self.config.slow_query_ms)
        self._packed_bytes: int | None = None  # memoised /stats estimate
        self.port: int | None = None  # bound port, known after start()
        self._stop_requested: asyncio.Event | None = None
        self._shutdown_complete: asyncio.Event | None = None
        self._shutting_down = False

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind the listener and start the dispatcher; sets :attr:`port`."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._stop_requested = asyncio.Event()
        self._shutdown_complete = asyncio.Event()
        self.dispatcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=2 * MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_signalled(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain and return (the CLI path)."""
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._stop_requested.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix event loops: rely on KeyboardInterrupt
        try:
            await self._stop_requested.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.shutdown()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, tear everything down.

        The drain order matters: the listener closes first (no new
        connections), in-flight requests get up to ``drain_grace_seconds``
        to finish, *then* the dispatcher stops (it still evaluates whatever
        those requests queued), and only afterwards are idle keep-alive
        connections cancelled and the engine thread released.

        Idempotent and safe to call from anywhere on the loop: it also
        wakes :meth:`serve_until_signalled`, and a concurrent second call
        just awaits the first one's completion.
        """
        if self._stop_requested is not None:
            self._stop_requested.set()
        if self._shutting_down:
            if self._shutdown_complete is not None:
                await self._shutdown_complete.wait()
            return
        self._shutting_down = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._active and self._idle is not None:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), self.config.drain_grace_seconds
                )
            except asyncio.TimeoutError:  # cut stragglers after the grace
                pass
        await self.dispatcher.stop()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._engine_pool.shutdown(wait=True)
        if self._shutdown_complete is not None:
            self._shutdown_complete.set()

    # ------------------------------------------------------- connection loop
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections_total += 1
        peer = writer.get_extra_info("peername")
        remote = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), self.config.idle_timeout_seconds
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: close quietly
                except ProtocolError as exc:
                    request_id = new_trace_id()
                    await self._respond(
                        writer,
                        exc.status,
                        error_payload("protocol_error", exc.message, request_id),
                        keep_alive=False,
                        request_id=request_id,
                    )
                    break
                if request is None:
                    break  # clean EOF
                request_id = (
                    request.headers.get("x-request-id") or new_trace_id()
                )
                started = time.monotonic()
                self._enter()
                try:
                    status, payload = await self._dispatch(request, request_id)
                finally:
                    self._leave()
                latency_ms = (time.monotonic() - started) * 1000.0
                keep_alive = request.keep_alive and not self._draining
                await self._respond(
                    writer,
                    status,
                    payload,
                    keep_alive=keep_alive,
                    request_id=request_id,
                )
                self._observe(request, status, latency_ms, remote, request_id)
                if not keep_alive:
                    break
        except (asyncio.CancelledError, ConnectionResetError):
            pass  # drain teardown or client went away mid-write
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        keep_alive: bool,
        request_id: str | None = None,
    ) -> None:
        headers = {"X-Request-Id": request_id} if request_id else None
        if isinstance(payload, _TextBody):
            raw = render_text_response(
                status,
                str(payload),
                keep_alive=keep_alive,
                content_type=payload.content_type,
                extra_headers=headers,
            )
        else:
            raw = render_response(
                status, payload, keep_alive=keep_alive, extra_headers=headers
            )
        writer.write(raw)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client is gone; the connection loop will close up

    # --------------------------------------------------------------- routing
    async def _dispatch(
        self, request: Request, request_id: str | None = None
    ) -> tuple[int, dict]:
        try:
            if request.path == "/health":
                if request.method != "GET":
                    return 405, error_payload(
                        "method_not_allowed", "use GET", request_id
                    )
                return 200, self._health_payload()
            if request.path == "/stats":
                if request.method != "GET":
                    return 405, error_payload(
                        "method_not_allowed", "use GET", request_id
                    )
                return 200, await self._stats_payload()
            if request.path == "/metrics":
                if request.method != "GET":
                    return 405, error_payload(
                        "method_not_allowed", "use GET", request_id
                    )
                return 200, _TextBody(render_metrics())
            if request.path == "/search":
                if request.method not in ("GET", "POST"):
                    return 405, error_payload(
                        "method_not_allowed", "use GET or POST", request_id
                    )
                return await self._handle_search(request, request_id)
            return 404, error_payload(
                "not_found", f"no route {request.path!r}", request_id
            )
        except ProtocolError as exc:
            return exc.status, error_payload("bad_request", exc.message, request_id)
        except Exception as exc:  # never leave a request unanswered
            return 500, error_payload(
                "internal_error", f"{type(exc).__name__}: {exc}", request_id
            )

    # ---------------------------------------------------------------- search
    async def _handle_search(
        self, request: Request, request_id: str | None = None
    ) -> tuple[int, dict]:
        if self._draining:
            return 503, error_payload(
                "draining", "server is shutting down", request_id
            )
        if self._inflight >= self.config.max_inflight:
            return 429, error_payload(
                "overloaded",
                f"{self._inflight} requests in flight "
                f"(limit {self.config.max_inflight}); retry later",
                request_id,
            )
        try:
            text, top_k, language, engine_choice, timeout_ms, explain = (
                self._search_arguments(request)
            )
        except ProtocolError as exc:
            return exc.status, error_payload("bad_request", exc.message, request_id)
        try:
            parsed = self.engine.parse(text, language)
        except ReproError as exc:
            return 400, error_payload("query_error", str(exc), request_id)
        deadline = (
            time.monotonic() + timeout_ms / 1000.0 if timeout_ms else None
        )
        # A trace costs one object per span, so it is only built when
        # something will read it: an explain response or the slow-query log.
        trace = (
            Trace(request_id or new_trace_id())
            if (explain or self._slowlog is not None)
            else None
        )
        started = time.monotonic()
        self._inflight += 1
        try:
            results = await self.dispatcher.submit(
                parsed,
                top_k,
                engine_choice=engine_choice,
                deadline=deadline,
                explain=explain,
                trace=trace,
            )
        except DeadlineExceeded:
            self._slowlog_check(started, text, trace, 504, request_id)
            self._capture_check(started, request, text, top_k, language,
                                engine_choice, 504, request_id)
            return 504, error_payload(
                "deadline_exceeded",
                f"query {text!r} missed its {timeout_ms:.0f} ms deadline",
                request_id,
            )
        except DispatcherClosed:
            return 503, error_payload(
                "draining", "server is shutting down", request_id
            )
        except ReproError as exc:
            return 400, error_payload("query_error", str(exc), request_id)
        finally:
            self._inflight -= 1
        payload = {
            "query": results.query_text,
            "language_class": results.language_class.value,
            "engine": results.engine,
            "top_k": top_k,
            "total_matches": results.total_matches,
            "elapsed_ms": results.elapsed_seconds * 1000.0,
            "request_id": request_id,
            "results": [
                {
                    "node_id": result.node_id,
                    "score": result.score,
                    "preview": result.preview,
                }
                for result in results
            ],
        }
        payload.update(results.metadata)
        if trace is not None and explain:
            trace.end()
            payload["trace"] = trace.to_dict()
        self._slowlog_check(started, text, trace, 200, request_id,
                            plan=results.plan)
        self._capture_check(started, request, text, top_k, language,
                            engine_choice, 200, request_id)
        return 200, payload

    def _capture_check(
        self,
        started: float,
        request: Request,
        text: str,
        top_k: int | None,
        language: str,
        engine_choice: str,
        status: int,
        request_id: str | None,
    ) -> None:
        capture = self.config.capture
        if capture is None:
            return
        capture.record(
            query=text,
            top_k=top_k,
            language=language,
            engine=engine_choice,
            method=request.method,
            status=status,
            request_id=request_id,
            elapsed_ms=(time.monotonic() - started) * 1000.0,
        )

    def _slowlog_check(
        self,
        started: float,
        text: str,
        trace: "Trace | None",
        status: int,
        request_id: str | None,
        plan: dict | None = None,
    ) -> None:
        if self._slowlog is None:
            return
        if trace is not None:
            trace.end()
        self._slowlog.maybe_record(
            (time.monotonic() - started) * 1000.0,
            query=text,
            trace=trace,
            status=status,
            trace_id=request_id,
            plan=plan,
        )

    def _search_arguments(
        self, request: Request
    ) -> tuple[str, int | None, str, str, float, bool]:
        """Merge query-string and JSON-body parameters (body wins on POST)."""
        params: dict = dict(request.params)
        if request.method == "POST":
            params.update(request.json_body())
        text = params.get("q") or params.get("query")
        if not text or not isinstance(text, str):
            raise ProtocolError(
                400, "missing query: pass ?q=... or a JSON body with \"q\""
            )
        top_k = self._int_param(params, "top_k", self.config.default_top_k)
        if top_k is not None and top_k < 1:
            raise ProtocolError(400, f"top_k must be >= 1, got {top_k}")
        if top_k is not None and top_k > self.config.max_top_k:
            raise ProtocolError(
                400,
                f"top_k must be <= {self.config.max_top_k}, got {top_k}",
            )
        language = str(params.get("language", "auto"))
        if language not in ("auto", "bool", "dist", "comp"):
            raise ProtocolError(400, f"unknown language {language!r}")
        engine_choice = str(params.get("engine", "auto"))
        if engine_choice not in ("auto", "bool", "ppred", "npred", "comp"):
            raise ProtocolError(400, f"unknown engine {engine_choice!r}")
        timeout_ms = self._float_param(
            params, "timeout_ms", self.config.default_timeout_ms
        )
        if timeout_ms is not None and timeout_ms <= 0:
            raise ProtocolError(400, f"timeout_ms must be > 0, got {timeout_ms}")
        explain = self._bool_param(params, "explain", False)
        return text, top_k, language, engine_choice, timeout_ms or 0.0, explain

    @staticmethod
    def _int_param(params: dict, name: str, default: int | None) -> int | None:
        value = params.get(name, default)
        if value is None:
            return None
        try:
            if isinstance(value, bool):
                raise ValueError
            return int(value)
        except (TypeError, ValueError):
            raise ProtocolError(400, f"{name} must be an integer, got {value!r}")

    @staticmethod
    def _bool_param(params: dict, name: str, default: bool) -> bool:
        value = params.get(name, default)
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off", ""):
                return False
        raise ProtocolError(400, f"{name} must be a boolean, got {value!r}")

    @staticmethod
    def _float_param(
        params: dict, name: str, default: float | None
    ) -> float | None:
        value = params.get(name, default)
        if value is None:
            return None
        try:
            if isinstance(value, bool):
                raise ValueError
            return float(value)
        except (TypeError, ValueError):
            raise ProtocolError(400, f"{name} must be a number, got {value!r}")

    # ----------------------------------------------------- health and stats
    def _health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "collection": self.engine.collection.name,
            "shards": self.engine.num_shards,
            "live": self.engine.is_live,
            "uptime_seconds": time.monotonic() - self._started,
        }

    async def _stats_payload(self) -> dict:
        # Engine-side statistics run on the engine thread: they share data
        # structures with evaluation, so they must serialise behind it.
        loop = asyncio.get_running_loop()
        engine_stats = await loop.run_in_executor(
            self._engine_pool, self._collect_engine_stats
        )
        latency = {
            path: recorder.snapshot() for path, recorder in self._latency.items()
        }
        if self._other_latency.count:
            latency["other"] = self._other_latency.snapshot()
        return {
            "version": __version__,
            "server": {
                "uptime_seconds": time.monotonic() - self._started,
                "draining": self._draining,
                "inflight": self._inflight,
                "max_inflight": self.config.max_inflight,
                "connections": {
                    "open": len(self._conn_tasks),
                    "total": self._connections_total,
                },
                "requests": {
                    "total": self._requests_total,
                    "by_status": {
                        str(status): count
                        for status, count in sorted(self._status_counts.items())
                    },
                },
                "latency": latency,
                "batching": self.dispatcher.stats(),
            },
            "gauges": instruments.gauge_snapshot(),
            "engine": engine_stats,
        }

    def _collect_engine_stats(self) -> dict:
        """The engine's own statistics (runs on the engine thread).

        The packed-size estimate serialises every posting once, so it is
        computed on the first ``/stats`` call and memoised; live indexes
        skip it (their corpus changes under the estimate) and report
        segment and WAL statistics instead.
        """
        engine = self.engine
        stats = engine.stats()
        if not engine.is_live:
            if self._packed_bytes is None:
                from repro.index.packed import packed_index_bytes

                if hasattr(engine.index, "shards"):
                    self._packed_bytes = sum(
                        packed_index_bytes(shard.index)
                        for shard in engine.index.shards
                    )
                else:
                    self._packed_bytes = packed_index_bytes(engine.index)
            stats["packed_bytes_estimate"] = self._packed_bytes
        return stats

    # ------------------------------------------------------------ accounting
    def _enter(self) -> None:
        self._active += 1
        if instruments.REGISTRY.enabled:
            instruments.HTTP_INFLIGHT_REQUESTS.inc()
        if self._idle is not None:
            self._idle.clear()

    def _leave(self) -> None:
        self._active -= 1
        if instruments.REGISTRY.enabled:
            instruments.HTTP_INFLIGHT_REQUESTS.dec()
        if self._active == 0 and self._idle is not None:
            self._idle.set()

    def _observe(
        self,
        request: Request,
        status: int,
        latency_ms: float,
        remote: str,
        request_id: str | None = None,
    ) -> None:
        self._requests_total += 1
        self._status_counts[status] = self._status_counts.get(status, 0) + 1
        recorder = self._latency.get(request.path, self._other_latency)
        recorder.record(latency_ms)
        if instruments.REGISTRY.enabled:
            path_label = instruments.http_path_label(request.path)
            instruments.HTTP_REQUESTS_TOTAL.labels(path_label, str(status)).inc()
            instruments.HTTP_REQUEST_SECONDS.labels(path_label).observe(
                latency_ms / 1000.0
            )
        log = self.config.access_log
        if log is not None:
            line = json.dumps(
                {
                    "ts": time.time(),
                    "request_id": request_id,
                    "remote": remote,
                    "method": request.method,
                    "path": request.path,
                    "status": status,
                    "latency_ms": round(latency_ms, 3),
                },
                ensure_ascii=False,
            )
            print(line, file=log, flush=True)


async def _serve_async(engine: FullTextEngine, config: ServerConfig) -> None:
    server = QueryServer(engine, config)
    await server.start()
    sockets = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server._server.sockets
    )
    print(
        f"repro serve-http: {engine.collection.name!r} on {sockets} "
        f"({engine.num_shards} shard(s), batch<= {config.max_batch_size}, "
        f"linger {config.max_linger_ms:g} ms, inflight<= {config.max_inflight})",
        flush=True,
    )
    await server.serve_until_signalled()
    snapshot = server._latency["/search"].snapshot()
    print(
        f"drained; served {server._requests_total} request(s) "
        f"({snapshot['count']} searches, p50={_fmt_ms(snapshot['p50_ms'])} "
        f"p95={_fmt_ms(snapshot['p95_ms'])})",
        flush=True,
    )


def serve(engine: FullTextEngine, config: ServerConfig | None = None) -> int:
    """Run the server until SIGTERM/SIGINT; returns the process exit code."""
    try:
        asyncio.run(_serve_async(engine, config or ServerConfig()))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        pass
    return 0
