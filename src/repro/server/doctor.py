"""``repro doctor``: validate the environment before serving traffic.

A deployment checklist that answers "will ``repro serve-http`` work here?"
without starting a server.  Each check yields a :class:`CheckResult`; the
run fails (exit code 1) only on hard failures -- warnings describe degraded
but workable setups (for example a platform whose event loop cannot install
POSIX signal handlers).

Checks:

* Python version and the stdlib features the stack leans on
  (``asyncio.start_server``, ``mmap``, a ``spawn`` multiprocessing context
  for ``--workers process``);
* a writable temporary directory (the process-scatter spool lives there);
* optionally, an index target: a saved collection file is loaded and
  validated, a live data directory is checked for a parseable manifest,
  the segment files it references, and a readable WAL;
* optionally, that a host/port can actually be bound.
"""

from __future__ import annotations

import json
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: Minimum interpreter the package supports.
MIN_PYTHON = (3, 10)


@dataclass(frozen=True)
class CheckResult:
    """One doctor check: ``status`` is ``"ok"``, ``"warn"`` or ``"fail"``."""

    name: str
    status: str
    detail: str

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def _ok(name: str, detail: str) -> CheckResult:
    return CheckResult(name, "ok", detail)


def _warn(name: str, detail: str) -> CheckResult:
    return CheckResult(name, "warn", detail)


def _fail(name: str, detail: str) -> CheckResult:
    return CheckResult(name, "fail", detail)


def check_python() -> CheckResult:
    version = sys.version_info
    label = f"{version.major}.{version.minor}.{version.micro}"
    if (version.major, version.minor) < MIN_PYTHON:
        return _fail(
            "python", f"{label} < {'.'.join(map(str, MIN_PYTHON))} (unsupported)"
        )
    return _ok("python", f"{label} (>= {'.'.join(map(str, MIN_PYTHON))})")


def check_asyncio() -> CheckResult:
    import asyncio

    if not hasattr(asyncio, "start_server"):  # pragma: no cover - stdlib
        return _fail("asyncio", "asyncio.start_server is unavailable")
    return _ok("asyncio", "stream server available")


def check_mmap() -> CheckResult:
    try:
        import mmap  # noqa: F401 - import is the check
    except ImportError:  # pragma: no cover - stdlib
        return _fail("mmap", "mmap module unavailable; packed readers need it")
    return _ok("mmap", "zero-copy packed segment readers available")


def check_spawn_context() -> CheckResult:
    import multiprocessing

    try:
        multiprocessing.get_context("spawn")
    except ValueError:  # pragma: no cover - every CPython platform has spawn
        return _warn(
            "multiprocessing",
            "no 'spawn' context; --workers process will not run",
        )
    return _ok("multiprocessing", "'spawn' context available for --workers process")


def check_optimizer() -> CheckResult:
    """Verify the planning layer imports and plans a probe query.

    Catches a broken install (missing planner package) before traffic does:
    the default serving mode builds a plan artifact for every query.
    """
    try:
        from repro.planner import DEFAULT_OPTIMIZER, OPTIMIZER_MODES
        from repro.planner.optimizer import QueryPlanner
        from repro.core.query import parse_query
        from repro.model.predicates import default_registry

        probe = parse_query("'a' AND 'b'", "auto", default_registry()).node
        planner = QueryPlanner(lambda token: 1)
        plan = planner.plan(
            probe,
            engine="bool",
            language_class="BOOL",
            optimizer="on",
            access_mode="paper",
        )
    except Exception as exc:  # degraded install: report, don't crash doctor
        return _fail("optimizer", f"planning layer broken: {exc}")
    return _ok(
        "optimizer",
        f"cost-based planner operational (modes: {', '.join(OPTIMIZER_MODES)}; "
        f"default {DEFAULT_OPTIMIZER}; probe plan: {plan.merge_strategy} "
        f"merge)",
    )


def check_tempdir() -> CheckResult:
    try:
        with tempfile.NamedTemporaryFile(prefix="repro-doctor-") as handle:
            handle.write(b"ok")
            handle.flush()
    except OSError as exc:
        return _fail("tempdir", f"cannot write {tempfile.gettempdir()}: {exc}")
    return _ok("tempdir", f"{tempfile.gettempdir()} is writable (spool directory)")


def check_port(host: str, port: int) -> CheckResult:
    import socket

    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            bound = sock.getsockname()[1]
    except OSError as exc:
        return _fail("port", f"cannot bind {host}:{port}: {exc}")
    return _ok("port", f"{host}:{bound} is bindable")


def check_index_file(path: Path) -> list[CheckResult]:
    from repro.exceptions import ReproError
    from repro.index.storage import load_collection

    try:
        collection = load_collection(path)
    except ReproError as exc:
        return [_fail("index", f"{path}: {exc}")]
    except OSError as exc:
        return [_fail("index", f"{path}: {exc}")]
    summary = collection.describe()
    return [
        _ok(
            "index",
            f"{path}: {summary['nodes']} nodes, {summary['tokens']} tokens, "
            f"vocabulary {summary['vocabulary']}",
        )
    ]


def check_live_dir(path: Path) -> list[CheckResult]:
    """Validate a live-index data directory without replaying it."""
    from repro.segments.live_index import MANIFEST_NAME, SEGMENT_DIR, WAL_NAME

    results: list[CheckResult] = []
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        return [
            _fail(
                "manifest",
                f"{manifest_path} missing: not a live data directory "
                f"(expected the layout written by 'repro ingest --data-dir')",
            )
        ]
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [_fail("manifest", f"{manifest_path}: {exc}")]
    segments = manifest.get("segments", [])
    results.append(
        _ok(
            "manifest",
            f"{manifest_path.name}: {len(segments)} segment(s), "
            f"applied_seq={manifest.get('applied_seq')}",
        )
    )
    missing = []
    for entry in segments:
        name = entry.get("file")
        if name and not (path / SEGMENT_DIR / name).exists():
            missing.append(name)
    if missing:
        results.append(
            _fail("segments", f"{len(missing)} referenced file(s) missing: "
                  + ", ".join(missing[:5]))
        )
    elif segments:
        results.append(_ok("segments", f"all {len(segments)} segment file(s) present"))
    wal_path = path / WAL_NAME
    if not wal_path.exists():
        results.append(
            _warn("wal", f"{wal_path.name} missing (no unflushed mutations)")
        )
    else:
        try:
            with wal_path.open("r", encoding="utf-8") as handle:
                records = sum(1 for line in handle if line.strip())
        except OSError as exc:
            results.append(_fail("wal", f"{wal_path}: {exc}"))
        else:
            results.append(_ok("wal", f"{wal_path.name}: {records} record(s)"))
    return results


def run_doctor(
    index_path: "str | Path | None" = None,
    host: str | None = None,
    port: int | None = None,
) -> list[CheckResult]:
    """Run every applicable check and return the results in print order."""
    results = [
        check_python(),
        check_asyncio(),
        check_mmap(),
        check_spawn_context(),
        check_tempdir(),
        check_optimizer(),
    ]
    if host is not None and port is not None:
        results.append(check_port(host, port))
    if index_path is not None:
        target = Path(index_path)
        if target.is_dir():
            results.extend(check_live_dir(target))
        elif target.exists():
            results.extend(check_index_file(target))
        else:
            results.append(_fail("index", f"{target}: no such file or directory"))
    return results


def render_report(results: list[CheckResult]) -> str:
    """The human-readable doctor report (one aligned line per check)."""
    lines = []
    for result in results:
        marker = {"ok": "ok  ", "warn": "WARN", "fail": "FAIL"}[result.status]
        lines.append(f"{marker}  {result.name:16} {result.detail}")
    failures = sum(1 for result in results if result.failed)
    warnings = sum(1 for result in results if result.status == "warn")
    verdict = "ready to serve" if not failures else "NOT ready to serve"
    lines.append(
        f"\n{len(results)} check(s): {failures} failure(s), "
        f"{warnings} warning(s) -- {verdict}"
    )
    return "\n".join(lines)
