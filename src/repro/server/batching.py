"""Micro-batching of concurrent search requests onto the engine thread.

The engine stack is fast but strictly single-caller (see
:class:`~repro.cluster.scatter.ScatterGatherExecutor`), so an HTTP server
cannot simply call ``engine.search`` from every connection handler.  The
:class:`BatchingDispatcher` turns that constraint into a win:

* every ``/search`` request becomes a :class:`SearchItem` on an asyncio
  queue;
* one dispatcher coroutine drains the queue into batches -- up to
  ``max_batch_size`` items, waiting at most ``max_linger_ms`` for
  stragglers once the first item arrives -- and runs each batch as a single
  :meth:`~repro.core.engine.FullTextEngine.search_many` call on a dedicated
  worker thread (the event loop never blocks on evaluation);
* ``search_many`` amortises the cursor factory and plan cache across the
  batch, and on the sharded path fans the *whole batch* out per shard, so
  coalescing is cheaper than per-request dispatch even before caching.

**Equivalence contract.**  Requests in one batch may ask for different
``top_k`` values, while ``search_many`` takes a single cut.  The batch runs
at the *widest* requested ``k`` (or unbounded if any request wants the full
ranking) and each answer is narrowed with ``SearchResults.top(k)``.  Exact
top-k rankings are prefixes of each other -- the same contract the query
cache relies on (:meth:`ScatterGatherExecutor._covers`) -- so every client
receives results bit-identical in ids, scores and order to a direct
``engine.search(query, top_k=k)``.

**Failure isolation.**  Queries are parsed *before* they enter the queue, so
syntax errors never reach a batch.  If a batch still fails during
evaluation (for example a query outside the forced engine's subset), the
dispatcher retries each item individually: one poisoned query answers with
its own error instead of failing its batch neighbours.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.query import Query
from repro.core.results import SearchResults
from repro.exceptions import ReproError


def _swallow_outcome(future: "asyncio.Future") -> None:
    """Retrieve an abandoned future's exception so asyncio does not warn."""
    if not future.cancelled():
        future.exception()


class DeadlineExceeded(ReproError):
    """A request's deadline expired before its results were produced."""


class DispatcherClosed(ReproError):
    """The dispatcher is draining or stopped and accepts no new requests."""


@dataclass
class SearchItem:
    """One pending search request travelling through the dispatcher."""

    query: Query
    top_k: int | None
    engine_choice: str
    #: Absolute ``time.monotonic()`` deadline, or ``None`` for no deadline.
    deadline: float | None
    future: "asyncio.Future[SearchResults]" = field(repr=False, default=None)
    #: EXPLAIN ANALYZE requests run individually (``search_many`` carries no
    #: per-item explain flag) so their per-operator counts are theirs alone.
    explain: bool = False
    #: Request trace; receives dispatcher and engine spans when set.
    trace: object | None = field(repr=False, default=None)

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline


class BatchingDispatcher:
    """Coalesce concurrent searches into ``search_many`` batches."""

    def __init__(
        self,
        engine,
        *,
        max_batch_size: int = 32,
        max_linger_ms: float = 2.0,
        engine_pool: ThreadPoolExecutor | None = None,
        pending_probe=None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_linger_ms < 0:
            raise ValueError(f"max_linger_ms must be >= 0, got {max_linger_ms}")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.max_linger_ms = max_linger_ms
        #: Optional adaptive-linger hook: a callable returning how many
        #: requests are currently admitted but unanswered.  Once the batch
        #: holds every pending request there is nothing to linger for --
        #: closed-loop clients cannot send their next request until this
        #: batch answers -- so the dispatcher executes immediately instead
        #: of burning the full linger window.
        self._pending_probe = pending_probe
        # The single engine worker thread: it both serialises access to the
        # (single-caller) engine and keeps evaluation off the event loop.
        self._engine_pool = engine_pool or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._owns_pool = engine_pool is None
        self._queue: "asyncio.Queue[SearchItem | None]" = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._closed = False
        # Batch-shape statistics (all touched from the event-loop thread).
        self._batches = 0
        self._batched_requests = 0
        self._max_batch = 0
        self._individual_retries = 0
        self._expired_in_queue = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the dispatcher coroutine on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-batch-dispatcher"
            )

    async def stop(self) -> None:
        """Drain every queued request, then stop the dispatcher (idempotent).

        Items already queued are still evaluated -- this is what lets the
        server's SIGTERM drain finish in-flight requests -- but new
        :meth:`submit` calls fail with :class:`DispatcherClosed`.
        """
        if self._closed:
            return
        self._closed = True
        if self._task is not None:
            await self._queue.put(None)  # sentinel: drain up to here, then exit
            await self._task
            self._task = None
        if self._owns_pool:
            self._engine_pool.shutdown(wait=True)

    # ------------------------------------------------------------------ API
    async def submit(
        self,
        query: Query,
        top_k: int | None,
        *,
        engine_choice: str = "auto",
        deadline: float | None = None,
        explain: bool = False,
        trace: object | None = None,
    ) -> SearchResults:
        """Enqueue one parsed query and await its results.

        Raises :class:`DeadlineExceeded` when the deadline passes first (the
        batch keeps running; its result is discarded for this caller) and
        :class:`DispatcherClosed` once the server is draining.
        """
        if self._closed:
            raise DispatcherClosed("server is draining; not accepting new queries")
        if self._task is None:
            raise DispatcherClosed("dispatcher is not running")
        loop = asyncio.get_running_loop()
        item = SearchItem(
            query=query,
            top_k=top_k,
            engine_choice=engine_choice,
            deadline=deadline,
            future=loop.create_future(),
            explain=explain,
            trace=trace,
        )
        await self._queue.put(item)
        if deadline is None:
            return await item.future
        remaining = deadline - time.monotonic()
        try:
            return await asyncio.wait_for(asyncio.shield(item.future), max(remaining, 0.0))
        except asyncio.TimeoutError:
            # The batch keeps running and will still resolve the future;
            # mark its eventual outcome as consumed so asyncio never logs
            # "exception was never retrieved" for an abandoned request.
            item.future.add_done_callback(_swallow_outcome)
            raise DeadlineExceeded(
                f"deadline exceeded after waiting for results of "
                f"{item.query.text!r}"
            ) from None

    def stats(self) -> dict[str, float]:
        """Batch-shape counters for ``/stats``."""
        return {
            "batches": self._batches,
            "batched_requests": self._batched_requests,
            "max_batch_size_seen": self._max_batch,
            "mean_batch_size": (
                self._batched_requests / self._batches if self._batches else 0.0
            ),
            "individual_retries": self._individual_retries,
            "expired_in_queue": self._expired_in_queue,
        }

    # ------------------------------------------------------------ internals
    async def _run(self) -> None:
        while True:
            head = await self._queue.get()
            if head is None:
                return
            batch = [head]
            batch_done = self._collect(batch)
            if not batch_done and self.max_linger_ms > 0:
                # Linger briefly for stragglers: the whole point of
                # micro-batching is that requests arriving within a couple
                # of milliseconds of each other share one engine call.
                deadline = time.monotonic() + self.max_linger_ms / 1000.0
                while len(batch) < self.max_batch_size:
                    if (
                        self._pending_probe is not None
                        and len(batch) >= self._pending_probe()
                    ):
                        break  # every admitted request is aboard already
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        extra = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    if extra is None:
                        await self._execute(batch)
                        return
                    batch.append(extra)
                    if self._collect(batch):
                        break
            await self._execute(batch)

    def _collect(self, batch: list[SearchItem]) -> bool:
        """Drain immediately-available items; True when the batch is full."""
        while len(batch) < self.max_batch_size:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return len(batch) >= self.max_batch_size
            if item is None:
                # Push the sentinel back so _run sees it after this batch.
                self._queue.put_nowait(None)
                return True
            batch.append(item)
        return True

    async def _execute(self, batch: list[SearchItem]) -> None:
        live = [item for item in batch if not self._drop_if_expired(item)]
        if not live:
            return
        explained = [item for item in live if item.explain]
        live = [item for item in live if not item.explain]
        if explained:
            # EXPLAIN ANALYZE must attribute per-operator counts to exactly
            # one query, so these never share a search_many call.
            await self._execute_individually(explained, retries=False)
        if not live:
            return
        self._batches += 1
        self._batched_requests += len(live)
        self._max_batch = max(self._max_batch, len(live))
        batch_k = self._widest_k(live)
        engine_choice = live[0].engine_choice
        if any(item.engine_choice != engine_choice for item in live):
            # Mixed forced engines cannot share one search_many call.
            await self._execute_individually(live)
            return
        loop = asyncio.get_running_loop()
        spans = [
            item.trace.span("dispatch.batch", batch_size=len(live))
            for item in live
            if item.trace is not None
        ]
        try:
            answers = await loop.run_in_executor(
                self._engine_pool,
                lambda: self.engine.search_many(
                    [item.query for item in live],
                    engine=engine_choice,
                    top_k=batch_k,
                ),
            )
        except ReproError:
            for span in spans:
                span.end()
            # One bad query must not fail its neighbours: fall back to
            # per-item evaluation so each request gets its own answer/error.
            await self._execute_individually(live)
            return
        except Exception as exc:  # engine bug: fail the batch loudly
            for span in spans:
                span.end()
            for item in live:
                self._reject(item, exc)
            return
        for span in spans:
            span.end()
        for item, answer in zip(live, answers):
            self._resolve(item, self._narrow(answer, item.top_k, batch_k))

    async def _execute_individually(
        self, items: list[SearchItem], retries: bool = True
    ) -> None:
        loop = asyncio.get_running_loop()
        for item in items:
            if self._drop_if_expired(item):
                continue
            if retries:
                self._individual_retries += 1
            try:
                answer = await loop.run_in_executor(
                    self._engine_pool,
                    lambda item=item: self.engine.search(
                        item.query,
                        engine=item.engine_choice,
                        top_k=item.top_k,
                        explain=item.explain,
                        trace=item.trace,
                    ),
                )
            except Exception as exc:
                self._reject(item, exc)
            else:
                self._resolve(item, answer)

    @staticmethod
    def _widest_k(items: list[SearchItem]) -> int | None:
        """The batch-wide cut: unbounded if any caller wants the full ranking."""
        widest: int | None = 0
        for item in items:
            if item.top_k is None:
                return None
            widest = max(widest, item.top_k)
        return widest

    @staticmethod
    def _narrow(
        answer: SearchResults, top_k: int | None, batch_k: int | None
    ) -> SearchResults:
        if top_k is None or top_k == batch_k:
            return answer
        return answer.top(top_k)

    def _drop_if_expired(self, item: SearchItem) -> bool:
        if not item.expired():
            return False
        self._expired_in_queue += 1
        self._reject(
            item,
            DeadlineExceeded(
                f"deadline exceeded while queued: {item.query.text!r}"
            ),
        )
        return True

    @staticmethod
    def _resolve(item: SearchItem, answer: SearchResults) -> None:
        if not item.future.done():
            item.future.set_result(answer)

    @staticmethod
    def _reject(item: SearchItem, exc: Exception) -> None:
        if not item.future.done():
            item.future.set_exception(exc)
