"""A minimal HTTP/1.1 layer over :mod:`asyncio` streams.

The query service speaks plain HTTP/1.1 with JSON bodies and needs nothing
beyond the standard library, so this module implements exactly the subset
the service uses -- and rejects the rest loudly:

* request line + headers + an optional ``Content-Length`` body
  (``Transfer-Encoding: chunked`` is answered with ``501``);
* persistent connections with the HTTP/1.1 keep-alive default
  (``Connection: close`` honoured both ways, HTTP/1.0 closes unless the
  client asks for keep-alive);
* bounded reads everywhere: header blocks above
  :data:`MAX_HEADER_BYTES` and bodies above :data:`MAX_BODY_BYTES` raise
  :class:`ProtocolError` with the status the connection loop should send
  before closing.

Parsing failures never raise bare exceptions into the connection loop --
they become :class:`ProtocolError` carrying an HTTP status code, so the
server can answer with a structured JSON error instead of a hung socket.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

#: Upper bound on the request line + header block, in bytes.
MAX_HEADER_BYTES = 32 * 1024
#: Upper bound on a request body, in bytes.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Reason phrases for every status the service emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A malformed or unsupported request; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"
    keep_alive: bool = True

    def json_body(self) -> dict:
        """The body decoded as a JSON object (``{}`` when empty).

        Raises :class:`ProtocolError` (400) on malformed JSON or a body
        that is not an object -- the only body shape the API accepts.
        """
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return payload

    def param(self, name: str, default: str | None = None) -> str | None:
        """A single query-string parameter (the first value when repeated)."""
        return self.params.get(name, default)


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Read and parse one request; ``None`` on a clean end-of-stream.

    A clean EOF (the client closed an idle keep-alive connection) is the
    *only* quiet exit; everything else -- truncated requests, oversized
    headers, bad request lines, unsupported transfer encodings -- raises
    :class:`ProtocolError` with the status to report.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise ProtocolError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, f"header block exceeds {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(431, f"header block exceeds {MAX_HEADER_BYTES} bytes")

    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(400, f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(501, "chunked transfer encoding is not supported")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "malformed Content-Length header")
        if length < 0:
            raise ProtocolError(400, "malformed Content-Length header")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "connection closed mid-body")

    split = urlsplit(target)
    params = {
        name: values[0]
        for name, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"
    return Request(
        method=method.upper(),
        target=target,
        path=split.path or "/",
        params=params,
        headers=headers,
        body=body,
        version=version,
        keep_alive=keep_alive,
    )


def render_response(
    status: int,
    payload: dict,
    *,
    keep_alive: bool = True,
    extra_headers: "dict[str, str] | None" = None,
) -> bytes:
    """Serialize a JSON response with the framing headers the parser needs.

    ``Content-Length`` is always present (the connection stays usable for
    the next request) and floats round-trip exactly: ``json.dumps`` renders
    Python floats with ``repr``, the shortest string that parses back to
    the same IEEE double -- which is what lets the equivalence tests compare
    served scores bit-for-bit against direct engine calls.

    ``extra_headers`` appends custom headers (e.g. ``X-Request-Id``); names
    and values must be latin-1-safe and newline-free.
    """
    body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    return _render_head(
        status,
        "application/json; charset=utf-8",
        len(body),
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    ) + body


def render_text_response(
    status: int,
    text: str,
    *,
    keep_alive: bool = True,
    content_type: str = "text/plain; charset=utf-8",
    extra_headers: "dict[str, str] | None" = None,
) -> bytes:
    """Serialize a plain-text response (the ``/metrics`` exposition)."""
    body = text.encode("utf-8")
    return _render_head(
        status,
        content_type,
        len(body),
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    ) + body


def _render_head(
    status: int,
    content_type: str,
    content_length: int,
    *,
    keep_alive: bool,
    extra_headers: "dict[str, str] | None",
) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {content_length}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def error_payload(code: str, message: str, request_id: str | None = None) -> dict:
    """The uniform JSON error body: ``{"error": {"code": ..., "message": ...}}``.

    With ``request_id`` the error carries the id the server stamped on the
    request, so a client can quote it against the access log.
    """
    payload = {"error": {"code": code, "message": message}}
    if request_id is not None:
        payload["error"]["request_id"] = request_id
    return payload
