"""Network serving: the asyncio HTTP/JSON query service.

This package is the wire-facing tier of the stack -- everything needed to
put a :class:`~repro.core.engine.FullTextEngine` behind a socket without a
single dependency beyond the standard library:

* :mod:`repro.server.http`     -- a bounded HTTP/1.1 request parser and JSON
  response writer over asyncio streams (keep-alive, ``Content-Length``
  framing, structured protocol errors);
* :mod:`repro.server.metrics`  -- deprecated shim over
  :mod:`repro.telemetry.latency`, the latency recorder and nearest-rank
  percentile maths shared by every serving surface;
* :mod:`repro.server.batching` -- the micro-batching dispatcher coalescing
  concurrent requests into single ``search_many`` calls on a dedicated
  engine thread, preserving bit-identical per-request results;
* :mod:`repro.server.app`      -- :class:`~repro.server.app.QueryServer`
  itself: routing, deadlines, admission control, access logs, ``/health``
  + ``/stats``, and SIGTERM drain;
* :mod:`repro.server.doctor`   -- the ``repro doctor`` environment and
  data-directory validator.

The CLI entry point is ``repro serve-http``.
"""

from repro.server.app import QueryServer, ServerConfig, serve
from repro.server.batching import (
    BatchingDispatcher,
    DeadlineExceeded,
    DispatcherClosed,
)
from repro.server.doctor import CheckResult, render_report, run_doctor
from repro.server.http import ProtocolError, Request
from repro.telemetry.latency import LatencyRecorder, percentile

__all__ = [
    "BatchingDispatcher",
    "CheckResult",
    "DeadlineExceeded",
    "DispatcherClosed",
    "LatencyRecorder",
    "ProtocolError",
    "QueryServer",
    "Request",
    "ServerConfig",
    "percentile",
    "render_report",
    "run_doctor",
    "serve",
]
