"""The performance observatory core: timing, results schema, comparison.

Every benchmark in the repo -- the standalone ``benchmarks/bench_*.py``
scripts and the registered suites behind ``repro bench run`` -- times work
the same way: *min of N repeats after warmup on the monotonic clock*
(:func:`time_call`).  The minimum over repeats is the standard estimator
for CPU-bound microbenchmarks: noise (scheduler preemption, page faults,
GC) is strictly additive, so the minimum converges on the true cost.

``repro bench run`` executes registered suites (see
:mod:`repro.bench.suites`) and writes one ``BENCH_<suite>.json`` per suite
in a normalized machine-readable schema::

    {
      "schema_version": 1,
      "suite": "access_modes",
      "created_unix": 1754650000.0,
      "quick": true,
      "env": {"python": "3.12.3", "implementation": "CPython",
              "platform": "Linux-...", "machine": "x86_64", "cpu_count": 8},
      "corpus": {"nodes": 300, ...},
      "cases": [
        {"name": "fast/BOOL", "repeats": 5, "warmup": 1,
         "min_seconds": 0.0123, "mean_seconds": 0.013, "max_seconds": 0.015,
         "throughput_per_s": 812.2, "verified": true, "extra": {...}},
        ...
      ]
    }

``repro bench compare BASELINE CURRENT --fail-over PCT`` diffs two result
files (or two directories of them) on ``min_seconds`` per case and exits
non-zero when any case regressed by more than the threshold -- the CI perf
gate.  ``--profile`` attaches cProfile to each case and prints the top-N
cumulative hotspots.
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.exceptions import ReproError

#: Version stamp of the BENCH_*.json schema.
SCHEMA_VERSION = 1

#: File-name pattern of persisted suite results.
RESULT_PATTERN = "BENCH_*.json"


# --------------------------------------------------------------------- timing
@dataclass(frozen=True)
class Timing:
    """Samples of one timed callable (seconds, monotonic clock)."""

    samples: tuple[float, ...]

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)


def time_call(
    func: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> Timing:
    """Min-of-N timing: ``warmup`` untimed passes, then ``repeats`` timed ones.

    The shared timing core of every benchmark in the repo.  Uses
    ``time.perf_counter`` (monotonic, highest available resolution); the
    callable's return value is discarded.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ReproError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        func()
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        samples.append(time.perf_counter() - started)
    return Timing(tuple(samples))


def profile_call(func: Callable[[], object], top: int = 15) -> str:
    """One pass under cProfile; returns the top-``top`` cumulative hotspots."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        func()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


# ---------------------------------------------------------------- suite model
@dataclass
class CaseResult:
    """One measured benchmark case, JSON-shaped by :meth:`to_dict`."""

    name: str
    timing: Timing
    repeats: int
    warmup: int
    items: int | None = None  # per-pass work items, for throughput
    verified: "bool | None" = None  # results equality-checked before timing
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        throughput = (
            self.items / self.timing.min
            if self.items and self.timing.min > 0
            else None
        )
        return {
            "name": self.name,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "min_seconds": self.timing.min,
            "mean_seconds": self.timing.mean,
            "max_seconds": self.timing.max,
            "throughput_per_s": throughput,
            "verified": self.verified,
            "extra": self.extra,
        }


class SuiteRun:
    """Accumulates the cases of one suite execution (handed to suite fns)."""

    def __init__(
        self,
        name: str,
        quick: bool,
        profile_top: int = 0,
        optimizer: str = "static",
    ) -> None:
        self.name = name
        self.quick = quick
        self.profile_top = profile_top
        #: Planning-layer mode the CLI asked for; suites that exercise the
        #: optimizer explicitly (the ``optimizer`` suite) pin their own
        #: modes per case, everything else builds engines in this one.
        self.optimizer = optimizer
        self.corpus: dict = {}
        self.cases: list[CaseResult] = []
        self.profiles: dict[str, str] = {}

    def case(
        self,
        name: str,
        func: Callable[[], object],
        *,
        repeats: int = 5,
        warmup: int = 1,
        items: int | None = None,
        verified: "bool | None" = None,
        extra: "dict | None" = None,
    ) -> CaseResult:
        """Time ``func`` through the shared core and record the case."""
        timing = time_call(func, repeats=repeats, warmup=warmup)
        result = CaseResult(
            name=name,
            timing=timing,
            repeats=repeats,
            warmup=warmup,
            items=items,
            verified=verified,
            extra=dict(extra or {}),
        )
        self.cases.append(result)
        if self.profile_top:
            self.profiles[name] = profile_call(func, self.profile_top)
        return result

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": self.name,
            "created_unix": time.time(),
            "quick": self.quick,
            "optimizer": self.optimizer,
            "env": env_fingerprint(),
            "corpus": self.corpus,
            "cases": [case.to_dict() for case in self.cases],
        }


def env_fingerprint() -> dict:
    """Where a result was measured (python / platform / cpu count)."""
    import os

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


# ------------------------------------------------------------- suite registry
#: Registered suites: name -> (description, fn(run: SuiteRun) -> None).
SUITE_REGISTRY: "dict[str, tuple[str, Callable[[SuiteRun], None]]]" = {}


def register_suite(name: str, description: str):
    """Decorator adding a suite function to the ``repro bench run`` registry."""

    def decorate(fn: Callable[[SuiteRun], None]):
        if name in SUITE_REGISTRY:
            raise ReproError(f"benchmark suite {name!r} already registered")
        SUITE_REGISTRY[name] = (description, fn)
        return fn

    return decorate


def available_suites() -> "list[tuple[str, str]]":
    """(name, description) of every registered suite, loading them first."""
    _load_builtin_suites()
    return sorted(
        (name, description)
        for name, (description, _) in SUITE_REGISTRY.items()
    )


def _load_builtin_suites() -> None:
    # Import for the registration side effect; idempotent.
    from repro.bench import suites  # noqa: F401


def run_suites(
    names: "Sequence[str] | None",
    *,
    quick: bool = False,
    out_dir: "Path | str" = ".",
    profile_top: int = 0,
    optimizer: str = "static",
    echo: "Callable[[str], None] | None" = None,
) -> "list[Path]":
    """Run suites through the shared core; write one BENCH_<suite>.json each."""
    _load_builtin_suites()
    say = echo or (lambda message: None)
    selected = list(names) if names else [name for name, _ in available_suites()]
    unknown = [name for name in selected if name not in SUITE_REGISTRY]
    if unknown:
        known = ", ".join(sorted(SUITE_REGISTRY))
        raise ReproError(
            f"unknown suite(s) {', '.join(unknown)}; available: {known}"
        )
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name in selected:
        _, fn = SUITE_REGISTRY[name]
        say(f"suite {name}: running{' (quick)' if quick else ''} ...")
        run = SuiteRun(name, quick, profile_top=profile_top, optimizer=optimizer)
        started = time.perf_counter()
        fn(run)
        elapsed = time.perf_counter() - started
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(run.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
        for case in run.cases:
            say(
                f"  {case.name}: min {case.timing.min * 1000:.3f} ms over "
                f"{case.repeats} repeat(s)"
                + (
                    f", {case.items / case.timing.min:,.0f}/s"
                    if case.items and case.timing.min > 0
                    else ""
                )
            )
        for case_name, report in run.profiles.items():
            say(f"  profile {case_name}:\n{report}")
        say(f"suite {name}: {len(run.cases)} case(s) in {elapsed:.2f} s -> {path}")
    return written


# ----------------------------------------------------------------- comparison
def load_results(path: "Path | str") -> "dict[tuple[str, str], dict]":
    """Load BENCH results from a file or a directory of BENCH_*.json.

    Returns ``(suite, case name) -> case dict``; each case dict gains a
    ``"suite"`` key for reporting.
    """
    path = Path(path)
    files: "list[Path]"
    if path.is_dir():
        files = sorted(path.glob(RESULT_PATTERN))
        if not files:
            raise ReproError(f"no {RESULT_PATTERN} files under {path}")
    elif path.is_file():
        files = [path]
    else:
        raise ReproError(f"benchmark result {path} does not exist")
    cases: "dict[tuple[str, str], dict]" = {}
    for file in files:
        try:
            payload = json.loads(file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read benchmark result {file}: {exc}")
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise ReproError(
                f"{file}: schema_version {payload.get('schema_version')!r} "
                f"(this tool reads {SCHEMA_VERSION})"
            )
        suite = payload.get("suite", file.stem)
        for case in payload.get("cases", ()):
            entry = dict(case)
            entry["suite"] = suite
            cases[(suite, case["name"])] = entry
    return cases


@dataclass(frozen=True)
class Delta:
    """One case's baseline-vs-current movement on ``min_seconds``."""

    suite: str
    name: str
    base_seconds: float
    current_seconds: float

    @property
    def pct(self) -> float:
        """Percent change; positive means the current run is slower."""
        if self.base_seconds <= 0:
            return 0.0
        return (self.current_seconds - self.base_seconds) / self.base_seconds * 100.0


def compare_results(
    baseline: "Path | str",
    current: "Path | str",
    fail_over_pct: float,
) -> "tuple[list[Delta], list[str], list[Delta]]":
    """Diff two result sets.

    Returns ``(deltas, notes, regressions)``: every matched case's movement,
    human-readable notes about unmatched cases, and the subset of deltas
    exceeding ``fail_over_pct`` (slower by more than the threshold).
    Cases present on only one side are reported in the notes but never fail
    the gate -- renaming a benchmark must not masquerade as a regression.
    """
    base = load_results(baseline)
    cur = load_results(current)
    deltas: list[Delta] = []
    notes: list[str] = []
    for key in sorted(base.keys() | cur.keys()):
        suite, name = key
        if key not in cur:
            notes.append(f"case {suite}/{name} missing from current run")
            continue
        if key not in base:
            notes.append(f"case {suite}/{name} is new (no baseline)")
            continue
        deltas.append(
            Delta(
                suite=suite,
                name=name,
                base_seconds=float(base[key]["min_seconds"]),
                current_seconds=float(cur[key]["min_seconds"]),
            )
        )
    regressions = [delta for delta in deltas if delta.pct > fail_over_pct]
    return deltas, notes, regressions


def render_comparison(
    deltas: "Iterable[Delta]",
    notes: "Iterable[str]",
    regressions: "Iterable[Delta]",
    fail_over_pct: float,
) -> str:
    """A human-readable comparison table plus the verdict line."""
    lines = [
        f"{'suite/case':<42} {'baseline':>12} {'current':>12} {'change':>9}"
    ]
    regression_keys = {(d.suite, d.name) for d in regressions}
    for delta in deltas:
        marker = "  << REGRESSION" if (delta.suite, delta.name) in regression_keys else ""
        lines.append(
            f"{delta.suite + '/' + delta.name:<42} "
            f"{delta.base_seconds * 1000:>9.3f} ms "
            f"{delta.current_seconds * 1000:>9.3f} ms "
            f"{delta.pct:>+8.1f}%{marker}"
        )
    for note in notes:
        lines.append(f"note: {note}")
    regression_count = len(regression_keys)
    if regression_count:
        lines.append(
            f"FAIL: {regression_count} case(s) slower than the "
            f"{fail_over_pct:g}% threshold"
        )
    else:
        lines.append(f"OK: no case slower than the {fail_over_pct:g}% threshold")
    return "\n".join(lines)
