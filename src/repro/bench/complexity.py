"""The analytic complexity hierarchy of Figure 3.

Each function returns the paper's upper bound on the number of elementary
operations performed by one evaluation algorithm, expressed in the data-size
parameters of Section 5.1.2 (``cnodes``, ``pos_per_cnode``,
``entries_per_token``, ``pos_per_entry``) and the query-size parameters
(``toks_Q``, ``preds_Q``, ``ops_Q``).

These formulas are used by the Figure 3 benchmark to check that the
*measured* scaling of each engine stays within the shape of its bound (e.g.
PPRED grows linearly in ``pos_per_entry`` while COMP grows polynomially in
``pos_per_cnode``), and by :func:`hierarchy_table` to print the hierarchy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.index.statistics import ComplexityParameters


@dataclass(frozen=True)
class QueryParameters:
    """Query-size parameters of the complexity model."""

    toks_q: int
    preds_q: int = 0
    ops_q: int = 0

    @property
    def operator_factor(self) -> int:
        """The common ``(preds_Q + ops_Q + 1)`` factor."""
        return self.preds_q + self.ops_q + 1


def bool_noneg_bound(data: ComplexityParameters, query: QueryParameters) -> float:
    """BOOL-NONEG: ``entries_per_token · toks_Q · (ops_Q + 1)``."""
    return data.entries_per_token * query.toks_q * (query.ops_q + 1)


def bool_bound(data: ComplexityParameters, query: QueryParameters) -> float:
    """BOOL: ``cnodes · toks_Q · (ops_Q + 1)`` (NOT/ANY read IL_ANY)."""
    return data.cnodes * query.toks_q * (query.ops_q + 1)


def ppred_bound(data: ComplexityParameters, query: QueryParameters) -> float:
    """PPRED: ``entries_per_token · pos_per_entry · toks_Q · (preds_Q+ops_Q+1)``."""
    return (
        data.entries_per_token
        * data.pos_per_entry
        * query.toks_q
        * query.operator_factor
    )


def npred_bound(
    data: ComplexityParameters, query: QueryParameters, arity: int = 2
) -> float:
    """NPRED: PPRED bound times ``min(arity^preds_Q, toks_Q!)`` evaluation threads."""
    threads = min(arity**query.preds_q, math.factorial(query.toks_q))
    return ppred_bound(data, query) * max(threads, 1)


def comp_bound(data: ComplexityParameters, query: QueryParameters) -> float:
    """COMP: ``cnodes · pos_per_cnode^{toks_Q} · (preds_Q + ops_Q + 1)``."""
    return (
        data.cnodes
        * (data.pos_per_cnode ** query.toks_q)
        * query.operator_factor
    )


#: Name -> bound function, in increasing order of expressiveness (Figure 3).
HIERARCHY = {
    "BOOL-NONEG": bool_noneg_bound,
    "BOOL": bool_bound,
    "PPRED": ppred_bound,
    "NPRED": npred_bound,
    "COMP": comp_bound,
}


def hierarchy_table(
    data: ComplexityParameters, query: QueryParameters
) -> list[tuple[str, float]]:
    """The analytic bound of every language for the given parameters."""
    return [(name, bound(data, query)) for name, bound in HIERARCHY.items()]


def dominates(
    faster: str, slower: str, data: ComplexityParameters, query: QueryParameters
) -> bool:
    """True iff the analytic bound of ``faster`` is <= the bound of ``slower``."""
    return HIERARCHY[faster](data, query) <= HIERARCHY[slower](data, query)
