"""The registered benchmark suites behind ``repro bench run``.

Each suite measures one layer of the stack on the deterministic INEX-like
synthetic corpus, through the shared min-of-N timing core of
:mod:`repro.bench.perf`.  Suites whose comparisons have an equality
contract (top-k prefix, sharded == single) verify it *before* timing and
record ``verified`` on the case -- a benchmark that silently compares
different answers is worthless.

``--quick`` shrinks the corpus and repeat counts to CI smoke scale; the
curve shapes survive, the absolute numbers shrink.
"""

from __future__ import annotations

from repro.bench.perf import SuiteRun, register_suite
from repro.bench.workload import workload_queries
from repro.corpus.collection import Collection
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.core.engine import FullTextEngine

#: Corpus shape per scale: (num_nodes, tokens_per_node, pos_per_entry).
_FULL_SHAPE = (300, 150, 3)
_QUICK_SHAPE = (120, 80, 2)


def _corpus(run: SuiteRun):
    nodes, tokens_per_node, pos_per_entry = (
        _QUICK_SHAPE if run.quick else _FULL_SHAPE
    )
    collection = generate_inex_like_collection(
        num_nodes=nodes,
        tokens_per_node=tokens_per_node,
        pos_per_entry=pos_per_entry,
        document_frequency=0.6,
    )
    run.corpus = {
        "nodes": nodes,
        "tokens_per_node": tokens_per_node,
        "pos_per_entry": pos_per_entry,
        "collection": collection.name,
    }
    return collection


def _queries():
    return workload_queries(list(DEFAULT_QUERY_TOKENS), num_tokens=3, num_predicates=2)


def _repeats(run: SuiteRun) -> int:
    return 3 if run.quick else 5


def _same_ranking(left, right) -> bool:
    """Bit-identical result check: node ids, scores and order."""
    return [(r.node_id, r.score) for r in left] == [
        (r.node_id, r.score) for r in right
    ]


# ------------------------------------------------------------------ hierarchy
@register_suite(
    "hierarchy",
    "the paper's engine hierarchy (BOOL / PPRED / NPRED / COMP) per query class",
)
def suite_hierarchy(run: SuiteRun) -> None:
    collection = _corpus(run)
    engine = FullTextEngine.from_collection(collection, access_mode="fast")
    queries = _queries()
    series = [
        ("BOOL/bool", "bool", queries["BOOL"]),
        ("PPRED-POS/ppred", "ppred", queries["POSITIVE"]),
        ("NPRED-POS/npred", "npred", queries["POSITIVE"]),
        ("NPRED-NEG/npred", "npred", queries["NEGATIVE"]),
        ("COMP-POS/comp", "comp", queries["POSITIVE"]),
    ]
    repeats = _repeats(run)
    for name, engine_choice, query in series:
        matches = len(engine.search(query, engine=engine_choice))
        run.case(
            name,
            lambda q=query, e=engine_choice: engine.search(q, engine=e),
            repeats=repeats,
            extra={"matches": matches},
        )
    engine.close()


# --------------------------------------------------------------- access modes
@register_suite(
    "access_modes",
    "paper-faithful vs fast cursor access modes, results verified equal",
)
def suite_access_modes(run: SuiteRun) -> None:
    collection = _corpus(run)
    paper = FullTextEngine.from_collection(collection, access_mode="paper")
    fast = FullTextEngine.from_collection(collection, access_mode="fast")
    queries = _queries()
    repeats = _repeats(run)
    for series, query in queries.items():
        verified = _same_ranking(paper.search(query), fast.search(query))
        for mode, engine in (("paper", paper), ("fast", fast)):
            run.case(
                f"{mode}/{series}",
                lambda q=query, e=engine: e.search(q),
                repeats=repeats,
                verified=verified,
            )
    paper.close()
    fast.close()


# --------------------------------------------------------------------- top-k
@register_suite(
    "topk",
    "top-k pushdown vs full ranking, prefix equality verified",
)
def suite_topk(run: SuiteRun) -> None:
    collection = _corpus(run)
    engine = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast"
    )
    queries = _queries()
    repeats = _repeats(run)
    top_k = 10
    for series, query in queries.items():
        full = engine.search(query)
        cut = engine.search(query, top_k=top_k)
        verified = _same_ranking(cut, list(full)[: len(cut)])
        run.case(
            f"rank_all/{series}",
            lambda q=query: engine.search(q),
            repeats=repeats,
            verified=verified,
            extra={"matches": len(full)},
        )
        run.case(
            f"top{top_k}/{series}",
            lambda q=query: engine.search(q, top_k=top_k),
            repeats=repeats,
            verified=verified,
        )
    engine.close()


# ------------------------------------------------------------------- sharding
@register_suite(
    "sharding",
    "single index vs scatter-gather shards, cold and cache-warm batches",
)
def suite_sharding(run: SuiteRun) -> None:
    collection = _corpus(run)
    single = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast"
    )
    nocache = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast", shards=4, cache_size=0
    )
    cached = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast", shards=4, cache_size=256
    )
    batch = list(_queries().values())
    verified = all(
        _same_ranking(single.search(query), nocache.search(query))
        for query in batch
    )
    repeats = _repeats(run)
    run.case(
        "single/batch",
        lambda: single.search_many(batch),
        repeats=repeats,
        items=len(batch),
        verified=verified,
    )
    run.case(
        "sharded_nocache/batch",
        lambda: nocache.search_many(batch),
        repeats=repeats,
        items=len(batch),
        verified=verified,
    )
    # The warmup pass fills the LRU cache, so the timed passes measure the
    # cache-hit path the long-running server actually serves.
    run.case(
        "sharded_warm/batch",
        lambda: cached.search_many(batch),
        repeats=repeats,
        warmup=2,
        items=len(batch),
        verified=verified,
    )
    single.close()
    nocache.close()
    cached.close()


# ------------------------------------------------------------------ optimizer
def _skewed_df_collection(num_docs: int) -> Collection:
    """Adversarial corpus for the static merge heuristics: one rare token
    (df ~= num_docs/100) conjoined with one very common token
    (df ~= 0.95 * num_docs).  The paper-mode sequential merge walks the
    whole common list; the cost model sees the gap in the statistics and
    plans a zig-zag over fast cursors instead."""
    texts = []
    for position in range(num_docs):
        words = []
        if position % 100 == 0:
            words.append("rare")
        if position % 20 != 0:
            words.append("common")
        words.extend(f"filler{position % 7}w{offset}" for offset in range(12))
        texts.append(" ".join(words))
    return Collection.from_texts(texts, name="skewed-df")


def _ratio_window_collection(num_docs: int) -> Collection:
    """Negative-control corpus for the zig-zag threshold: df ratio ~= 4,
    just below the measured break-even, where a zig-zag actually *loses* to
    the sequential merge.  The calibrated cost model must decline it -- the
    case pins that the optimizer knows when not to act (expected speedup
    ~1.0, never a regression)."""
    texts = []
    for position in range(num_docs):
        words = []
        if position % 4 == 0:
            words.append("narrow")
        words.append("wide")
        words.extend(f"pad{position % 5}w{offset}" for offset in range(10))
        texts.append(" ".join(words))
    return Collection.from_texts(texts, name="df-ratio-window")


@register_suite(
    "optimizer",
    "cost-based planning ablation: optimizer on vs off on the standard "
    "workload and on adversarial corpora, results verified bit-identical",
)
def suite_optimizer(run: SuiteRun) -> None:
    repeats = _repeats(run)

    # -- workload parity: the fig3-fig8 style queries must not regress when
    #    the optimizer is on (acceptance: within a few percent of off).
    collection = _corpus(run)
    off = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast", optimizer="off"
    )
    on = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast", optimizer="on"
    )
    queries = _queries()
    for series, query in queries.items():
        verified = _same_ranking(off.search(query), on.search(query))
        for mode, engine in (("off", off), ("on", on)):
            run.case(
                f"workload_{mode}/{series}",
                lambda q=query, e=engine: e.search(q),
                repeats=repeats,
                verified=verified,
            )
    off.close()
    on.close()

    # -- adversarial: skewed document frequencies under the paper access
    #    mode.  On skewed_df the static path runs the sequential paper merge
    #    over the common list and the optimizer upgrades to a fast-cursor
    #    zig-zag (the ablation win); df_ratio4 is the negative control where
    #    the model must stick with the sequential merge (parity).
    for label, builder, query in (
        ("skewed_df", _skewed_df_collection, "'rare' AND 'common'"),
        ("df_ratio4", _ratio_window_collection, "'narrow' AND 'wide'"),
    ):
        # The zig-zag win scales with the common list's length; below ~500
        # docs fixed per-query overheads swamp it, so even quick mode keeps
        # the adversarial corpora big enough for the ablation to show.
        adversarial = builder(700 if run.quick else 1000)
        adv_off = FullTextEngine.from_collection(
            adversarial, scoring="tfidf", access_mode="paper", optimizer="off"
        )
        adv_on = FullTextEngine.from_collection(
            adversarial, scoring="tfidf", access_mode="paper", optimizer="on"
        )
        verified = _same_ranking(adv_off.search(query), adv_on.search(query))
        cases = {}
        for mode, engine in (("off", adv_off), ("on", adv_on)):
            cases[mode] = run.case(
                f"{label}_{mode}/BOOL",
                lambda e=engine: e.search(query),
                repeats=repeats,
                verified=verified,
                extra={"docs": len(adversarial)},
            )
        speedup = (
            cases["off"].timing.min / cases["on"].timing.min
            if cases["on"].timing.min > 0
            else None
        )
        cases["on"].extra["speedup_vs_off"] = speedup
        adv_off.close()
        adv_on.close()


# ---------------------------------------------------------------- live ingest
@register_suite(
    "live_ingest",
    "live-tier write throughput (WAL-less memtable path) and post-ingest query latency",
)
def suite_live_ingest(run: SuiteRun) -> None:
    collection = _corpus(run)
    docs = [
        " ".join(occ.token for occ in node.occurrences) for node in collection
    ]
    batch = docs[: 60 if run.quick else 150]
    queries = _queries()
    repeats = _repeats(run)

    def ingest() -> None:
        engine = FullTextEngine.from_collection(
            collection, access_mode="fast", live=True, flush_threshold=64
        )
        for text in batch:
            engine.add_document(text)
        engine.flush()
        engine.close()

    run.case(
        "ingest/add_documents",
        ingest,
        repeats=repeats,
        warmup=1,
        items=len(batch),
        extra={"flush_threshold": 64},
    )
    live = FullTextEngine.from_collection(
        collection, access_mode="fast", live=True, flush_threshold=64
    )
    for text in batch:
        live.add_document(text)
    live.flush()
    run.case(
        "query/BOOL_after_ingest",
        lambda: live.search(queries["BOOL"]),
        repeats=repeats,
        extra={"live_docs": len(collection)},
    )
    live.close()
