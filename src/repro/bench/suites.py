"""The registered benchmark suites behind ``repro bench run``.

Each suite measures one layer of the stack on the deterministic INEX-like
synthetic corpus, through the shared min-of-N timing core of
:mod:`repro.bench.perf`.  Suites whose comparisons have an equality
contract (top-k prefix, sharded == single) verify it *before* timing and
record ``verified`` on the case -- a benchmark that silently compares
different answers is worthless.

``--quick`` shrinks the corpus and repeat counts to CI smoke scale; the
curve shapes survive, the absolute numbers shrink.
"""

from __future__ import annotations

from repro.bench.perf import SuiteRun, register_suite
from repro.bench.workload import workload_queries
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.core.engine import FullTextEngine

#: Corpus shape per scale: (num_nodes, tokens_per_node, pos_per_entry).
_FULL_SHAPE = (300, 150, 3)
_QUICK_SHAPE = (120, 80, 2)


def _corpus(run: SuiteRun):
    nodes, tokens_per_node, pos_per_entry = (
        _QUICK_SHAPE if run.quick else _FULL_SHAPE
    )
    collection = generate_inex_like_collection(
        num_nodes=nodes,
        tokens_per_node=tokens_per_node,
        pos_per_entry=pos_per_entry,
        document_frequency=0.6,
    )
    run.corpus = {
        "nodes": nodes,
        "tokens_per_node": tokens_per_node,
        "pos_per_entry": pos_per_entry,
        "collection": collection.name,
    }
    return collection


def _queries():
    return workload_queries(list(DEFAULT_QUERY_TOKENS), num_tokens=3, num_predicates=2)


def _repeats(run: SuiteRun) -> int:
    return 3 if run.quick else 5


def _same_ranking(left, right) -> bool:
    """Bit-identical result check: node ids, scores and order."""
    return [(r.node_id, r.score) for r in left] == [
        (r.node_id, r.score) for r in right
    ]


# ------------------------------------------------------------------ hierarchy
@register_suite(
    "hierarchy",
    "the paper's engine hierarchy (BOOL / PPRED / NPRED / COMP) per query class",
)
def suite_hierarchy(run: SuiteRun) -> None:
    collection = _corpus(run)
    engine = FullTextEngine.from_collection(collection, access_mode="fast")
    queries = _queries()
    series = [
        ("BOOL/bool", "bool", queries["BOOL"]),
        ("PPRED-POS/ppred", "ppred", queries["POSITIVE"]),
        ("NPRED-POS/npred", "npred", queries["POSITIVE"]),
        ("NPRED-NEG/npred", "npred", queries["NEGATIVE"]),
        ("COMP-POS/comp", "comp", queries["POSITIVE"]),
    ]
    repeats = _repeats(run)
    for name, engine_choice, query in series:
        matches = len(engine.search(query, engine=engine_choice))
        run.case(
            name,
            lambda q=query, e=engine_choice: engine.search(q, engine=e),
            repeats=repeats,
            extra={"matches": matches},
        )
    engine.close()


# --------------------------------------------------------------- access modes
@register_suite(
    "access_modes",
    "paper-faithful vs fast cursor access modes, results verified equal",
)
def suite_access_modes(run: SuiteRun) -> None:
    collection = _corpus(run)
    paper = FullTextEngine.from_collection(collection, access_mode="paper")
    fast = FullTextEngine.from_collection(collection, access_mode="fast")
    queries = _queries()
    repeats = _repeats(run)
    for series, query in queries.items():
        verified = _same_ranking(paper.search(query), fast.search(query))
        for mode, engine in (("paper", paper), ("fast", fast)):
            run.case(
                f"{mode}/{series}",
                lambda q=query, e=engine: e.search(q),
                repeats=repeats,
                verified=verified,
            )
    paper.close()
    fast.close()


# --------------------------------------------------------------------- top-k
@register_suite(
    "topk",
    "top-k pushdown vs full ranking, prefix equality verified",
)
def suite_topk(run: SuiteRun) -> None:
    collection = _corpus(run)
    engine = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast"
    )
    queries = _queries()
    repeats = _repeats(run)
    top_k = 10
    for series, query in queries.items():
        full = engine.search(query)
        cut = engine.search(query, top_k=top_k)
        verified = _same_ranking(cut, list(full)[: len(cut)])
        run.case(
            f"rank_all/{series}",
            lambda q=query: engine.search(q),
            repeats=repeats,
            verified=verified,
            extra={"matches": len(full)},
        )
        run.case(
            f"top{top_k}/{series}",
            lambda q=query: engine.search(q, top_k=top_k),
            repeats=repeats,
            verified=verified,
        )
    engine.close()


# ------------------------------------------------------------------- sharding
@register_suite(
    "sharding",
    "single index vs scatter-gather shards, cold and cache-warm batches",
)
def suite_sharding(run: SuiteRun) -> None:
    collection = _corpus(run)
    single = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast"
    )
    nocache = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast", shards=4, cache_size=0
    )
    cached = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast", shards=4, cache_size=256
    )
    batch = list(_queries().values())
    verified = all(
        _same_ranking(single.search(query), nocache.search(query))
        for query in batch
    )
    repeats = _repeats(run)
    run.case(
        "single/batch",
        lambda: single.search_many(batch),
        repeats=repeats,
        items=len(batch),
        verified=verified,
    )
    run.case(
        "sharded_nocache/batch",
        lambda: nocache.search_many(batch),
        repeats=repeats,
        items=len(batch),
        verified=verified,
    )
    # The warmup pass fills the LRU cache, so the timed passes measure the
    # cache-hit path the long-running server actually serves.
    run.case(
        "sharded_warm/batch",
        lambda: cached.search_many(batch),
        repeats=repeats,
        warmup=2,
        items=len(batch),
        verified=verified,
    )
    single.close()
    nocache.close()
    cached.close()


# ---------------------------------------------------------------- live ingest
@register_suite(
    "live_ingest",
    "live-tier write throughput (WAL-less memtable path) and post-ingest query latency",
)
def suite_live_ingest(run: SuiteRun) -> None:
    collection = _corpus(run)
    docs = [
        " ".join(occ.token for occ in node.occurrences) for node in collection
    ]
    batch = docs[: 60 if run.quick else 150]
    queries = _queries()
    repeats = _repeats(run)

    def ingest() -> None:
        engine = FullTextEngine.from_collection(
            collection, access_mode="fast", live=True, flush_threshold=64
        )
        for text in batch:
            engine.add_document(text)
        engine.flush()
        engine.close()

    run.case(
        "ingest/add_documents",
        ingest,
        repeats=repeats,
        warmup=1,
        items=len(batch),
        extra={"flush_threshold": 64},
    )
    live = FullTextEngine.from_collection(
        collection, access_mode="fast", live=True, flush_threshold=64
    )
    for text in batch:
        live.add_document(text)
    live.flush()
    run.case(
        "query/BOOL_after_ingest",
        lambda: live.search(queries["BOOL"]),
        repeats=repeats,
        extra={"live_docs": len(collection)},
    )
    live.close()
