"""Workload capture: sampled query traffic in a replayable JSONL format.

``repro serve-http --capture FILE`` attaches a :class:`WorkloadCapture` to
the server; every handled ``/search`` request (parse-valid ones -- the
replayable population) is recorded with probability ``sample`` as one JSON
object per line::

    {"v": 1, "ts": 1754650000.0, "request_id": "a1b2...", "q": "'software'",
     "top_k": 10, "language": "auto", "engine": "auto", "method": "GET",
     "status": 200, "elapsed_ms": 1.84}

``request_id`` is the same id stamped into the response, the access log and
any slow-query trace dump, so a captured query links straight back to its
full serving record.  ``repro replay FILE`` feeds the records back through
an engine or a live HTTP endpoint (:mod:`repro.bench.replay`); only
``status == 200`` records replay (a 504 has no reference answer).

:func:`synthetic_zipf_workload` builds the same record shape from nothing:
a zipfian-skewed stream over a query pool derived from the corpus's own
most frequent tokens, for load tests without captured traffic.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

from repro.exceptions import ReproError

#: Version stamp of the workload record format.
CAPTURE_VERSION = 1


class WorkloadCapture:
    """Thread-safe sampled JSONL recorder for served search traffic."""

    def __init__(self, path: "Path | str", sample: float = 1.0, seed: "int | None" = None) -> None:
        if not 0.0 < sample <= 1.0:
            raise ReproError(f"capture sample must be in (0, 1], got {sample}")
        self.path = Path(path)
        self.sample = sample
        self.recorded = 0
        self.skipped = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot open capture file {self.path}: {exc}")

    def record(
        self,
        *,
        query: str,
        top_k: "int | None",
        language: str = "auto",
        engine: str = "auto",
        method: str = "GET",
        status: int = 200,
        request_id: "str | None" = None,
        elapsed_ms: "float | None" = None,
    ) -> bool:
        """Append one sampled record; returns whether it was written."""
        with self._lock:
            if self._handle.closed:
                return False
            if self.sample < 1.0 and self._rng.random() >= self.sample:
                self.skipped += 1
                return False
            line = json.dumps(
                {
                    "v": CAPTURE_VERSION,
                    "ts": time.time(),
                    "request_id": request_id,
                    "q": query,
                    "top_k": top_k,
                    "language": language,
                    "engine": engine,
                    "method": method,
                    "status": status,
                    "elapsed_ms": round(elapsed_ms, 3)
                    if elapsed_ms is not None
                    else None,
                },
                ensure_ascii=False,
            )
            # Flush per line: a capture cut short by SIGTERM stays replayable.
            print(line, file=self._handle, flush=True)
            self.recorded += 1
            return True

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"WorkloadCapture(path={str(self.path)!r}, sample={self.sample}, "
            f"recorded={self.recorded})"
        )


def load_workload(path: "Path | str", statuses: "tuple[int, ...]" = (200,)) -> list[dict]:
    """Parse a captured workload file back into replayable records.

    Keeps records whose ``status`` is in ``statuses`` (by default only 200s:
    those have a reference answer to verify against).  Unparsable lines
    raise -- a torn final line means the capture was cut mid-write, which
    replay must not paper over silently -- except a trailing partial line,
    which is dropped like a torn WAL tail.
    """
    path = Path(path)
    try:
        payload = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read workload {path}: {exc}")
    records: list[dict] = []
    lines = payload.split("\n")
    complete, tail = lines[:-1], lines[-1]
    for index, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"workload {path} line {index + 1} is corrupt: {exc}")
        if not isinstance(record, dict) or "q" not in record:
            raise ReproError(
                f"workload {path} line {index + 1} is not a capture record"
            )
        if record.get("status", 200) in statuses:
            records.append(record)
    if tail.strip():
        # A torn final line (no trailing newline): ignore, like WAL replay.
        try:
            record = json.loads(tail)
        except json.JSONDecodeError:
            record = None
        if isinstance(record, dict) and record.get("status", 200) in statuses:
            records.append(record)
    if not records:
        raise ReproError(f"workload {path} holds no replayable records")
    return records


def zipf_weights(count: int, skew: float) -> list[float]:
    """Unnormalised zipfian weights: P(rank k) proportional to 1 / k**skew."""
    if count < 1:
        raise ReproError(f"zipf pool must hold at least one query, got {count}")
    if skew < 0:
        raise ReproError(f"zipf skew must be >= 0, got {skew}")
    return [1.0 / ((rank + 1) ** skew) for rank in range(count)]


def synthetic_zipf_workload(
    pool: "list[str]",
    count: int,
    skew: float,
    *,
    top_k: "int | None" = 10,
    seed: int = 0,
) -> list[dict]:
    """``count`` capture-shaped records drawn zipfian-skewed from ``pool``.

    ``pool[0]`` is the hottest query; with ``skew=0`` the draw is uniform.
    Deterministic for a given seed, so replay runs are reproducible.
    """
    weights = zipf_weights(len(pool), skew)
    rng = random.Random(seed)
    drawn = rng.choices(range(len(pool)), weights=weights, k=count)
    return [
        {
            "v": CAPTURE_VERSION,
            "ts": None,
            "request_id": None,
            "q": pool[index],
            "top_k": top_k,
            "language": "auto",
            "engine": "auto",
            "method": "GET",
            "status": 200,
            "elapsed_ms": None,
        }
        for index in drawn
    ]


def query_pool_from_collection(collection, size: int = 32) -> list[str]:
    """A query pool over the corpus's most frequent indexed tokens.

    Single-token BOOL queries plus pairwise conjunctions of the hottest
    tokens, hottest first -- the shape a zipfian workload wants: the head
    of the pool is both the most drawn and the cheapest to cache.
    """
    from collections import Counter

    counts: Counter = Counter()
    for node in collection:
        counts.update(occ.token for occ in node.occurrences)
    hottest = [token for token, _ in counts.most_common(max(size, 8))]
    if not hottest:
        raise ReproError("collection holds no indexable tokens")
    pool = [f"'{token}'" for token in hottest[:size]]
    for first, second in zip(hottest, hottest[1:]):
        if len(pool) >= size:
            break
        pool.append(f"'{first}' AND '{second}'")
    return pool[:size]
