"""Parameter sweeps regenerating the paper's Figures 5--8.

Each ``figureN`` function builds the synthetic INEX-like collection(s) for the
sweep, runs the series of Section 6 through the
:class:`~repro.bench.harness.ExperimentHarness`, and returns an
:class:`~repro.bench.harness.ExperimentTable` whose rows mirror the figure.

Scale: the paper uses the 500 MB INEX collection (default 6000 context nodes,
query tokens with up to 25/125 positions per entry).  A pure-Python naive
COMP evaluation at that scale would take hours, so the *default* parameters
here are scaled down (a few hundred nodes, small position counts) -- enough to
reproduce the curve *shapes* (who wins, linear vs super-linear growth) in a
few seconds.  Every function accepts a :class:`FigureScale` to run closer to
paper scale when time permits; ``FigureScale.paper()`` gives the paper's
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.index.inverted_index import InvertedIndex
from repro.bench.harness import SERIES, ExperimentHarness, ExperimentTable


@dataclass(frozen=True)
class FigureScale:
    """Dataset/query sizes for a sweep.

    ``laptop()`` (the default) keeps every sweep under a few seconds in pure
    Python; ``paper()`` mirrors the INEX experiment sizes.
    """

    num_nodes: int = 400
    tokens_per_node: int = 120
    pos_per_entry: int = 4
    document_frequency: float = 0.6
    default_tokens: int = 3
    default_predicates: int = 2
    token_counts: tuple[int, ...] = (1, 2, 3, 4, 5)
    predicate_counts: tuple[int, ...] = (0, 1, 2, 3, 4)
    node_counts: tuple[int, ...] = (100, 250, 400)
    pos_per_entry_values: tuple[int, ...] = (2, 4, 8)
    query_tokens: Sequence[str] = field(default=DEFAULT_QUERY_TOKENS)
    repeats: int = 1
    seed: int = 20060330

    @classmethod
    def laptop(cls) -> "FigureScale":
        return cls()

    @classmethod
    def smoke(cls) -> "FigureScale":
        """Tiny sizes for unit tests of the harness itself."""
        return cls(
            num_nodes=60,
            tokens_per_node=60,
            pos_per_entry=2,
            token_counts=(1, 2, 3),
            predicate_counts=(0, 1, 2),
            node_counts=(30, 60),
            pos_per_entry_values=(2, 3),
        )

    @classmethod
    def paper(cls) -> "FigureScale":
        """The INEX experiment sizes (minutes to hours in pure Python)."""
        return cls(
            num_nodes=6000,
            tokens_per_node=400,
            pos_per_entry=25,
            node_counts=(2500, 6000, 10000),
            pos_per_entry_values=(5, 25, 125),
        )

    def collection(self, num_nodes: int | None = None, pos_per_entry: int | None = None):
        return generate_inex_like_collection(
            num_nodes=num_nodes or self.num_nodes,
            tokens_per_node=self.tokens_per_node,
            pos_per_entry=pos_per_entry or self.pos_per_entry,
            document_frequency=self.document_frequency,
            query_tokens=self.query_tokens,
            seed=self.seed,
        )


def _harness(index: InvertedIndex, scale: FigureScale) -> ExperimentHarness:
    return ExperimentHarness(index, repeats=scale.repeats)


def figure5(scale: FigureScale | None = None, series: Sequence[str] = SERIES) -> ExperimentTable:
    """Figure 5: evaluation time vs number of query tokens (data fixed)."""
    scale = scale or FigureScale.laptop()
    index = InvertedIndex(scale.collection())
    harness = _harness(index, scale)
    table = ExperimentTable("Figure 5: varying number of query tokens", "query tokens")
    for num_tokens in scale.token_counts:
        num_predicates = min(scale.default_predicates, max(num_tokens - 1, 0))
        table.points.append(
            harness.run_point(
                num_tokens, scale.query_tokens, num_tokens, num_predicates, series
            )
        )
    return table


def figure6(scale: FigureScale | None = None, series: Sequence[str] = SERIES) -> ExperimentTable:
    """Figure 6: evaluation time vs number of query predicates (data fixed)."""
    scale = scale or FigureScale.laptop()
    index = InvertedIndex(scale.collection())
    harness = _harness(index, scale)
    table = ExperimentTable(
        "Figure 6: varying number of query predicates", "query predicates"
    )
    for num_predicates in scale.predicate_counts:
        table.points.append(
            harness.run_point(
                num_predicates,
                scale.query_tokens,
                scale.default_tokens,
                num_predicates,
                series,
            )
        )
    return table


def figure7(scale: FigureScale | None = None, series: Sequence[str] = SERIES) -> ExperimentTable:
    """Figure 7: evaluation time vs number of context nodes (query fixed)."""
    scale = scale or FigureScale.laptop()
    table = ExperimentTable("Figure 7: varying number of context nodes", "context nodes")
    for num_nodes in scale.node_counts:
        index = InvertedIndex(scale.collection(num_nodes=num_nodes))
        harness = _harness(index, scale)
        table.points.append(
            harness.run_point(
                num_nodes,
                scale.query_tokens,
                scale.default_tokens,
                scale.default_predicates,
                series,
            )
        )
    return table


def figure8(scale: FigureScale | None = None, series: Sequence[str] = SERIES) -> ExperimentTable:
    """Figure 8: evaluation time vs positions per inverted-list entry."""
    scale = scale or FigureScale.laptop()
    table = ExperimentTable(
        "Figure 8: varying positions per inverted-list entry", "positions per entry"
    )
    for pos_per_entry in scale.pos_per_entry_values:
        index = InvertedIndex(scale.collection(pos_per_entry=pos_per_entry))
        harness = _harness(index, scale)
        table.points.append(
            harness.run_point(
                pos_per_entry,
                scale.query_tokens,
                scale.default_tokens,
                scale.default_predicates,
                series,
            )
        )
    return table


ALL_FIGURES = {
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
}


def run_all(scale: FigureScale | None = None) -> dict[str, ExperimentTable]:
    """Run every figure sweep and return the tables keyed by figure name."""
    scale = scale or FigureScale.laptop()
    return {name: func(scale) for name, func in ALL_FIGURES.items()}
