"""Workload replay: drive captured or synthetic traffic, verified then timed.

:func:`replay_workload` takes the records of :mod:`repro.bench.capture` and
drives them against a *target* -- a cached engine in-process
(:class:`EngineTarget`) or a live HTTP endpoint (:class:`HttpTarget`) --
in three explicit phases:

1. **Verify.**  Every distinct query is executed once on the target and
   once on a direct, uncached reference ``engine.search``; node ids,
   scores and order must be bit-identical or the replay aborts.  (HTTP
   responses serialise floats with ``repr`` fidelity, so ``json.loads``
   recovers the exact doubles -- equality here really is bit equality.)
2. **Warm.**  ``warm_passes`` passes over the distinct queries populate
   the target's result cache, exactly like a long-running server that has
   seen its working set.  Phase boundaries are reported, never implicit.
3. **Measure.**  The full record stream replays in order; per-request
   wall-clock latencies aggregate to p50/p95/p99, and the target's cache
   counters are sampled per chunk to report the cache hit *curve* as the
   zipfian head gets hot.

The report is JSON-shaped; ``repro replay`` prints it human-readably and
optionally dumps the JSON next to the BENCH results.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from urllib.error import URLError
from urllib.parse import quote
from urllib.request import urlopen

from repro.exceptions import ReproError
from repro.telemetry.latency import percentile

#: How many chunks the measure phase samples cache counters at.
DEFAULT_CURVE_POINTS = 10


def _record_key(record: dict) -> tuple:
    return (
        record.get("q"),
        record.get("top_k"),
        record.get("language", "auto"),
        record.get("engine", "auto"),
    )


class EngineTarget:
    """Replay against an in-process engine (typically one with a cache)."""

    name = "engine"

    def __init__(self, engine) -> None:
        self.engine = engine

    def search(self, record: dict) -> "list[tuple[int, float]]":
        results = self.engine.search(
            record["q"],
            language=record.get("language", "auto"),
            engine=record.get("engine", "auto"),
            top_k=record.get("top_k"),
        )
        return [(result.node_id, result.score) for result in results]

    def cache_counters(self) -> "tuple[int, int] | None":
        stats = self.engine.cache_stats()
        if not stats.get("capacity"):
            return None
        return int(stats["hits"]), int(stats["misses"])

    def close(self) -> None:
        pass  # the caller owns the engine


class HttpTarget:
    """Replay against a live ``repro serve-http`` endpoint."""

    name = "http"

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _get(self, path: str) -> dict:
        try:
            with urlopen(self.base_url + path, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except URLError as exc:
            raise ReproError(
                f"cannot reach {self.base_url}{path}: {exc.reason}"
            )
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot reach {self.base_url}{path}: {exc}")

    def search(self, record: dict) -> "list[tuple[int, float]]":
        params = [f"q={quote(record['q'])}"]
        if record.get("top_k") is not None:
            params.append(f"top_k={int(record['top_k'])}")
        for key in ("language", "engine"):
            value = record.get(key, "auto")
            if value and value != "auto":
                params.append(f"{key}={quote(str(value))}")
        payload = self._get("/search?" + "&".join(params))
        return [
            (entry["node_id"], entry["score"])
            for entry in payload.get("results", ())
        ]

    def cache_counters(self) -> "tuple[int, int] | None":
        cache = self._get("/stats").get("engine", {}).get("cache", {})
        if not cache.get("capacity"):
            return None
        return int(cache["hits"]), int(cache["misses"])

    def close(self) -> None:
        pass  # plain request/response; nothing held open


def _hit_rate(counters, baseline) -> "float | None":
    if counters is None or baseline is None:
        return None
    hits = counters[0] - baseline[0]
    lookups = hits + (counters[1] - baseline[1])
    return (hits / lookups) if lookups > 0 else None


def replay_workload(
    records: "list[dict]",
    target,
    reference_engine=None,
    *,
    warm_passes: int = 1,
    verify: bool = True,
    curve_points: int = DEFAULT_CURVE_POINTS,
    echo=None,
) -> dict:
    """Verify, warm, then measure; returns the JSON-shaped replay report."""
    if not records:
        raise ReproError("nothing to replay: the workload is empty")
    say = echo or (lambda message: None)
    distinct: "dict[tuple, dict]" = {}
    for record in records:
        distinct.setdefault(_record_key(record), record)
    report: dict = {
        "records": len(records),
        "distinct_queries": len(distinct),
        "target": target.name,
        "warm_passes": warm_passes,
    }

    # ------------------------------------------------------- phase 1: verify
    if verify:
        if reference_engine is None:
            raise ReproError("verification needs a reference engine")
        say(f"verify: {len(distinct)} distinct query shape(s) ...")
        mismatches = 0
        for key, record in distinct.items():
            served = target.search(record)
            direct = reference_engine.search(
                record["q"],
                language=record.get("language", "auto"),
                engine=record.get("engine", "auto"),
                top_k=record.get("top_k"),
            )
            expected = [(result.node_id, result.score) for result in direct]
            if served != expected:
                mismatches += 1
                say(
                    f"  MISMATCH {record['q']!r}: served {served[:3]}... "
                    f"!= direct {expected[:3]}..."
                )
        report["verified"] = mismatches == 0
        report["verify_mismatches"] = mismatches
        if mismatches:
            raise ReproError(
                f"replay verification failed: {mismatches} of {len(distinct)} "
                f"distinct queries differ from direct engine.search"
            )
        say("verify: all served results bit-identical to direct engine.search")
    else:
        report["verified"] = None

    # --------------------------------------------------------- phase 2: warm
    warm_baseline = target.cache_counters()
    for _ in range(warm_passes):
        for record in distinct.values():
            target.search(record)
    warm_rate = _hit_rate(target.cache_counters(), warm_baseline)
    report["warm_hit_rate"] = warm_rate
    if warm_passes:
        say(
            f"warm: {warm_passes} pass(es) over {len(distinct)} distinct "
            f"queries"
            + (f", hit rate {warm_rate:.1%}" if warm_rate is not None else "")
        )

    # ------------------------------------------------------ phase 3: measure
    say(f"measure: replaying {len(records)} request(s) in capture order ...")
    chunk = max(1, len(records) // max(1, curve_points))
    latencies: list[float] = []
    curve: list[dict] = []
    chunk_baseline = target.cache_counters()
    measure_baseline = chunk_baseline
    started = time.perf_counter()
    for index, record in enumerate(records, start=1):
        begun = time.perf_counter()
        target.search(record)
        latencies.append((time.perf_counter() - begun) * 1000.0)
        if index % chunk == 0 or index == len(records):
            counters = target.cache_counters()
            curve.append(
                {
                    "requests": index,
                    "hit_rate": _hit_rate(counters, chunk_baseline),
                }
            )
            chunk_baseline = counters
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)
    report["elapsed_seconds"] = elapsed
    report["throughput_per_s"] = len(records) / elapsed if elapsed > 0 else None
    report["latency_ms"] = {
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "p99": percentile(ordered, 0.99),
        "max": ordered[-1],
    }
    report["measure_hit_rate"] = _hit_rate(
        target.cache_counters(), measure_baseline
    )
    report["cache_hit_curve"] = curve
    return report


def render_replay_report(report: dict) -> str:
    """The replay report as human-readable text."""
    latency = report["latency_ms"]
    lines = [
        f"replayed {report['records']} request(s) "
        f"({report['distinct_queries']} distinct) against {report['target']}",
        "verified: "
        + (
            "bit-identical to direct engine.search"
            if report.get("verified")
            else ("skipped" if report.get("verified") is None else "FAILED")
        ),
        f"throughput: {report['throughput_per_s']:,.1f} req/s "
        f"over {report['elapsed_seconds']:.3f} s",
        f"latency: p50 {latency['p50']:.3f} ms, p95 {latency['p95']:.3f} ms, "
        f"p99 {latency['p99']:.3f} ms, max {latency['max']:.3f} ms",
    ]
    if report.get("warm_hit_rate") is not None:
        lines.append(
            f"warm phase hit rate: {report['warm_hit_rate']:.1%} "
            f"({report['warm_passes']} pass(es))"
        )
    if report.get("measure_hit_rate") is not None:
        lines.append(f"measure phase hit rate: {report['measure_hit_rate']:.1%}")
    curve = [
        point for point in report.get("cache_hit_curve", ())
        if point["hit_rate"] is not None
    ]
    if curve:
        steps = " -> ".join(
            f"{point['hit_rate']:.0%}@{point['requests']}" for point in curve
        )
        lines.append(f"cache hit curve: {steps}")
    return "\n".join(lines)


def write_replay_report(report: dict, path: "Path | str") -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
