"""Plain-text reporting of experiment tables.

The paper presents its results as line plots; here the same data is printed
as aligned text tables (one row per x-axis value, one column per series) plus
a short "shape check" summarising the qualitative claims of Section 6.1:
BOOL ≼ PPRED ≼ NPRED ≼ COMP, PPRED ≈ BOOL, NPRED < COMP on negative
predicates.
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.bench.harness import ExperimentTable


def format_seconds(value: object) -> str:
    """Milliseconds with three decimals, or blank for missing values."""
    if value == "" or value is None:
        return ""
    return f"{float(value) * 1000:.3f}"


def table_to_text(table: ExperimentTable, unit: str = "ms") -> str:
    """Render an experiment table as an aligned plain-text table."""
    series = table.series_names()
    header = [table.x_label] + [f"{name} ({unit})" for name in series]
    rows: list[list[str]] = [header]
    for raw in table.to_rows():
        row = [str(raw[table.x_label])]
        for name in series:
            row.append(format_seconds(raw.get(name, "")))
        rows.append(row)
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [table.name, "-" * len(table.name)]
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def table_to_csv(table: ExperimentTable) -> str:
    """Render an experiment table as CSV (seconds, not milliseconds)."""
    series = table.series_names()
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([table.x_label] + list(series))
    for raw in table.to_rows():
        writer.writerow([raw[table.x_label]] + [raw.get(name, "") for name in series])
    return buffer.getvalue()


def ordering_check(
    table: ExperimentTable,
    faster: str,
    slower: str,
    tolerance: float = 1.5,
) -> bool:
    """True iff ``faster`` is no slower than ``tolerance`` × ``slower`` at every point.

    A generous tolerance absorbs interpreter noise at sub-millisecond scales;
    the paper's claim is about asymptotic ordering, not constant factors.
    """
    fast_curve = dict(table.series(faster))
    slow_curve = dict(table.series(slower))
    shared = set(fast_curve) & set(slow_curve)
    if not shared:
        return True
    return all(fast_curve[x] <= slow_curve[x] * tolerance for x in shared)


def shape_summary(table: ExperimentTable) -> list[str]:
    """Qualitative claims of Section 6.1 checked against the measured table."""
    claims: list[tuple[str, str, str, float]] = [
        ("BOOL is never slower than COMP-POS", "BOOL", "COMP-POS", 1.5),
        ("PPRED-POS is never slower than COMP-POS", "PPRED-POS", "COMP-POS", 1.5),
        # PPRED vs NPRED on positive predicates is a constant-factor contest
        # (one permutation thread each); allow generous noise headroom.
        ("PPRED-POS is comparable to NPRED-POS", "PPRED-POS", "NPRED-POS", 4.0),
        ("NPRED-NEG is never slower than COMP-NEG", "NPRED-NEG", "COMP-NEG", 1.5),
    ]
    lines = []
    for description, fast, slow, tolerance in claims:
        if not table.series(fast) or not table.series(slow):
            continue
        verdict = "OK" if ordering_check(table, fast, slow, tolerance) else "VIOLATED"
        lines.append(f"[{verdict}] {description}")
    return lines


def render_report(tables: Sequence[ExperimentTable]) -> str:
    """Full plain-text report over several figures."""
    sections = []
    for table in tables:
        sections.append(table_to_text(table))
        summary = shape_summary(table)
        if summary:
            sections.append("\n".join(summary))
    return "\n\n".join(sections)
