"""Timing harness for the paper's experiments.

The harness runs one *experiment point*: a fixed collection/index, a fixed
query shape (``toks_Q``, ``preds_Q``), and one timed evaluation per series.
The series names follow the paper's Figures 5--8:

* ``BOOL``       -- conjunctive keyword query on the BOOL merge engine;
* ``PPRED-POS``  -- positive-predicate query on the PPRED engine;
* ``NPRED-POS``  -- the same positive-predicate query on the NPRED engine;
* ``NPRED-NEG``  -- negative-predicate query on the NPRED engine;
* ``COMP-POS``   -- positive-predicate query on the naive COMP engine;
* ``COMP-NEG``   -- negative-predicate query on the naive COMP engine.

Timings use ``time.perf_counter`` around engine evaluation only (parsing,
planning and index construction are excluded), with a configurable number of
repetitions (the minimum is reported, which is the usual choice for
micro-benchmarks dominated by interpreter noise).  Every measurement is
preceded by one untimed warm-up evaluation so that one-time lazy costs (the
columnar index decodes posting entries on first touch) are not booked
against whichever series happens to run first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.engine.npred_engine import NPredEngine
from repro.engine.ppred_engine import PPredEngine
from repro.exceptions import WorkloadError
from repro.index.inverted_index import InvertedIndex
from repro.languages import ast
from repro.model.predicates import PredicateRegistry, default_registry
from repro.bench.workload import workload_queries

#: The series of the paper's figures, in plot order.
SERIES = ("BOOL", "PPRED-POS", "NPRED-POS", "NPRED-NEG", "COMP-POS", "COMP-NEG")


@dataclass
class Measurement:
    """One timed evaluation."""

    series: str
    elapsed_seconds: float
    matches: int
    repeats: int = 1


@dataclass
class ExperimentPoint:
    """All series measured for one x-axis value of a figure."""

    x_value: object
    measurements: dict[str, Measurement] = field(default_factory=dict)

    def seconds(self, series: str) -> float | None:
        measurement = self.measurements.get(series)
        return measurement.elapsed_seconds if measurement else None


@dataclass
class ExperimentTable:
    """A complete figure: x-axis label plus one :class:`ExperimentPoint` per value."""

    name: str
    x_label: str
    points: list[ExperimentPoint] = field(default_factory=list)

    def series_names(self) -> list[str]:
        names: list[str] = []
        for point in self.points:
            for series in point.measurements:
                if series not in names:
                    names.append(series)
        return [series for series in SERIES if series in names] + [
            series for series in names if series not in SERIES
        ]

    def series(self, name: str) -> list[tuple[object, float]]:
        """The (x, seconds) curve of one series."""
        curve = []
        for point in self.points:
            seconds = point.seconds(name)
            if seconds is not None:
                curve.append((point.x_value, seconds))
        return curve

    def to_rows(self) -> list[dict[str, object]]:
        """Rows suitable for tabular display or CSV export."""
        rows = []
        for point in self.points:
            row: dict[str, object] = {self.x_label: point.x_value}
            for series in self.series_names():
                seconds = point.seconds(series)
                row[series] = seconds if seconds is not None else ""
            rows.append(row)
        return rows


class ExperimentHarness:
    """Run the paper's series against one index."""

    def __init__(
        self,
        index: InvertedIndex,
        registry: PredicateRegistry | None = None,
        repeats: int = 1,
        npred_orders: str = "minimal",
        access_mode: str = "paper",
    ) -> None:
        if repeats < 1:
            raise WorkloadError("repeats must be at least 1")
        self.index = index
        self.registry = registry or default_registry()
        self.repeats = repeats
        self.npred_orders = npred_orders
        self.access_mode = access_mode

    # ------------------------------------------------------------------ API
    def time_engine(self, engine_name: str, query: ast.QueryNode) -> Measurement:
        """Time one engine on one query (best of ``repeats`` runs).

        One untimed warm-up evaluation precedes the timed runs; see the
        module docstring.
        """
        evaluate = self._evaluator(engine_name)
        evaluate(query)
        best = float("inf")
        matches = 0
        for _ in range(self.repeats):
            started = time.perf_counter()
            result = evaluate(query)
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
            matches = len(result)
        return Measurement(engine_name, best, matches, self.repeats)

    def run_point(
        self,
        x_value: object,
        query_tokens: Sequence[str],
        num_tokens: int,
        num_predicates: int,
        series: Sequence[str] = SERIES,
    ) -> ExperimentPoint:
        """Measure every requested series for one x-axis value."""
        queries = workload_queries(query_tokens, num_tokens, num_predicates)
        point = ExperimentPoint(x_value)
        runners = {
            "BOOL": ("bool", queries["BOOL"]),
            "PPRED-POS": ("ppred", queries["POSITIVE"]),
            "NPRED-POS": ("npred", queries["POSITIVE"]),
            "COMP-POS": ("comp", queries["POSITIVE"]),
        }
        if "NEGATIVE" in queries:
            runners["NPRED-NEG"] = ("npred", queries["NEGATIVE"])
            runners["COMP-NEG"] = ("comp", queries["NEGATIVE"])
        for series_name in series:
            runner = runners.get(series_name)
            if runner is None:
                continue
            engine_name, query = runner
            measurement = self.time_engine(engine_name, query)
            measurement.series = series_name
            point.measurements[series_name] = measurement
        return point

    # ------------------------------------------------------------- internals
    def _evaluator(self, engine_name: str):
        if engine_name == "bool":
            return BoolEngine(self.index, access_mode=self.access_mode).evaluate
        if engine_name == "ppred":
            return PPredEngine(
                self.index, self.registry, access_mode=self.access_mode
            ).evaluate
        if engine_name == "npred":
            return NPredEngine(
                self.index,
                self.registry,
                orders=self.npred_orders,
                access_mode=self.access_mode,
            ).evaluate
        if engine_name == "comp":
            return NaiveCompEngine(self.index, self.registry).evaluate
        raise WorkloadError(f"unknown engine {engine_name!r}")
