"""Experiment harness: workloads, sweeps for Figures 5-8, complexity model."""

from repro.bench.complexity import (
    HIERARCHY,
    QueryParameters,
    bool_bound,
    bool_noneg_bound,
    comp_bound,
    dominates,
    hierarchy_table,
    npred_bound,
    ppred_bound,
)
from repro.bench.figures import (
    ALL_FIGURES,
    FigureScale,
    figure5,
    figure6,
    figure7,
    figure8,
    run_all,
)
from repro.bench.harness import (
    SERIES,
    ExperimentHarness,
    ExperimentPoint,
    ExperimentTable,
    Measurement,
)
from repro.bench.reporting import (
    ordering_check,
    render_report,
    shape_summary,
    table_to_csv,
    table_to_text,
)
from repro.bench.workload import (
    NEGATIVE_PREDICATES,
    POSITIVE_PREDICATES,
    WorkloadSpec,
    bool_query,
    predicate_query,
    workload_queries,
)

__all__ = [
    "HIERARCHY",
    "QueryParameters",
    "bool_bound",
    "bool_noneg_bound",
    "comp_bound",
    "dominates",
    "hierarchy_table",
    "npred_bound",
    "ppred_bound",
    "ALL_FIGURES",
    "FigureScale",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "run_all",
    "SERIES",
    "ExperimentHarness",
    "ExperimentPoint",
    "ExperimentTable",
    "Measurement",
    "ordering_check",
    "render_report",
    "shape_summary",
    "table_to_csv",
    "table_to_text",
    "NEGATIVE_PREDICATES",
    "POSITIVE_PREDICATES",
    "WorkloadSpec",
    "bool_query",
    "predicate_query",
    "workload_queries",
]
