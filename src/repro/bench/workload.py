"""Workload generation for the paper's experiments (Section 6).

The experiments vary three query parameters -- ``toks_Q`` (number of query
tokens), ``preds_Q`` (number of predicates), ``ops_Q`` (Boolean operations) --
and two data parameters (number of context nodes, positions per inverted-list
entry).  This module generates the query side: given a pool of designated
query tokens (the ones planted by the synthetic corpus generator), it builds

* conjunctive keyword queries for the BOOL series,
* positive-predicate COMP queries (evaluable by PPRED, NPRED and COMP),
* negative-predicate COMP queries (evaluable by NPRED and COMP),

all with exactly the requested number of tokens and predicates, mirroring the
query shapes implied by the paper ("we used the negation of the positive
predicates to generate the negative predicates queries").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import WorkloadError
from repro.languages import ast

#: Positive predicate templates cycled through when building queries.  Each is
#: a (name, needs_constant, constant) triple; the distance limit is generous
#: so that positive-predicate queries keep a reasonable number of matches.
POSITIVE_PREDICATES: tuple[tuple[str, int | None], ...] = (
    ("distance", 50),
    ("ordered", None),
    ("samepara", None),
    ("samesentence", None),
)

#: Negative counterparts (paper: negative queries are the negations of the
#: positive ones).  The small distance limit makes ``not_distance`` highly
#: selective, as observed in the paper's Section 6.3 discussion.
NEGATIVE_PREDICATES: tuple[tuple[str, int | None], ...] = (
    ("not_distance", 5),
    ("not_ordered", None),
    ("not_samepara", None),
    ("not_samesentence", None),
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Query-shape parameters of one experiment point."""

    num_tokens: int = 3
    num_predicates: int = 2
    predicate_kind: str = "positive"  # "positive" | "negative" | "none"
    tokens: Sequence[str] = ()

    def __post_init__(self) -> None:
        if self.num_tokens < 1:
            raise WorkloadError("queries need at least one token")
        if self.num_predicates < 0:
            raise WorkloadError("the number of predicates cannot be negative")
        if self.predicate_kind not in ("positive", "negative", "none"):
            raise WorkloadError(
                "predicate_kind must be 'positive', 'negative' or 'none'"
            )
        if self.num_predicates > 0 and self.num_tokens < 2:
            raise WorkloadError("predicates need at least two query tokens")
        if len(self.tokens) < self.num_tokens:
            raise WorkloadError(
                f"need {self.num_tokens} distinct tokens, got {len(self.tokens)}"
            )


def bool_query(tokens: Sequence[str]) -> ast.QueryNode:
    """A conjunctive BOOL keyword query over ``tokens``."""
    if not tokens:
        raise WorkloadError("a BOOL query needs at least one token")
    node: ast.QueryNode = ast.TokenQuery(tokens[0])
    for token in tokens[1:]:
        node = ast.AndQuery(node, ast.TokenQuery(token))
    return node


def predicate_query(spec: WorkloadSpec) -> ast.QueryNode:
    """A COMP query with ``num_tokens`` HAS bindings and ``num_predicates`` predicates.

    Shape (the same shape as the paper's running example and Figure 4)::

        SOME p1 ... SOME pk (
            p1 HAS 't1' AND ... AND pk HAS 'tk'
            AND pred1(p_i, p_j, ...) AND ...
        )
    """
    tokens = list(spec.tokens[: spec.num_tokens])
    variables = [f"p{i + 1}" for i in range(spec.num_tokens)]

    conjuncts: list[ast.QueryNode] = [
        ast.VarHasToken(var, token) for var, token in zip(variables, tokens)
    ]
    conjuncts.extend(_predicate_conjuncts(spec, variables))

    body: ast.QueryNode = conjuncts[0]
    for conjunct in conjuncts[1:]:
        body = ast.AndQuery(body, conjunct)
    for var in reversed(variables):
        body = ast.SomeQuery(var, body)
    return body


def _predicate_conjuncts(
    spec: WorkloadSpec, variables: Sequence[str]
) -> list[ast.QueryNode]:
    if spec.num_predicates == 0 or spec.predicate_kind == "none":
        return []
    templates = (
        POSITIVE_PREDICATES
        if spec.predicate_kind == "positive"
        else NEGATIVE_PREDICATES
    )
    pairs = list(itertools.combinations(range(len(variables)), 2))
    if not pairs:
        raise WorkloadError("predicates need at least two bound variables")
    conjuncts: list[ast.QueryNode] = []
    for index in range(spec.num_predicates):
        name, constant = templates[index % len(templates)]
        first, second = pairs[index % len(pairs)]
        constants = (constant,) if constant is not None else ()
        conjuncts.append(
            ast.PredQuery(name, (variables[first], variables[second]), constants)
        )
    return conjuncts


def workload_queries(
    tokens: Sequence[str],
    num_tokens: int = 3,
    num_predicates: int = 2,
) -> dict[str, ast.QueryNode]:
    """The full set of query variants for one experiment point.

    Returns a mapping of series name -> query:

    * ``BOOL``      -- conjunctive keyword query (no predicates);
    * ``POSITIVE``  -- COMP query with positive predicates (run through the
      PPRED, NPRED and COMP engines for the ``*-POS`` series);
    * ``NEGATIVE``  -- COMP query with negative predicates (NPRED-NEG and
      COMP-NEG series).  Omitted when ``num_predicates`` is 0.
    """
    selected = list(tokens[:num_tokens])
    queries: dict[str, ast.QueryNode] = {"BOOL": bool_query(selected)}
    positive_spec = WorkloadSpec(
        num_tokens=num_tokens,
        num_predicates=num_predicates,
        predicate_kind="positive" if num_predicates else "none",
        tokens=selected,
    )
    queries["POSITIVE"] = predicate_query(positive_spec)
    if num_predicates > 0:
        negative_spec = WorkloadSpec(
            num_tokens=num_tokens,
            num_predicates=num_predicates,
            predicate_kind="negative",
            tokens=selected,
        )
        queries["NEGATIVE"] = predicate_query(negative_spec)
    return queries
