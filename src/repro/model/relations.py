"""Full-text relations: the data model of the full-text algebra.

A full-text relation (paper, Section 2.3) has schema
``R[CNode, att1, ..., attm]`` where ``CNode`` ranges over context-node ids and
each ``att_i`` over positions *of that node*.  This module provides
:class:`FullTextRelation` -- an in-memory, materialised relation with optional
per-tuple scores -- and the relational operations the algebra needs:
projection (always keeping ``CNode``), CNode-equi-join, predicate selection,
union, intersection and difference.

Scores
------
Every operation accepts an optional :class:`ScoreCombiner`.  When provided,
the operation applies the corresponding scoring transformation of the paper's
scoring framework (Section 3); when omitted the result carries no scores.
Concrete combiners (TF-IDF and probabilistic) live in :mod:`repro.scoring`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, Sequence

from repro.exceptions import EvaluationError
from repro.model.positions import Position
from repro.model.predicates import Predicate

#: A tuple of a full-text relation: the node id followed by the positions.
Row = tuple


class ScoreCombiner(Protocol):
    """Scoring transformations applied by the algebra operators.

    Each method mirrors one of the per-operator score formulae in Section 3
    of the paper.  Implementations: ``TfIdfScoring`` and
    ``ProbabilisticScoring`` in :mod:`repro.scoring`.
    """

    def combine_join(
        self, left_score: float, right_score: float, left_size: int, right_size: int
    ) -> float:
        """Score of a joined tuple from the two input tuple scores."""
        ...

    def combine_projection(self, scores: Sequence[float]) -> float:
        """Score of an output tuple from the scores of the tuples collapsing into it."""
        ...

    def transform_selection(
        self,
        score: float,
        predicate: Predicate,
        positions: Sequence[Position],
        constants: Sequence[object],
    ) -> float:
        """Score of a selected tuple (may scale by predicate-specific factor)."""
        ...

    def combine_union(self, left_score: float, right_score: float) -> float:
        """Score of a tuple present in the union (missing side scores 0)."""
        ...

    def combine_intersection(self, left_score: float, right_score: float) -> float:
        """Score of a tuple present in both inputs of an intersection."""
        ...

    def transform_difference(self, left_score: float) -> float:
        """Score of a tuple surviving a set difference."""
        ...


@dataclass
class FullTextRelation:
    """A materialised full-text relation with optional per-tuple scores."""

    arity: int  #: number of position attributes (CNode excluded)
    rows: list[Row] = field(default_factory=list)
    scores: dict[Row, float] | None = None

    # ------------------------------------------------------------ validation
    def __post_init__(self) -> None:
        if self.arity < 0:
            raise EvaluationError("relation arity cannot be negative")
        for row in self.rows:
            self._check_row(row)

    def _check_row(self, row: Row) -> None:
        if len(row) != self.arity + 1:
            raise EvaluationError(
                f"row {row!r} does not match arity {self.arity} (+ CNode)"
            )

    # --------------------------------------------------------------- builders
    @classmethod
    def empty(cls, arity: int) -> "FullTextRelation":
        return cls(arity)

    @classmethod
    def from_rows(
        cls,
        arity: int,
        rows: Iterable[Row],
        scores: dict[Row, float] | None = None,
    ) -> "FullTextRelation":
        relation = cls(arity, sorted(set(rows)), scores)
        return relation

    def add(self, row: Row, score: float | None = None) -> None:
        """Add a row (duplicates are ignored, scores accumulate by max)."""
        self._check_row(row)
        if row not in self._row_set():
            self.rows.append(row)
            self._row_set().add(row)
        if score is not None:
            if self.scores is None:
                self.scores = {}
            self.scores[row] = max(score, self.scores.get(row, float("-inf")))

    def _row_set(self) -> set[Row]:
        cached = self.__dict__.get("_row_set_cache")
        if cached is None:
            cached = set(self.rows)
            self.__dict__["_row_set_cache"] = cached
        return cached

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self.rows))

    def __contains__(self, row: Row) -> bool:
        return row in self._row_set()

    def node_ids(self) -> list[int]:
        """Distinct node ids present in the relation, sorted."""
        return sorted({row[0] for row in self.rows})

    def score_of(self, row: Row) -> float:
        """Score of ``row`` (0.0 when the relation carries no scores)."""
        if self.scores is None:
            return 0.0
        return self.scores.get(row, 0.0)

    def node_scores(self) -> dict[int, float]:
        """Aggregate scores per node id (sum over the node's tuples)."""
        result: dict[int, float] = {}
        if self.scores is None:
            return {node_id: 0.0 for node_id in self.node_ids()}
        for row in self.rows:
            result[row[0]] = result.get(row[0], 0.0) + self.score_of(row)
        return result

    def rows_for_node(self, node_id: int) -> list[Row]:
        """All tuples of a given node, sorted lexicographically by offsets."""
        return sorted(
            (row for row in self.rows if row[0] == node_id),
            key=_row_sort_key,
        )

    # ------------------------------------------------------------- operators
    def project(
        self,
        keep: Sequence[int],
        combiner: ScoreCombiner | None = None,
    ) -> "FullTextRelation":
        """Project onto the position attributes in ``keep`` (CNode always kept).

        ``keep`` lists *position attribute indices* (0-based, CNode excluded)
        in the desired output order; repeating or reordering attributes is
        allowed, matching standard relational projection.
        """
        for idx in keep:
            if not 0 <= idx < self.arity:
                raise EvaluationError(
                    f"projection index {idx} out of range for arity {self.arity}"
                )
        groups: dict[Row, list[Row]] = {}
        for row in self.rows:
            out = (row[0],) + tuple(row[1 + idx] for idx in keep)
            groups.setdefault(out, []).append(row)
        result = FullTextRelation(len(keep))
        scores: dict[Row, float] = {}
        for out_row, members in groups.items():
            result.add(out_row)
            if combiner is not None and self.scores is not None:
                scores[out_row] = combiner.combine_projection(
                    [self.score_of(member) for member in members]
                )
        if combiner is not None and self.scores is not None:
            result.scores = scores
        return result

    def join(
        self, other: "FullTextRelation", combiner: ScoreCombiner | None = None
    ) -> "FullTextRelation":
        """CNode-equi-join; position attributes of both inputs are concatenated."""
        by_node: dict[int, list[Row]] = {}
        for row in other.rows:
            by_node.setdefault(row[0], []).append(row)
        left_sizes = _per_node_counts(self.rows)
        right_sizes = _per_node_counts(other.rows)
        result = FullTextRelation(self.arity + other.arity)
        scores: dict[Row, float] = {}
        use_scores = (
            combiner is not None
            and self.scores is not None
            and other.scores is not None
        )
        for left_row in self.rows:
            for right_row in by_node.get(left_row[0], ()):
                out = left_row + right_row[1:]
                result.add(out)
                if use_scores:
                    scores[out] = combiner.combine_join(
                        self.score_of(left_row),
                        other.score_of(right_row),
                        left_sizes.get(left_row[0], 1),
                        right_sizes.get(right_row[0], 1),
                    )
        if use_scores:
            result.scores = scores
        return result

    def select(
        self,
        predicate: Predicate,
        attr_indices: Sequence[int],
        constants: Sequence[object] = (),
        combiner: ScoreCombiner | None = None,
    ) -> "FullTextRelation":
        """Keep tuples whose positions at ``attr_indices`` satisfy ``predicate``."""
        for idx in attr_indices:
            if not 0 <= idx < self.arity:
                raise EvaluationError(
                    f"selection index {idx} out of range for arity {self.arity}"
                )
        result = FullTextRelation(self.arity)
        scores: dict[Row, float] = {}
        for row in self.rows:
            positions = [row[1 + idx] for idx in attr_indices]
            if predicate(positions, constants):
                result.add(row)
                if combiner is not None and self.scores is not None:
                    scores[row] = combiner.transform_selection(
                        self.score_of(row), predicate, positions, constants
                    )
        if combiner is not None and self.scores is not None:
            result.scores = scores
        return result

    def union(
        self, other: "FullTextRelation", combiner: ScoreCombiner | None = None
    ) -> "FullTextRelation":
        """Set union (schemas must have the same arity)."""
        self._check_compatible(other)
        result = FullTextRelation(self.arity)
        scores: dict[Row, float] = {}
        for row in set(self.rows) | set(other.rows):
            result.add(row)
            if combiner is not None:
                scores[row] = combiner.combine_union(
                    self.score_of(row), other.score_of(row)
                )
        if combiner is not None and (self.scores is not None or other.scores is not None):
            result.scores = scores
        return result

    def intersection(
        self, other: "FullTextRelation", combiner: ScoreCombiner | None = None
    ) -> "FullTextRelation":
        """Set intersection (schemas must have the same arity)."""
        self._check_compatible(other)
        result = FullTextRelation(self.arity)
        scores: dict[Row, float] = {}
        for row in set(self.rows) & set(other.rows):
            result.add(row)
            if combiner is not None:
                scores[row] = combiner.combine_intersection(
                    self.score_of(row), other.score_of(row)
                )
        if combiner is not None and self.scores is not None and other.scores is not None:
            result.scores = scores
        return result

    def difference(
        self, other: "FullTextRelation", combiner: ScoreCombiner | None = None
    ) -> "FullTextRelation":
        """Set difference (schemas must have the same arity)."""
        self._check_compatible(other)
        result = FullTextRelation(self.arity)
        scores: dict[Row, float] = {}
        other_rows = set(other.rows)
        for row in self.rows:
            if row not in other_rows:
                result.add(row)
                if combiner is not None and self.scores is not None:
                    scores[row] = combiner.transform_difference(self.score_of(row))
        if combiner is not None and self.scores is not None:
            result.scores = scores
        return result

    # ------------------------------------------------------------- internals
    def _check_compatible(self, other: "FullTextRelation") -> None:
        if self.arity != other.arity:
            raise EvaluationError(
                f"set operation on relations of arity {self.arity} and {other.arity}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FullTextRelation(arity={self.arity}, rows={len(self.rows)})"


def _row_sort_key(row: Row) -> tuple:
    return (row[0],) + tuple(
        pos.offset if isinstance(pos, Position) else pos for pos in row[1:]
    )


def _per_node_counts(rows: Iterable[Row]) -> dict[int, int]:
    counts: dict[int, int] = {}
    for row in rows:
        counts[row[0]] = counts.get(row[0], 0) + 1
    return counts
