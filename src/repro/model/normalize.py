"""Normal forms for calculus expressions and the Theorem 4 construction.

This module implements the equivalence transformations used in the paper's
proofs and by the query classifier:

* :func:`to_nnf` -- negation normal form ("sink negations", step 1 of the
  Theorem 4 normalisation): negations are pushed down to the atoms
  ``hasPos`` / ``hasToken`` / predicate applications, double negations are
  removed, and quantifiers are flipped accordingly.
* :func:`eliminate_forall` -- replace ``∀p (hasPos ⇒ e)`` by
  ``¬∃p (hasPos ∧ ¬e)`` (step 3 of the normalisation).
* :func:`calculus_to_bool` -- the constructive proof of **Theorem 4**: when
  the token universe ``T`` is finite and ``Preds = ∅``, every calculus query
  can be expressed in BOOL.  The function produces a
  :class:`repro.languages.ast.QueryNode` surface query.

The BOOL query produced by :func:`calculus_to_bool` can be exponentially
larger than the input (it may enumerate the complement of a token set over
the whole vocabulary), exactly as the paper observes ("it is not always
practical").
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import TranslationError
from repro.model import calculus as c


# --------------------------------------------------------------------------
# Negation normal form and quantifier elimination
# --------------------------------------------------------------------------
def to_nnf(expr: c.CalculusExpr) -> c.CalculusExpr:
    """Push negations down to atoms (sink negations)."""
    return _nnf(expr, negate=False)


def _nnf(expr: c.CalculusExpr, negate: bool) -> c.CalculusExpr:
    if isinstance(expr, (c.HasPos, c.HasToken, c.PredicateApplication)):
        return c.Not(expr) if negate else expr
    if isinstance(expr, c.Not):
        return _nnf(expr.operand, not negate)
    if isinstance(expr, c.And):
        left = _nnf(expr.left, negate)
        right = _nnf(expr.right, negate)
        return c.Or(left, right) if negate else c.And(left, right)
    if isinstance(expr, c.Or):
        left = _nnf(expr.left, negate)
        right = _nnf(expr.right, negate)
        return c.And(left, right) if negate else c.Or(left, right)
    if isinstance(expr, c.Exists):
        inner = _nnf(expr.operand, negate)
        return c.Forall(expr.var, inner) if negate else c.Exists(expr.var, inner)
    if isinstance(expr, c.Forall):
        inner = _nnf(expr.operand, negate)
        return c.Exists(expr.var, inner) if negate else c.Forall(expr.var, inner)
    raise TranslationError(f"unknown calculus node {type(expr).__name__}")


def eliminate_forall(expr: c.CalculusExpr) -> c.CalculusExpr:
    """Rewrite every universal quantifier as a negated existential."""
    if isinstance(expr, (c.HasPos, c.HasToken, c.PredicateApplication)):
        return expr
    if isinstance(expr, c.Not):
        return c.Not(eliminate_forall(expr.operand))
    if isinstance(expr, c.And):
        return c.And(eliminate_forall(expr.left), eliminate_forall(expr.right))
    if isinstance(expr, c.Or):
        return c.Or(eliminate_forall(expr.left), eliminate_forall(expr.right))
    if isinstance(expr, c.Exists):
        return c.Exists(expr.var, eliminate_forall(expr.operand))
    if isinstance(expr, c.Forall):
        return c.Not(c.Exists(expr.var, c.Not(eliminate_forall(expr.operand))))
    raise TranslationError(f"unknown calculus node {type(expr).__name__}")


def is_nnf(expr: c.CalculusExpr) -> bool:
    """True iff every negation in the expression applies directly to an atom."""
    if isinstance(expr, c.Not):
        return isinstance(
            expr.operand, (c.HasPos, c.HasToken, c.PredicateApplication)
        )
    return all(is_nnf(child) for child in expr.children())


# --------------------------------------------------------------------------
# Theorem 4: BOOL completeness for finite token universes, Preds = ∅
# --------------------------------------------------------------------------
def calculus_to_bool(query: c.CalculusQuery, vocabulary: Sequence[str]):
    """Translate a Preds = ∅ calculus query into a BOOL surface query.

    ``vocabulary`` is the finite token universe ``T``.  The construction
    follows the proof of Theorem 4: normalise the expression so that every
    quantifier scopes a conjunction of (possibly negated) ``hasToken`` atoms
    over its own variable, and map each such existential block to a BOOL
    token (or to an OR over the complement of the excluded tokens).

    Raises :class:`TranslationError` if the query uses position predicates
    (they are outside BOOL by Theorem 5) or if a quantifier scope mixes
    variables in a way the restricted grammar cannot express.
    """
    # Imported here to avoid a circular import at module load time: the
    # languages package depends on the model package, not the other way
    # around, except for this constructive proof.
    from repro.languages import ast as surface

    if c.used_predicates(query.expr):
        raise TranslationError(
            "Theorem 4 applies only to Preds = ∅ queries; this query uses "
            f"predicates {sorted(c.used_predicates(query.expr))}"
        )
    vocabulary = list(dict.fromkeys(vocabulary))
    if not vocabulary:
        raise TranslationError("the token universe T must not be empty")

    # Universal quantifiers become negated existentials (proof step 3); the
    # Boolean skeleton over the resulting ∃-blocks maps 1:1 onto BOOL, so
    # negation normal form is applied only *inside* each quantifier scope
    # (in :func:`_existential_block_to_bool`), never across quantifiers.
    normalised = eliminate_forall(query.expr)
    return _to_bool(normalised, vocabulary, surface)


def _to_bool(expr: c.CalculusExpr, vocabulary: Sequence[str], surface):
    """Recursive skeleton: boolean structure maps 1:1, quantifiers become tokens."""
    if isinstance(expr, c.And):
        return surface.AndQuery(
            _to_bool(expr.left, vocabulary, surface),
            _to_bool(expr.right, vocabulary, surface),
        )
    if isinstance(expr, c.Or):
        return surface.OrQuery(
            _to_bool(expr.left, vocabulary, surface),
            _to_bool(expr.right, vocabulary, surface),
        )
    if isinstance(expr, c.Not):
        return surface.NotQuery(_to_bool(expr.operand, vocabulary, surface))
    if isinstance(expr, c.Exists):
        return _existential_block_to_bool(expr, vocabulary, surface)
    if isinstance(expr, c.Forall):
        # Defensive: eliminate_forall() ran first, but a caller may hand us a
        # raw sub-expression.  Rewrite and translate the negated existential.
        rewritten = c.Not(c.Exists(expr.var, c.Not(expr.operand)))
        return _to_bool(rewritten, vocabulary, surface)
    raise TranslationError(
        f"cannot express {expr.to_text()} in BOOL: free atoms must appear "
        "under a quantifier"
    )


def _existential_block_to_bool(
    expr: c.Exists, vocabulary: Sequence[str], surface
):
    """Translate ``∃p B(p)`` where B is a boolean combination of atoms over p."""
    var = expr.var
    disjuncts = _scope_dnf(to_nnf(expr.operand), var)
    branches = []
    for literals in disjuncts:
        branches.append(_disjunct_to_bool(literals, vocabulary, surface))
    result = branches[0]
    for branch in branches[1:]:
        result = surface.OrQuery(result, branch)
    return result


def _scope_dnf(
    expr: c.CalculusExpr, var: str
) -> list[list[tuple[bool, str | None]]]:
    """DNF of a quantifier scope as lists of literals.

    A literal is ``(positive, token)`` where ``token is None`` stands for the
    ``hasPos`` atom (the universal token ANY).  Raises if the scope refers to
    any variable other than ``var`` or contains nested quantifiers -- those
    queries fall outside the restricted form used in the Theorem 4 proof.
    """
    if isinstance(expr, c.HasPos):
        _require_var(expr.var, var)
        return [[(True, None)]]
    if isinstance(expr, c.HasToken):
        _require_var(expr.var, var)
        return [[(True, expr.token)]]
    if isinstance(expr, c.Not):
        operand = expr.operand
        if isinstance(operand, c.HasToken):
            _require_var(operand.var, var)
            return [[(False, operand.token)]]
        if isinstance(operand, c.HasPos):
            _require_var(operand.var, var)
            return [[(False, None)]]
        raise TranslationError(
            "quantifier scope is not in negation normal form: "
            f"{expr.to_text()}"
        )
    if isinstance(expr, c.Or):
        return _scope_dnf(expr.left, var) + _scope_dnf(expr.right, var)
    if isinstance(expr, c.And):
        result = []
        for left in _scope_dnf(expr.left, var):
            for right in _scope_dnf(expr.right, var):
                result.append(left + right)
        return result
    raise TranslationError(
        f"quantifier scope {expr.to_text()} is outside the restricted form "
        "handled by the Theorem 4 construction (nested quantifiers sharing "
        "variables are not supported)"
    )


def _require_var(found: str, expected: str) -> None:
    if found != expected:
        raise TranslationError(
            f"quantifier scope mentions foreign variable {found!r}; the "
            "Theorem 4 construction requires grouped scopes"
        )


def _disjunct_to_bool(literals, vocabulary: Sequence[str], surface):
    """One DNF disjunct of a quantifier scope -> a BOOL query."""
    positive_tokens = {tok for positive, tok in literals if positive and tok}
    negative_tokens = {tok for positive, tok in literals if not positive and tok}
    has_negated_any = any(not positive and tok is None for positive, tok in literals)

    empty_query = _empty_bool_query(vocabulary, surface)
    if has_negated_any:
        # ¬hasPos(p) under ∃p hasPos(p) ∧ ... is unsatisfiable.
        return empty_query
    if len(positive_tokens) > 1:
        # One position cannot hold two different tokens.
        return empty_query
    if positive_tokens:
        token = next(iter(positive_tokens))
        if token in negative_tokens:
            return empty_query
        return surface.TokenQuery(token)
    if negative_tokens:
        complement = [tok for tok in vocabulary if tok not in negative_tokens]
        if not complement:
            return empty_query
        result = surface.TokenQuery(complement[0])
        for token in complement[1:]:
            result = surface.OrQuery(result, surface.TokenQuery(token))
        return result
    # Only the hasPos literal: any token at all.
    return surface.AnyQuery()


def _empty_bool_query(vocabulary: Sequence[str], surface):
    """A BOOL query that matches nothing: ANY AND NOT (t1 OR ... OR tc)."""
    all_tokens = surface.TokenQuery(vocabulary[0])
    for token in vocabulary[1:]:
        all_tokens = surface.OrQuery(all_tokens, surface.TokenQuery(token))
    return surface.AndQuery(surface.AnyQuery(), surface.NotQuery(all_tokens))
