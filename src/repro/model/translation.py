"""Constructive translations between the calculus (FTC) and the algebra (FTA).

Theorem 1 of the paper states that the FTC and the FTA have the same
expressive power; its proof (Appendix A, Lemmas 1 and 2) is constructive.
This module implements both directions:

* :func:`calculus_to_algebra` / :func:`calculus_query_to_algebra` -- Lemma 2.
  Every calculus expression with free position variables ``p1..pk`` becomes an
  algebra expression over a relation whose position attributes correspond to
  those variables (the returned variable order gives the correspondence).
* :func:`algebra_to_calculus` / :func:`algebra_query_to_calculus` -- Lemma 1.

The naive COMP engine (Section 5.4) uses the calculus→algebra direction to
turn a parsed COMP query into an operator tree; the equivalence tests use
both directions for round-trips against the reference evaluators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import TranslationError
from repro.model import calculus as c
from repro.model import algebra as a
from repro.model.predicates import PredicateRegistry, default_registry


# --------------------------------------------------------------------------
# Calculus -> Algebra (Lemma 2)
# --------------------------------------------------------------------------
@dataclass
class TranslatedExpr:
    """An algebra expression plus the variable order of its position attributes."""

    expr: a.AlgebraExpr
    variables: list[str]

    @property
    def arity(self) -> int:
        return len(self.variables)


def _has_pos_power(count: int) -> a.AlgebraExpr:
    """Left-deep join of ``count`` copies of ``HasPos`` (count >= 1)."""
    if count < 1:
        raise TranslationError("HasPos power requires at least one attribute")
    expr: a.AlgebraExpr = a.HasPosRel()
    for _ in range(count - 1):
        expr = a.Join(expr, a.HasPosRel())
    return expr


def _reorder(translated: TranslatedExpr, target: Sequence[str]) -> a.AlgebraExpr:
    """Project ``translated`` so its attributes follow ``target`` exactly."""
    if list(target) == translated.variables:
        return translated.expr
    keep = tuple(translated.variables.index(var) for var in target)
    return a.Project(translated.expr, keep)


def _project_to(translated: TranslatedExpr, target: Sequence[str]) -> a.AlgebraExpr:
    """Project ``translated`` down to the subset ``target`` (order preserved)."""
    keep = tuple(translated.variables.index(var) for var in target)
    return a.Project(translated.expr, keep)


class _CalculusToAlgebra:
    """Stateful translator (keeps the predicate registry for arity checks)."""

    def __init__(self, registry: PredicateRegistry | None = None) -> None:
        self.registry = registry or default_registry()

    def translate(self, expr: c.CalculusExpr) -> TranslatedExpr:
        if isinstance(expr, c.HasPos):
            return TranslatedExpr(a.HasPosRel(), [expr.var])
        if isinstance(expr, c.HasToken):
            return TranslatedExpr(a.TokenRel(expr.token), [expr.var])
        if isinstance(expr, c.PredicateApplication):
            return self._predicate(expr)
        if isinstance(expr, c.Not):
            return self._negation(expr)
        if isinstance(expr, c.And):
            return self._conjunction(expr)
        if isinstance(expr, c.Or):
            return self._disjunction(expr)
        if isinstance(expr, c.Exists):
            return self._exists(expr)
        if isinstance(expr, c.Forall):
            rewritten = c.Not(c.Exists(expr.var, c.Not(expr.operand)))
            return self.translate(rewritten)
        raise TranslationError(f"unknown calculus node {type(expr).__name__}")

    # ------------------------------------------------------------ atom cases
    def _predicate(self, expr: c.PredicateApplication) -> TranslatedExpr:
        predicate = self.registry.get(expr.name)
        predicate.check_arity(expr.variables, expr.constants)
        unique_vars: list[str] = []
        for var in expr.variables:
            if var not in unique_vars:
                unique_vars.append(var)
        base = _has_pos_power(len(unique_vars))
        attr_indices = tuple(unique_vars.index(var) for var in expr.variables)
        select = a.Select(base, expr.name, attr_indices, tuple(expr.constants))
        return TranslatedExpr(select, unique_vars)

    # ------------------------------------------------------- boolean cases
    def _negation(self, expr: c.Not) -> TranslatedExpr:
        inner = self.translate(expr.operand)
        if inner.arity == 0:
            return TranslatedExpr(
                a.Difference(a.SearchContextRel(), inner.expr), []
            )
        universe = _has_pos_power(inner.arity)
        return TranslatedExpr(
            a.Difference(universe, inner.expr), list(inner.variables)
        )

    def _conjunction(self, expr: c.And) -> TranslatedExpr:
        # Selection push-down: a predicate conjunct whose variables are all
        # provided by the other conjunct becomes a plain selection on that
        # side's relation.  This produces exactly the operator shape of the
        # paper's Figure 4 (scan/join/select/project) instead of padding the
        # predicate with HasPos joins, and is a pure optimisation: the general
        # construction below remains available for every other case.
        pushed = self._try_push_predicate(expr.left, expr.right)
        if pushed is None:
            pushed = self._try_push_predicate(expr.right, expr.left)
        if pushed is not None:
            return pushed

        left = self.translate(expr.left)
        right = self.translate(expr.right)
        shared = [var for var in left.variables if var in right.variables]
        unique_left = [var for var in left.variables if var not in shared]
        unique_right = [var for var in right.variables if var not in shared]
        target = shared + unique_left + unique_right

        if not shared:
            return TranslatedExpr(a.Join(left.expr, right.expr), target)

        left_ordered = _reorder(left, shared + unique_left)
        right_ordered = _reorder(right, shared + unique_right)

        # left side: R1 tuples extended with the unique-right attributes of R2.
        if unique_right:
            first = a.Join(left_ordered, _project_to(right, unique_right))
        else:
            # Semi-join: keep R1 tuples whose node also appears in R2.
            first = a.Join(left_ordered, _project_to(right, []))
        # right side: R2 tuples extended with the unique-left attributes of R1,
        # then reordered to the target attribute order.
        if unique_left:
            second_raw = TranslatedExpr(
                a.Join(_project_to(left, unique_left), right_ordered),
                unique_left + shared + unique_right,
            )
        else:
            second_raw = TranslatedExpr(
                a.Join(_project_to(left, []), right_ordered),
                shared + unique_right,
            )
        second = _reorder(second_raw, target)
        return TranslatedExpr(a.Intersect(first, second), target)

    def _try_push_predicate(
        self, base_expr: c.CalculusExpr, predicate_expr: c.CalculusExpr
    ) -> TranslatedExpr | None:
        """Translate ``base AND pred`` as ``Select(base)`` when possible."""
        if not isinstance(predicate_expr, c.PredicateApplication):
            return None
        base = self.translate(base_expr)
        if not set(predicate_expr.variables) <= set(base.variables):
            return None
        predicate = self.registry.get(predicate_expr.name)
        predicate.check_arity(predicate_expr.variables, predicate_expr.constants)
        attr_indices = tuple(
            base.variables.index(var) for var in predicate_expr.variables
        )
        select = a.Select(
            base.expr,
            predicate_expr.name,
            attr_indices,
            tuple(predicate_expr.constants),
        )
        return TranslatedExpr(select, list(base.variables))

    def _disjunction(self, expr: c.Or) -> TranslatedExpr:
        left = self.translate(expr.left)
        right = self.translate(expr.right)
        shared = [var for var in left.variables if var in right.variables]
        unique_left = [var for var in left.variables if var not in shared]
        unique_right = [var for var in right.variables if var not in shared]
        target = shared + unique_left + unique_right

        left_ordered = _reorder(left, shared + unique_left)
        right_ordered = _reorder(right, shared + unique_right)

        # Pad each side with every node position for the variables it lacks,
        # matching the calculus semantics where unconstrained free variables
        # range over Positions(node).
        if unique_right:
            padded_left = a.Join(left_ordered, _has_pos_power(len(unique_right)))
        else:
            padded_left = left_ordered
        if unique_left:
            padded_right_raw = TranslatedExpr(
                a.Join(right_ordered, _has_pos_power(len(unique_left))),
                shared + unique_right + unique_left,
            )
            padded_right = _reorder(padded_right_raw, target)
        else:
            padded_right = right_ordered
        return TranslatedExpr(a.Union(padded_left, padded_right), target)

    # --------------------------------------------------------- quantifiers
    def _exists(self, expr: c.Exists) -> TranslatedExpr:
        inner = self.translate(expr.operand)
        if expr.var in inner.variables:
            remaining = [var for var in inner.variables if var != expr.var]
            keep = tuple(
                inner.variables.index(var) for var in remaining
            )
            return TranslatedExpr(a.Project(inner.expr, keep), remaining)
        # The quantified variable is not used: the quantifier only asserts
        # that the node has at least one position.
        joined = a.Join(inner.expr, a.HasPosRel())
        keep = tuple(range(inner.arity))
        return TranslatedExpr(a.Project(joined, keep), list(inner.variables))


def calculus_to_algebra(
    expr: c.CalculusExpr, registry: PredicateRegistry | None = None
) -> TranslatedExpr:
    """Translate a calculus expression into an algebra expression (Lemma 2)."""
    return _CalculusToAlgebra(registry).translate(expr)


def calculus_query_to_algebra(
    query: c.CalculusQuery, registry: PredicateRegistry | None = None
) -> a.AlgebraQuery:
    """Translate a closed calculus query into an algebra query."""
    translated = calculus_to_algebra(query.expr, registry)
    if translated.arity != 0:
        raise TranslationError(
            "query translation produced free attributes "
            f"{translated.variables}; the query is not closed"
        )
    return a.AlgebraQuery(translated.expr)


# --------------------------------------------------------------------------
# Algebra -> Calculus (Lemma 1)
# --------------------------------------------------------------------------
class _AlgebraToCalculus:
    """Stateful translator generating globally fresh variable names."""

    def __init__(self) -> None:
        self._counter = 0

    def _fresh(self) -> str:
        self._counter += 1
        return f"p{self._counter}"

    def translate(self, expr: a.AlgebraExpr) -> tuple[c.CalculusExpr, list[str]]:
        if isinstance(expr, a.SearchContextRel):
            var = self._fresh()
            tautology = c.Or(
                c.Exists(var, HasPosAtom(var)), c.Not(c.Exists(var, HasPosAtom(var)))
            )
            return tautology, []
        if isinstance(expr, a.HasPosRel):
            var = self._fresh()
            return HasPosAtom(var), [var]
        if isinstance(expr, a.TokenRel):
            var = self._fresh()
            return c.HasToken(var, expr.token), [var]
        if isinstance(expr, a.Project):
            return self._project(expr)
        if isinstance(expr, a.Join):
            left_expr, left_vars = self.translate(expr.left)
            right_expr, right_vars = self.translate(expr.right)
            return c.And(left_expr, right_expr), left_vars + right_vars
        if isinstance(expr, a.Select):
            inner, variables = self.translate(expr.operand)
            application = c.PredicateApplication(
                expr.predicate,
                tuple(variables[idx] for idx in expr.attr_indices),
                tuple(expr.constants),
            )
            return c.And(inner, application), variables
        if isinstance(expr, a.Union):
            return self._set_operation(expr, c.Or)
        if isinstance(expr, a.Intersect):
            return self._set_operation(expr, c.And)
        if isinstance(expr, a.Difference):
            return self._set_operation(
                expr, lambda left, right: c.And(left, c.Not(right))
            )
        raise TranslationError(f"unknown algebra node {type(expr).__name__}")

    def _project(self, expr: a.Project) -> tuple[c.CalculusExpr, list[str]]:
        inner, variables = self.translate(expr.operand)
        if len(set(expr.keep)) != len(expr.keep):
            raise TranslationError(
                "cannot translate a projection that duplicates attributes"
            )
        kept = [variables[idx] for idx in expr.keep]
        dropped = [var for var in variables if var not in kept]
        result = inner
        for var in dropped:
            result = c.Exists(var, result)
        return result, kept

    def _set_operation(self, expr, combine) -> tuple[c.CalculusExpr, list[str]]:
        left_expr, left_vars = self.translate(expr.left)
        right_expr, right_vars = self.translate(expr.right)
        if len(left_vars) != len(right_vars):
            raise TranslationError("set operation inputs have different arity")
        renaming = dict(zip(right_vars, left_vars))
        renamed_right = substitute_variables(right_expr, renaming)
        return combine(left_expr, renamed_right), left_vars


def HasPosAtom(var: str) -> c.CalculusExpr:
    """``hasPos(node, var)`` -- tiny helper keeping the translator readable."""
    return c.HasPos(var)


def substitute_variables(
    expr: c.CalculusExpr, renaming: dict[str, str]
) -> c.CalculusExpr:
    """Rename free variables of a calculus expression.

    Bound variables are left untouched; a renaming that would capture a bound
    variable raises :class:`TranslationError` (the translators always generate
    globally fresh names, so this cannot happen in normal use).
    """
    if isinstance(expr, c.HasPos):
        return c.HasPos(renaming.get(expr.var, expr.var))
    if isinstance(expr, c.HasToken):
        return c.HasToken(renaming.get(expr.var, expr.var), expr.token)
    if isinstance(expr, c.PredicateApplication):
        return c.PredicateApplication(
            expr.name,
            tuple(renaming.get(var, var) for var in expr.variables),
            expr.constants,
        )
    if isinstance(expr, c.Not):
        return c.Not(substitute_variables(expr.operand, renaming))
    if isinstance(expr, c.And):
        return c.And(
            substitute_variables(expr.left, renaming),
            substitute_variables(expr.right, renaming),
        )
    if isinstance(expr, c.Or):
        return c.Or(
            substitute_variables(expr.left, renaming),
            substitute_variables(expr.right, renaming),
        )
    if isinstance(expr, (c.Exists, c.Forall)):
        if expr.var in renaming.values():
            raise TranslationError(
                f"substitution would capture bound variable {expr.var!r}"
            )
        inner_renaming = {
            old: new for old, new in renaming.items() if old != expr.var
        }
        constructor = c.Exists if isinstance(expr, c.Exists) else c.Forall
        return constructor(
            expr.var, substitute_variables(expr.operand, inner_renaming)
        )
    raise TranslationError(f"unknown calculus node {type(expr).__name__}")


def algebra_to_calculus(expr: a.AlgebraExpr) -> tuple[c.CalculusExpr, list[str]]:
    """Translate an algebra expression into a calculus expression (Lemma 1).

    Returns the expression together with the list of free variables that
    correspond, in order, to the relation's position attributes.
    """
    return _AlgebraToCalculus().translate(expr)


def algebra_query_to_calculus(query: a.AlgebraQuery) -> c.CalculusQuery:
    """Translate an algebra query back into a closed calculus query."""
    expr, variables = algebra_to_calculus(query.expr)
    if variables:
        raise TranslationError(
            f"algebra query translation left free variables {variables}"
        )
    return c.CalculusQuery(expr)
