"""The full-text algebra (FTA).

The algebra (paper, Section 2.3) operates on full-text relations
(:class:`~repro.model.relations.FullTextRelation`).  This module defines the
algebra expression tree and its materialising (reference) semantics:

* base relations ``SearchContext``, ``HasPos``, ``R_token``;
* operators ``π`` (projection, CNode always kept), ``⋈`` (CNode equi-join),
  ``σ_pred`` (selection by a position predicate), ``∪``, ``∩``, ``−``.

An algebra *query* is an expression whose result relation has zero position
attributes (only ``CNode``); its answer is the set of node ids in the result.

The materialising evaluator here is the semantics used by the naive COMP
engine and by the equivalence tests; the optimised pipelined evaluation over
inverted-list cursors lives in :mod:`repro.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.exceptions import EvaluationError, QuerySemanticsError
from repro.model.predicates import PredicateRegistry, default_registry
from repro.model.relations import FullTextRelation, ScoreCombiner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (corpus -> model)
    from repro.corpus.collection import Collection


class AlgebraExpr:
    """Base class of algebra expression nodes."""

    def arity(self) -> int:
        """Number of position attributes of the result relation."""
        raise NotImplementedError

    def children(self) -> Sequence["AlgebraExpr"]:
        return ()

    def to_text(self) -> str:
        """A compact textual rendering used in plans and error messages."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.to_text()


@dataclass(frozen=True, repr=False)
class SearchContextRel(AlgebraExpr):
    """The ``SearchContext`` relation: one tuple ``(node)`` per context node."""

    def arity(self) -> int:
        return 0

    def to_text(self) -> str:
        return "SearchContext"


@dataclass(frozen=True, repr=False)
class HasPosRel(AlgebraExpr):
    """The ``HasPos`` relation: one tuple ``(node, pos)`` per node position."""

    def arity(self) -> int:
        return 1

    def to_text(self) -> str:
        return "HasPos"


@dataclass(frozen=True, repr=False)
class TokenRel(AlgebraExpr):
    """``R_token``: one tuple ``(node, pos)`` per occurrence of ``token``."""

    token: str

    def arity(self) -> int:
        return 1

    def to_text(self) -> str:
        return f"R['{self.token}']"


@dataclass(frozen=True, repr=False)
class Project(AlgebraExpr):
    """``π_{CNode, keep...}``: keep the listed position attributes, in order."""

    operand: AlgebraExpr
    keep: tuple[int, ...]

    def __post_init__(self) -> None:
        inner = self.operand.arity()
        for idx in self.keep:
            if not 0 <= idx < inner:
                raise QuerySemanticsError(
                    f"projection keeps attribute {idx}, but input arity is {inner}"
                )

    def arity(self) -> int:
        return len(self.keep)

    def children(self) -> Sequence[AlgebraExpr]:
        return (self.operand,)

    def to_text(self) -> str:
        attrs = ", ".join(f"att{idx + 1}" for idx in self.keep)
        attrs = f"CNode, {attrs}" if attrs else "CNode"
        return f"project[{attrs}]({self.operand.to_text()})"


@dataclass(frozen=True, repr=False)
class Join(AlgebraExpr):
    """CNode equi-join; positions of the right input are appended to the left."""

    left: AlgebraExpr
    right: AlgebraExpr

    def arity(self) -> int:
        return self.left.arity() + self.right.arity()

    def children(self) -> Sequence[AlgebraExpr]:
        return (self.left, self.right)

    def to_text(self) -> str:
        return f"join({self.left.to_text()}, {self.right.to_text()})"


@dataclass(frozen=True, repr=False)
class Select(AlgebraExpr):
    """``σ_pred(att_i1, .., att_im, c1, .., cq)``."""

    operand: AlgebraExpr
    predicate: str
    attr_indices: tuple[int, ...]
    constants: tuple = ()

    def __post_init__(self) -> None:
        inner = self.operand.arity()
        for idx in self.attr_indices:
            if not 0 <= idx < inner:
                raise QuerySemanticsError(
                    f"selection uses attribute {idx}, but input arity is {inner}"
                )

    def arity(self) -> int:
        return self.operand.arity()

    def children(self) -> Sequence[AlgebraExpr]:
        return (self.operand,)

    def to_text(self) -> str:
        args = ", ".join(f"att{idx + 1}" for idx in self.attr_indices)
        consts = "".join(f", {const!r}" for const in self.constants)
        return f"select[{self.predicate}({args}{consts})]({self.operand.to_text()})"


class _SetOperation(AlgebraExpr):
    """Common base of union / intersection / difference."""

    symbol = "?"

    def __init__(self, left: AlgebraExpr, right: AlgebraExpr) -> None:
        if left.arity() != right.arity():
            raise QuerySemanticsError(
                f"{type(self).__name__} of relations with arities "
                f"{left.arity()} and {right.arity()}"
            )
        self.left = left
        self.right = right

    def arity(self) -> int:
        return self.left.arity()

    def children(self) -> Sequence[AlgebraExpr]:
        return (self.left, self.right)

    def to_text(self) -> str:
        return f"({self.left.to_text()} {self.symbol} {self.right.to_text()})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.left == other.left  # type: ignore[attr-defined]
            and self.right == other.right  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right))


class Union(_SetOperation):
    """Set union of two full-text relations of the same arity."""

    symbol = "UNION"


class Intersect(_SetOperation):
    """Set intersection of two full-text relations of the same arity."""

    symbol = "INTERSECT"


class Difference(_SetOperation):
    """Set difference of two full-text relations of the same arity."""

    symbol = "MINUS"


# --------------------------------------------------------------------------
# Queries
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class AlgebraQuery:
    """An algebra expression producing a relation with only the CNode attribute."""

    expr: AlgebraExpr

    def __post_init__(self) -> None:
        if self.expr.arity() != 0:
            raise QuerySemanticsError(
                "an algebra query must produce a relation with a single CNode "
                f"attribute; got arity {self.expr.arity()}"
            )

    def to_text(self) -> str:
        return self.expr.to_text()


# --------------------------------------------------------------------------
# Materialising evaluation
# --------------------------------------------------------------------------
class AlgebraEvaluator:
    """Reference (materialising) semantics of the full-text algebra.

    Base relations are computed straight from the collection; every operator
    materialises its full output.  This is exactly the naive COMP evaluation
    strategy of Section 5.4 and also serves as the oracle that the pipelined
    engines are validated against.

    A :class:`ScoreCombiner` may be supplied together with ``base_scores``
    (a callable giving the initial score of a ``(node_id, position, token)``
    occurrence); the evaluator then propagates scores through every operator
    using the paper's scoring framework.
    """

    def __init__(
        self,
        collection: "Collection",
        registry: PredicateRegistry | None = None,
        combiner: ScoreCombiner | None = None,
        base_scores=None,
    ) -> None:
        self.collection = collection
        self.registry = registry or default_registry()
        self.combiner = combiner
        self.base_scores = base_scores

    # ------------------------------------------------------------------ API
    def evaluate(self, expr: AlgebraExpr) -> FullTextRelation:
        """Evaluate an algebra expression to a materialised relation."""
        if isinstance(expr, SearchContextRel):
            return self._search_context()
        if isinstance(expr, HasPosRel):
            return self._has_pos()
        if isinstance(expr, TokenRel):
            return self._token_relation(expr.token)
        if isinstance(expr, Project):
            return self.evaluate(expr.operand).project(expr.keep, self.combiner)
        if isinstance(expr, Join):
            return self.evaluate(expr.left).join(
                self.evaluate(expr.right), self.combiner
            )
        if isinstance(expr, Select):
            predicate = self.registry.get(expr.predicate)
            return self.evaluate(expr.operand).select(
                predicate, expr.attr_indices, expr.constants, self.combiner
            )
        if isinstance(expr, Union):
            return self.evaluate(expr.left).union(
                self.evaluate(expr.right), self.combiner
            )
        if isinstance(expr, Intersect):
            return self.evaluate(expr.left).intersection(
                self.evaluate(expr.right), self.combiner
            )
        if isinstance(expr, Difference):
            return self.evaluate(expr.left).difference(
                self.evaluate(expr.right), self.combiner
            )
        raise EvaluationError(f"unknown algebra node {type(expr).__name__}")

    def evaluate_query(self, query: AlgebraQuery) -> list[int]:
        """Node ids satisfying an algebra query, ascending."""
        return self.evaluate(query.expr).node_ids()

    # ------------------------------------------------------- base relations
    def _search_context(self) -> FullTextRelation:
        relation = FullTextRelation(0)
        for node in self.collection:
            relation.add((node.node_id,))
        return relation

    def _has_pos(self) -> FullTextRelation:
        relation = FullTextRelation(1)
        for node in self.collection:
            for position in node.positions():
                relation.add((node.node_id, position))
        return relation

    def _token_relation(self, token: str) -> FullTextRelation:
        relation = FullTextRelation(1)
        use_scores = self.combiner is not None and self.base_scores is not None
        if use_scores:
            relation.scores = {}
        for node in self.collection:
            for position in node.positions_of(token):
                row = (node.node_id, position)
                relation.add(row)
                if use_scores:
                    relation.scores[row] = self.base_scores(
                        node.node_id, position, token
                    )
        return relation


# --------------------------------------------------------------------------
# Structural measures (mirror of calculus.query_measures)
# --------------------------------------------------------------------------
def walk(expr: AlgebraExpr):
    """Pre-order traversal of an algebra expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def expression_measures(expr: AlgebraExpr) -> dict[str, int]:
    """Count scans, joins, selections and set operations in an expression."""
    scans = joins = selects = setops = projects = 0
    for node in walk(expr):
        if isinstance(node, (TokenRel, HasPosRel, SearchContextRel)):
            scans += 1
        elif isinstance(node, Join):
            joins += 1
        elif isinstance(node, Select):
            selects += 1
        elif isinstance(node, (Union, Intersect, Difference)):
            setops += 1
        elif isinstance(node, Project):
            projects += 1
    return {
        "scans": scans,
        "joins": joins,
        "selects": selects,
        "set_operations": setops,
        "projections": projects,
    }
