"""The full-text calculus (FTC).

The calculus (paper, Section 2.2) expresses full-text conditions as
first-order formulae over token positions.  A calculus *query* has the form::

    { node | SearchContext(node) ∧ QueryExpr(node) }

where ``QueryExpr`` is built from

* ``hasPos(node, p)``            -- :class:`HasPos`
* ``hasToken(p, 'tok')``         -- :class:`HasToken`
* ``pred(p1, .., pm, c1, .., cr)`` -- :class:`PredicateApplication`
* ``¬e``, ``e1 ∧ e2``, ``e1 ∨ e2`` -- :class:`Not`, :class:`And`, :class:`Or`
* ``∃p (hasPos(node, p) ∧ e)``   -- :class:`Exists`
* ``∀p (hasPos(node, p) ⇒ e)``   -- :class:`Forall`

The guarded quantification makes the calculus *safe*: every expression can be
evaluated by ranging position variables over ``Positions(node)`` only.  The
module also provides the reference (ground-truth) evaluator used by the test
suite to validate every query engine, and utilities for free-variable
analysis and structural measures (token/predicate/operator counts used by the
complexity model).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.exceptions import QuerySemanticsError
from repro.model.positions import Position
from repro.model.predicates import PredicateRegistry, default_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (corpus -> model)
    from repro.corpus.collection import Collection
    from repro.corpus.document import ContextNode


class CalculusExpr:
    """Base class of calculus query-expression nodes."""

    def free_variables(self) -> set[str]:
        """The free position variables of this expression."""
        raise NotImplementedError

    def children(self) -> Sequence["CalculusExpr"]:
        """Direct sub-expressions (empty for atoms)."""
        return ()

    # Display helpers -------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.to_text()

    def to_text(self) -> str:
        """A compact, parseable-by-humans rendering of the expression."""
        raise NotImplementedError


@dataclass(frozen=True, repr=False)
class HasPos(CalculusExpr):
    """``hasPos(node, var)``: ``var`` is a position of the context node."""

    var: str

    def free_variables(self) -> set[str]:
        return {self.var}

    def to_text(self) -> str:
        return f"hasPos({self.var})"


@dataclass(frozen=True, repr=False)
class HasToken(CalculusExpr):
    """``hasToken(var, token)``: position ``var`` holds ``token``."""

    var: str
    token: str

    def free_variables(self) -> set[str]:
        return {self.var}

    def to_text(self) -> str:
        return f"hasToken({self.var}, '{self.token}')"


@dataclass(frozen=True, repr=False)
class PredicateApplication(CalculusExpr):
    """``pred(p1, .., pm, c1, .., cr)`` for a registered predicate ``pred``."""

    name: str
    variables: tuple[str, ...]
    constants: tuple = ()

    def free_variables(self) -> set[str]:
        return set(self.variables)

    def to_text(self) -> str:
        args = ", ".join(self.variables) + "".join(
            f", {const!r}" for const in self.constants
        )
        return f"{self.name}({args})"


@dataclass(frozen=True, repr=False)
class Not(CalculusExpr):
    """Logical negation."""

    operand: CalculusExpr

    def free_variables(self) -> set[str]:
        return self.operand.free_variables()

    def children(self) -> Sequence[CalculusExpr]:
        return (self.operand,)

    def to_text(self) -> str:
        return f"NOT ({self.operand.to_text()})"


@dataclass(frozen=True, repr=False)
class And(CalculusExpr):
    """Logical conjunction."""

    left: CalculusExpr
    right: CalculusExpr

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def children(self) -> Sequence[CalculusExpr]:
        return (self.left, self.right)

    def to_text(self) -> str:
        return f"({self.left.to_text()} AND {self.right.to_text()})"


@dataclass(frozen=True, repr=False)
class Or(CalculusExpr):
    """Logical disjunction."""

    left: CalculusExpr
    right: CalculusExpr

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def children(self) -> Sequence[CalculusExpr]:
        return (self.left, self.right)

    def to_text(self) -> str:
        return f"({self.left.to_text()} OR {self.right.to_text()})"


@dataclass(frozen=True, repr=False)
class Exists(CalculusExpr):
    """``∃var (hasPos(node, var) ∧ operand)``."""

    var: str
    operand: CalculusExpr

    def free_variables(self) -> set[str]:
        return self.operand.free_variables() - {self.var}

    def children(self) -> Sequence[CalculusExpr]:
        return (self.operand,)

    def to_text(self) -> str:
        return f"EXISTS {self.var} ({self.operand.to_text()})"


@dataclass(frozen=True, repr=False)
class Forall(CalculusExpr):
    """``∀var (hasPos(node, var) ⇒ operand)``."""

    var: str
    operand: CalculusExpr

    def free_variables(self) -> set[str]:
        return self.operand.free_variables() - {self.var}

    def children(self) -> Sequence[CalculusExpr]:
        return (self.operand,)

    def to_text(self) -> str:
        return f"FORALL {self.var} ({self.operand.to_text()})"


# --------------------------------------------------------------------------
# Queries
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class CalculusQuery:
    """``{ node | SearchContext(node) ∧ expr(node) }``.

    ``expr`` must be closed with respect to position variables: the only free
    variable of a query is the implicit context-node variable.
    """

    expr: CalculusExpr

    def __post_init__(self) -> None:
        free = self.expr.free_variables()
        if free:
            raise QuerySemanticsError(
                f"calculus query has unbound position variables: {sorted(free)}"
            )

    def to_text(self) -> str:
        return "{ node | SearchContext(node) AND " + self.expr.to_text() + " }"


# --------------------------------------------------------------------------
# Reference evaluation (ground truth for all engines)
# --------------------------------------------------------------------------
class CalculusEvaluator:
    """Direct, per-node evaluation of calculus expressions.

    This evaluator materialises nothing: it simply recurses over the formula
    while binding position variables to positions of the node under
    evaluation.  It is intentionally straightforward (and therefore slow);
    its purpose is to be a trusted oracle that every optimised engine is
    checked against.
    """

    def __init__(self, registry: PredicateRegistry | None = None) -> None:
        self.registry = registry or default_registry()

    # ------------------------------------------------------------------ API
    def evaluate_query(
        self, query: CalculusQuery, collection: Collection
    ) -> list[int]:
        """Node ids of ``collection`` satisfying the query, ascending."""
        return [
            node.node_id
            for node in collection
            if self.evaluate_on_node(query.expr, node)
        ]

    def evaluate_on_node(
        self,
        expr: CalculusExpr,
        node: ContextNode,
        bindings: Mapping[str, Position] | None = None,
    ) -> bool:
        """Evaluate ``expr`` on a single node under the given variable bindings."""
        return self._eval(expr, node, dict(bindings or {}))

    def satisfying_bindings(
        self, expr: CalculusExpr, node: ContextNode
    ) -> Iterator[dict[str, Position]]:
        """All assignments of the free variables of ``expr`` that satisfy it.

        Used by tests that compare against the algebra semantics, where an
        open expression corresponds to a relation over its free variables.
        """
        free = sorted(expr.free_variables())
        positions = node.positions()
        for combo in product(positions, repeat=len(free)):
            bindings = dict(zip(free, combo))
            if self._eval(expr, node, bindings):
                yield bindings

    # ------------------------------------------------------------ internals
    def _eval(
        self, expr: CalculusExpr, node: ContextNode, bindings: dict[str, Position]
    ) -> bool:
        if isinstance(expr, HasPos):
            return self._bound(expr.var, bindings) in set(node.positions())
        if isinstance(expr, HasToken):
            position = self._bound(expr.var, bindings)
            return node.token_at(position) == expr.token
        if isinstance(expr, PredicateApplication):
            predicate = self.registry.get(expr.name)
            positions = [self._bound(var, bindings) for var in expr.variables]
            return predicate(positions, expr.constants)
        if isinstance(expr, Not):
            return not self._eval(expr.operand, node, bindings)
        if isinstance(expr, And):
            return self._eval(expr.left, node, bindings) and self._eval(
                expr.right, node, bindings
            )
        if isinstance(expr, Or):
            return self._eval(expr.left, node, bindings) or self._eval(
                expr.right, node, bindings
            )
        if isinstance(expr, Exists):
            return self._eval_quantifier(expr, node, bindings, existential=True)
        if isinstance(expr, Forall):
            return self._eval_quantifier(expr, node, bindings, existential=False)
        raise QuerySemanticsError(f"unknown calculus node {type(expr).__name__}")

    def _eval_quantifier(
        self,
        expr: "Exists | Forall",
        node: ContextNode,
        bindings: dict[str, Position],
        existential: bool,
    ) -> bool:
        had_outer = expr.var in bindings
        outer_value = bindings.get(expr.var)
        try:
            for position in node.positions():
                bindings[expr.var] = position
                satisfied = self._eval(expr.operand, node, bindings)
                if existential and satisfied:
                    return True
                if not existential and not satisfied:
                    return False
            return not existential
        finally:
            if had_outer:
                bindings[expr.var] = outer_value  # type: ignore[assignment]
            else:
                bindings.pop(expr.var, None)

    @staticmethod
    def _bound(var: str, bindings: Mapping[str, Position]) -> Position:
        try:
            return bindings[var]
        except KeyError as exc:
            raise QuerySemanticsError(
                f"position variable {var!r} used before being bound"
            ) from exc


# --------------------------------------------------------------------------
# Structural analysis
# --------------------------------------------------------------------------
def walk(expr: CalculusExpr) -> Iterator[CalculusExpr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def query_measures(expr: CalculusExpr) -> dict[str, int]:
    """The paper's query-size parameters ``toks_Q``, ``preds_Q``, ``ops_Q``.

    Tokens count both string literals (``hasToken`` atoms) and uses of the
    universal token (``hasPos`` atoms standing alone correspond to ANY).
    Operations count NOT/AND/OR plus the quantifiers.
    """
    toks = preds = ops = 0
    for node in walk(expr):
        if isinstance(node, HasToken):
            toks += 1
        elif isinstance(node, HasPos):
            toks += 1
        elif isinstance(node, PredicateApplication):
            preds += 1
        elif isinstance(node, (Not, And, Or, Exists, Forall)):
            ops += 1
    return {"toks_Q": toks, "preds_Q": preds, "ops_Q": ops}


def used_predicates(expr: CalculusExpr) -> set[str]:
    """Names of all predicates applied anywhere in the expression."""
    return {
        node.name for node in walk(expr) if isinstance(node, PredicateApplication)
    }


def used_tokens(expr: CalculusExpr) -> set[str]:
    """All string-literal tokens referenced by the expression."""
    return {node.token for node in walk(expr) if isinstance(node, HasToken)}


def validate_predicates(
    expr: CalculusExpr, registry: PredicateRegistry | None = None
) -> None:
    """Check that every predicate application is registered with correct arity."""
    registry = registry or default_registry()
    for node in walk(expr):
        if isinstance(node, PredicateApplication):
            predicate = registry.get(node.name)
            predicate.check_arity(node.variables, node.constants)


# --------------------------------------------------------------------------
# Convenience constructors used throughout tests and docs
# --------------------------------------------------------------------------
def token_exists(token: str, var: str) -> CalculusExpr:
    """``∃var (hasPos(node, var) ∧ hasToken(var, token))``."""
    return Exists(var, HasToken(var, token))


def conjunction(*exprs: CalculusExpr) -> CalculusExpr:
    """Left-deep conjunction of one or more expressions."""
    if not exprs:
        raise QuerySemanticsError("conjunction of zero expressions")
    result = exprs[0]
    for expr in exprs[1:]:
        result = And(result, expr)
    return result


def disjunction(*exprs: CalculusExpr) -> CalculusExpr:
    """Left-deep disjunction of one or more expressions."""
    if not exprs:
        raise QuerySemanticsError("disjunction of zero expressions")
    result = exprs[0]
    for expr in exprs[1:]:
        result = Or(result, expr)
    return result
