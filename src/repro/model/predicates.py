"""Position-based predicates and their classification.

The calculus/algebra are parameterised by an extensible set ``Preds`` of
position-based predicates (paper, Section 2.2).  This module provides:

* the :class:`Predicate` base class -- a named, fixed-arity boolean function
  over :class:`~repro.model.positions.Position` tuples plus constants;
* the paper's example predicates: ``distance``, ``ordered``, ``samepara``,
  ``samesentence``, ``diffpos``, ``window`` and their negations
  (``not_distance``, ``not_ordered``, ``not_samepara``, ``not_samesentence``,
  ``samepos``);
* the *positive* / *negative* classification (Definitions in Sections 5.5.2
  and 5.6.1) together with the ``f_i`` advance functions that the PPRED and
  NPRED evaluation algorithms rely on to skip over regions of the position
  space;
* a :class:`PredicateRegistry` so user-defined predicates can be plugged in.

Advance-hint contract
---------------------
For a **positive** predicate that is false at ``positions``,
:meth:`Predicate.advance_hints` returns a mapping ``{i: target_offset}`` such
that (a) no tuple with ``p_i`` in ``[positions[i].offset, target_offset)`` and
the other positions ≥ their current values satisfies the predicate, and (b) at
least one target strictly exceeds the current offset.  The PPRED select
operator may therefore advance any hinted position to at least its target
without missing solutions.

For a **negative** predicate that is false at ``positions``,
:meth:`Predicate.advance_target` returns, for the index holding the largest
position, the minimal offset that could make the predicate true with the
remaining positions fixed (the NPRED algorithm only ever moves the largest
position of its permutation thread).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.exceptions import PredicateError
from repro.model.positions import Position, intervening_tokens


class Polarity(enum.Enum):
    """Classification of a predicate for the evaluation algorithms."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    GENERAL = "general"


@dataclass(frozen=True)
class PredicateSignature:
    """Arity information: number of position arguments and constant arguments."""

    num_positions: int
    num_constants: int = 0


class Predicate:
    """Base class for position-based predicates.

    Subclasses implement :meth:`holds`; positive predicates should override
    :meth:`advance_hints` and negative predicates :meth:`advance_target` to
    give the evaluation engines better-than-single-step skips (the defaults
    advance one position by a single offset, which is always correct but
    may be slower).
    """

    name: str = "predicate"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.GENERAL

    # ------------------------------------------------------------- interface
    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        """Evaluate the predicate on concrete positions and constants."""
        raise NotImplementedError

    def advance_hints(
        self, positions: Sequence[Position], constants: Sequence[object]
    ) -> dict[int, int]:
        """Advance targets for a *positive* predicate that is currently false.

        The default hint moves the smallest position forward by one offset,
        which satisfies the positive-predicate property trivially.
        """
        smallest = min(range(len(positions)), key=lambda i: positions[i].offset)
        return {smallest: positions[smallest].offset + 1}

    def advance_target(
        self,
        positions: Sequence[Position],
        constants: Sequence[object],
        index: int,
    ) -> int:
        """Minimal offset for ``positions[index]`` that could satisfy a
        *negative* predicate, all other positions staying fixed.

        The default is a single-step advance.
        """
        return positions[index].offset + 1

    # ------------------------------------------------------------ validation
    def check_arity(
        self, positions: Sequence[object], constants: Sequence[object]
    ) -> None:
        """Raise :class:`PredicateError` if the argument counts are wrong."""
        if len(positions) != self.signature.num_positions:
            raise PredicateError(
                f"{self.name} expects {self.signature.num_positions} position "
                f"arguments, got {len(positions)}"
            )
        if len(constants) != self.signature.num_constants:
            raise PredicateError(
                f"{self.name} expects {self.signature.num_constants} constant "
                f"arguments, got {len(constants)}"
            )

    def __call__(
        self, positions: Sequence[Position], constants: Sequence[object] = ()
    ) -> bool:
        self.check_arity(positions, constants)
        return self.holds(positions, constants)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Predicate {self.name} ({self.polarity.value})>"


# --------------------------------------------------------------------------
# Positive predicates
# --------------------------------------------------------------------------
class DistancePredicate(Predicate):
    """``distance(p1, p2, d)``: at most ``d`` intervening tokens between p1, p2."""

    name = "distance"
    signature = PredicateSignature(num_positions=2, num_constants=1)
    polarity = Polarity.POSITIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        limit = int(constants[0])
        return intervening_tokens(positions[0], positions[1]) <= limit

    def advance_hints(
        self, positions: Sequence[Position], constants: Sequence[object]
    ) -> dict[int, int]:
        # Paper, Section 5.5.2: move the smaller position forward; all tuples
        # with the smaller position unchanged and the other >= current fail.
        p1, p2 = positions
        if p1.offset < p2.offset:
            return {0: p1.offset + 1}
        if p2.offset < p1.offset:
            return {1: p2.offset + 1}
        # Equal offsets always satisfy distance >= 0, so this is unreachable
        # for non-negative limits; advance either to stay safe.
        return {0: p1.offset + 1}


class WindowPredicate(Predicate):
    """``window(p1, .., pn, w)``: all positions fit in a window of ``w`` tokens.

    A window of ``w`` means ``max(offset) - min(offset) <= w``.  With two
    positions and ``w = d + 1`` this coincides with ``distance(p1, p2, d)``;
    the n-ary form is the "window" predicate mentioned in Section 5.5.1.
    """

    name = "window"
    signature = PredicateSignature(num_positions=2, num_constants=1)
    polarity = Polarity.POSITIVE

    def __init__(self, num_positions: int = 2) -> None:
        if num_positions < 2:
            raise PredicateError("window needs at least two position arguments")
        self.signature = PredicateSignature(num_positions, num_constants=1)

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        width = int(constants[0])
        offsets = [pos.offset for pos in positions]
        return max(offsets) - min(offsets) <= width

    def advance_hints(
        self, positions: Sequence[Position], constants: Sequence[object]
    ) -> dict[int, int]:
        offsets = [pos.offset for pos in positions]
        smallest = offsets.index(min(offsets))
        return {smallest: offsets[smallest] + 1}


class OrderedPredicate(Predicate):
    """``ordered(p1, p2)``: p1 occurs strictly before p2."""

    name = "ordered"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.POSITIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return positions[0].offset < positions[1].offset

    def advance_hints(
        self, positions: Sequence[Position], constants: Sequence[object]
    ) -> dict[int, int]:
        # False means p2 <= p1: no tuple with p2 in [p2, p1] and p1 >= current
        # satisfies the predicate, so p2 can jump past p1.
        return {1: positions[0].offset + 1}


class SameParagraphPredicate(Predicate):
    """``samepara(p1, p2)``: both positions lie in the same paragraph."""

    name = "samepara"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.POSITIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return positions[0].paragraph == positions[1].paragraph

    def advance_hints(
        self, positions: Sequence[Position], constants: Sequence[object]
    ) -> dict[int, int]:
        # Paragraph ordinals are monotone in the offset, so when the
        # paragraphs differ the position in the *earlier* paragraph must move
        # forward (at least one step; it cannot reach the later paragraph
        # without its offset growing).
        p1, p2 = positions
        earlier = 0 if p1.paragraph < p2.paragraph else 1
        return {earlier: positions[earlier].offset + 1}


class SameSentencePredicate(Predicate):
    """``samesentence(p1, p2)``: both positions lie in the same sentence."""

    name = "samesentence"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.POSITIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return positions[0].sentence == positions[1].sentence

    def advance_hints(
        self, positions: Sequence[Position], constants: Sequence[object]
    ) -> dict[int, int]:
        p1, p2 = positions
        earlier = 0 if p1.sentence < p2.sentence else 1
        return {earlier: positions[earlier].offset + 1}


class DiffPosPredicate(Predicate):
    """``diffpos(p1, p2)``: the two positions are different.

    Although listed among the paper's example predicates, ``diffpos`` is a
    *negative* predicate under the Section 5.5.2 / 5.6.1 definitions: it is
    falsified only on the diagonal, and making it true requires *extending*
    the gap between the positions -- which position must move depends on the
    data, exactly the non-determinism the NPRED permutation threads resolve.
    (A single-scan PPRED evaluation that always advanced one fixed position
    could miss solutions.)
    """

    name = "diffpos"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.NEGATIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return positions[0].offset != positions[1].offset

    def advance_target(
        self,
        positions: Sequence[Position],
        constants: Sequence[object],
        index: int,
    ) -> int:
        # False only when the offsets coincide; one step past the tie is the
        # minimal advance that can satisfy the predicate.
        return positions[index].offset + 1


# --------------------------------------------------------------------------
# Negative predicates (Section 5.6.1)
# --------------------------------------------------------------------------
class NotDistancePredicate(Predicate):
    """``not_distance(p1, p2, d)``: strictly more than ``d`` intervening tokens."""

    name = "not_distance"
    signature = PredicateSignature(num_positions=2, num_constants=1)
    polarity = Polarity.NEGATIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        limit = int(constants[0])
        return intervening_tokens(positions[0], positions[1]) > limit

    def advance_target(
        self,
        positions: Sequence[Position],
        constants: Sequence[object],
        index: int,
    ) -> int:
        limit = int(constants[0])
        other = positions[1 - index]
        # The moved position must leave more than `limit` intervening tokens
        # after the fixed one: offset >= other + limit + 2.
        return max(positions[index].offset + 1, other.offset + limit + 2)


class NotOrderedPredicate(Predicate):
    """``not_ordered(p1, p2)``: p1 does *not* occur strictly before p2."""

    name = "not_ordered"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.NEGATIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return positions[0].offset >= positions[1].offset

    def advance_target(
        self,
        positions: Sequence[Position],
        constants: Sequence[object],
        index: int,
    ) -> int:
        if index == 0:
            # Moving p1 to at least p2 satisfies p1 >= p2.
            return max(positions[0].offset + 1, positions[1].offset)
        # Moving p2 (the larger in this thread) can never satisfy p1 >= p2;
        # return a single step so the scan terminates by exhausting the list.
        return positions[1].offset + 1


class NotSameParagraphPredicate(Predicate):
    """``not_samepara(p1, p2)``: the positions lie in different paragraphs."""

    name = "not_samepara"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.NEGATIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return positions[0].paragraph != positions[1].paragraph

    def advance_target(
        self,
        positions: Sequence[Position],
        constants: Sequence[object],
        index: int,
    ) -> int:
        return positions[index].offset + 1


class NotSameSentencePredicate(Predicate):
    """``not_samesentence(p1, p2)``: the positions lie in different sentences."""

    name = "not_samesentence"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.NEGATIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return positions[0].sentence != positions[1].sentence

    def advance_target(
        self,
        positions: Sequence[Position],
        constants: Sequence[object],
        index: int,
    ) -> int:
        return positions[index].offset + 1


class SamePosPredicate(Predicate):
    """``samepos(p1, p2)``: the two positions coincide (negation of diffpos).

    ``samepos`` *is* a positive predicate: when the positions differ, the
    smaller one can be advanced all the way to the larger one without
    skipping any solution (equality requires catching up), so it can be
    evaluated by the single-scan PPRED algorithm.
    """

    name = "samepos"
    signature = PredicateSignature(num_positions=2)
    polarity = Polarity.POSITIVE

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return positions[0].offset == positions[1].offset

    def advance_hints(
        self, positions: Sequence[Position], constants: Sequence[object]
    ) -> dict[int, int]:
        p1, p2 = positions
        if p1.offset < p2.offset:
            return {0: p2.offset}
        return {1: p1.offset}


# --------------------------------------------------------------------------
# Generic wrappers
# --------------------------------------------------------------------------
class FunctionPredicate(Predicate):
    """Wrap an arbitrary Python callable as a (general) predicate.

    User extensions that do not fit the positive/negative classification can
    still be used by the calculus, the algebra and the naive COMP engine.
    """

    def __init__(
        self,
        name: str,
        num_positions: int,
        func: Callable[[Sequence[Position], Sequence[object]], bool],
        num_constants: int = 0,
        polarity: Polarity = Polarity.GENERAL,
    ) -> None:
        self.name = name
        self.signature = PredicateSignature(num_positions, num_constants)
        self.polarity = polarity
        self._func = func

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return self._func(positions, constants)


class NegatedPredicate(Predicate):
    """The logical negation of another predicate (classified as GENERAL).

    This is distinct from the hand-written ``not_*`` predicates above: those
    carry NEGATIVE advance semantics, whereas a generic negation makes no
    promise about skip regions and therefore can only be used by the naive
    engine.
    """

    def __init__(self, inner: Predicate) -> None:
        self.name = f"neg_{inner.name}"
        self.signature = inner.signature
        self.polarity = Polarity.GENERAL
        self.inner = inner

    def holds(self, positions: Sequence[Position], constants: Sequence[object]) -> bool:
        return not self.inner.holds(positions, constants)


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------
class PredicateRegistry:
    """Name → predicate lookup used by parsers, translators and engines."""

    def __init__(self, predicates: Iterable[Predicate] = ()) -> None:
        self._by_name: dict[str, Predicate] = {}
        for predicate in predicates:
            self.register(predicate)

    def register(self, predicate: Predicate, replace: bool = False) -> None:
        """Register ``predicate`` under its name."""
        if predicate.name in self._by_name and not replace:
            raise PredicateError(f"predicate {predicate.name!r} already registered")
        self._by_name[predicate.name] = predicate

    def get(self, name: str) -> Predicate:
        """Look a predicate up by name; raise :class:`PredicateError` if absent."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise PredicateError(f"unknown predicate {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        """All registered predicate names, sorted."""
        return sorted(self._by_name)

    def polarity_of(self, name: str) -> Polarity:
        """Polarity classification of a registered predicate."""
        return self.get(name).polarity

    def copy(self) -> "PredicateRegistry":
        """A shallow copy that can be extended without affecting the original."""
        return PredicateRegistry(self._by_name.values())


#: Mapping from each built-in positive predicate to its negative counterpart.
NEGATION_PAIRS: Mapping[str, str] = {
    "distance": "not_distance",
    "ordered": "not_ordered",
    "samepara": "not_samepara",
    "samesentence": "not_samesentence",
    "diffpos": "samepos",
}


def default_registry() -> PredicateRegistry:
    """A registry holding every built-in predicate of the paper."""
    return PredicateRegistry(
        [
            DistancePredicate(),
            WindowPredicate(),
            OrderedPredicate(),
            SameParagraphPredicate(),
            SameSentencePredicate(),
            DiffPosPredicate(),
            NotDistancePredicate(),
            NotOrderedPredicate(),
            NotSameParagraphPredicate(),
            NotSameSentencePredicate(),
            SamePosPredicate(),
        ]
    )


def negation_name(name: str) -> str | None:
    """The name of the built-in negation of ``name`` (either direction), if any."""
    if name in NEGATION_PAIRS:
        return NEGATION_PAIRS[name]
    for positive, negative in NEGATION_PAIRS.items():
        if negative == name:
            return positive
    return None
