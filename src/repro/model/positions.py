"""Position model for full-text search.

The paper (Section 2.1) models each context node as a set of token positions
together with a ``Token`` function mapping positions to tokens.  The position
model is deliberately extensible: "More expressive positions that capture the
notions of lines, sentences and paragraphs can be used, and this will enable
more sophisticated predicates on positions."

This module provides :class:`Position`, a small immutable value that carries

* ``offset``    -- the ordinal of the token within the context node (0-based);
* ``sentence``  -- the ordinal of the sentence containing the token;
* ``paragraph`` -- the ordinal of the paragraph containing the token.

Positions are totally ordered by ``offset`` (sentence and paragraph ordinals
are monotone in the offset, so this ordering is consistent with document
order).  All position-based predicates (``distance``, ``ordered``,
``samepara``, ``samesentence``, ...) operate on :class:`Position` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Sequence


@total_ordering
@dataclass(frozen=True)
class Position:
    """A token position inside a single context node.

    The ``offset`` is the authoritative ordering key; ``sentence`` and
    ``paragraph`` carry the structural information needed by scope
    predicates.  Two positions are equal iff their offsets are equal --
    structural fields are derived from the offset within a given node, so
    comparing them again would be redundant.
    """

    offset: int
    sentence: int = 0
    paragraph: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"position offset must be >= 0, got {self.offset}")
        if self.sentence < 0 or self.paragraph < 0:
            raise ValueError("sentence/paragraph ordinals must be >= 0")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Position):
            return self.offset == other.offset
        if isinstance(other, int):
            return self.offset == other
        return NotImplemented

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Position):
            return self.offset < other.offset
        if isinstance(other, int):
            return self.offset < other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.offset)

    def __int__(self) -> int:
        return self.offset

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Position({self.offset}, sentence={self.sentence}, "
            f"paragraph={self.paragraph})"
        )

    def shifted(self, delta: int) -> "Position":
        """Return a copy of this position with the offset shifted by ``delta``.

        The structural fields are preserved; this is primarily useful in
        tests and synthetic-data construction.
        """
        return Position(self.offset + delta, self.sentence, self.paragraph)


def fast_position(offset: int, sentence: int = 0, paragraph: int = 0) -> Position:
    """Trusted-data :class:`Position` constructor bypassing validation.

    For decoders reading already-validated storage (the columnar posting
    lists): skips the dataclass ``__init__``/``__post_init__`` machinery,
    which dominates the cost of materialising positions in bulk.  Never use
    it on unchecked input.
    """
    position = object.__new__(Position)
    object.__setattr__(position, "offset", offset)
    object.__setattr__(position, "sentence", sentence)
    object.__setattr__(position, "paragraph", paragraph)
    return position


def as_offset(value: "Position | int") -> int:
    """Return the integer offset of ``value`` (a Position or a plain int)."""
    if isinstance(value, Position):
        return value.offset
    return int(value)


def positions_from_offsets(
    offsets: Iterable[int],
    sentence_of: Sequence[int] | None = None,
    paragraph_of: Sequence[int] | None = None,
) -> list[Position]:
    """Build :class:`Position` objects from raw offsets.

    ``sentence_of`` / ``paragraph_of`` are optional dense lookup tables
    indexed by offset; when omitted the structural ordinals default to 0.
    """
    result: list[Position] = []
    for off in offsets:
        sent = sentence_of[off] if sentence_of is not None else 0
        para = paragraph_of[off] if paragraph_of is not None else 0
        result.append(Position(off, sent, para))
    return result


def intervening_tokens(first: Position, second: Position) -> int:
    """Number of tokens strictly between two positions.

    This is the quantity bounded by the paper's ``distance`` predicate:
    ``distance(p1, p2, d)`` holds iff there are at most ``d`` intervening
    tokens between ``p1`` and ``p2`` (in either order).
    """
    lo, hi = sorted((first.offset, second.offset))
    if lo == hi:
        return 0
    return hi - lo - 1
