"""Benchmark: scatter-gather sharding + result caching vs the single index.

Runs a serving-style batch of BOOL conjunctions (a pool of distinct query
shapes drawn with an 80/20 skew, the way production query logs repeat) over
the synthetic corpus, single-index vs sharded at several shard counts, and
reports three things per shard count:

* **cold** -- scatter-gather with an empty result cache.  The gap to the
  single index is the pure sharding overhead (thread fan-out + heap merge);
  per-query results are verified identical to the single-index answers.
* **warm** -- the same batch again with the cache populated.  Repeated query
  shapes are served straight from the LRU cache; this is where the batched
  speedup comes from and what the ``repro serve`` path exhibits.
* **balance** -- how evenly the partitioner spread the corpus.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_sharding.py --nodes 12000

or at smoke scale (used by CI)::

    PYTHONPATH=src python benchmarks/bench_sharding.py --quick
"""

from __future__ import annotations

import argparse
import random

from support import best_of

from repro.bench.workload import bool_query
from repro.cluster import ShardedIndex, balance_report
from repro.core.engine import FullTextEngine
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.index.inverted_index import InvertedIndex


def build_batch(
    num_queries: int, num_distinct: int, seed: int = 20060330
) -> list:
    """A batch of BOOL conjunctions with an 80/20 repetition skew.

    The distinct pool mixes rare planted tokens with dense Zipf-head
    background tokens (the zig-zag merge's two regimes); the batch then
    draws ~80% of its queries from the first ~20% of the pool.
    """
    rng = random.Random(seed)
    planted = list(DEFAULT_QUERY_TOKENS)
    common = [f"w{i:05d}" for i in range(8)]
    pool = []
    while len(pool) < num_distinct:
        width = rng.choice((2, 3))
        tokens = rng.sample(planted, min(width - 1, len(planted)))
        tokens.append(rng.choice(common))
        rng.shuffle(tokens)
        pool.append(bool_query(tokens))
    head = max(1, int(num_distinct * 0.2))
    batch = []
    for _ in range(num_queries):
        if rng.random() < 0.8:
            batch.append(pool[rng.randrange(head)])
        else:
            batch.append(pool[rng.randrange(num_distinct)])
    return batch


def _run_batch(engine: FullTextEngine, batch: list, top_k: int) -> tuple[float, list]:
    # One cold pass on purpose: repeating the batch would warm the caches
    # this benchmark separates into explicit cold/first/warm rows.
    return best_of(
        lambda: engine.search_many(batch, top_k=top_k), repeats=1, warmup=0
    )


def run(
    nodes: int,
    tokens_per_node: int,
    shard_counts: list[int],
    num_queries: int,
    num_distinct: int,
    top_k: int = 10,
    access_mode: str = "fast",
) -> list[dict[str, object]]:
    """Measure the batch under every shard count; returns one row per count."""
    collection = generate_inex_like_collection(
        num_nodes=nodes, tokens_per_node=tokens_per_node, pos_per_entry=3
    )
    batch = build_batch(num_queries, num_distinct)
    single = FullTextEngine.from_collection(
        collection, access_mode=access_mode, cache_size=None
    )
    _run_batch(single, batch, top_k)  # warm-up: decode caches, interning
    single_seconds, reference = _run_batch(single, batch, top_k)
    rows: list[dict[str, object]] = []
    for shards in shard_counts:
        # Two engines per shard count: one cache-less (to isolate the
        # scatter + heap-merge overhead; a plain InvertedIndex at one shard,
        # i.e. the true single-index baseline), one cached (the serving
        # path; always a cluster, since the result cache lives there --
        # at one shard it runs through the sequential fallback).
        sharded = ShardedIndex(collection, shards)
        nocache = FullTextEngine(
            sharded if shards > 1 else InvertedIndex(collection),
            access_mode=access_mode,
            cache_size=None,
        )
        cached = FullTextEngine(
            sharded, access_mode=access_mode, cache_size=max(num_distinct * 2, 16)
        )
        cold_seconds, cold_results = _run_batch(nocache, batch, top_k)
        for expected, got in zip(reference, cold_results):
            if expected.node_ids != got.node_ids:
                raise AssertionError(
                    f"sharded results diverge at {shards} shards for "
                    f"{expected.query_text!r}"
                )
        first_seconds, _ = _run_batch(cached, batch, top_k)
        warm_seconds, _ = _run_batch(cached, batch, top_k)
        cache = cached.cache_stats()
        balance = balance_report(row["nodes"] for row in cached.shard_stats())
        rows.append(
            {
                "shards": shards,
                "single_seconds": single_seconds,
                "cold_seconds": cold_seconds,
                "first_seconds": first_seconds,
                "warm_seconds": warm_seconds,
                "cold_speedup": single_seconds / max(cold_seconds, 1e-12),
                "first_speedup": single_seconds / max(first_seconds, 1e-12),
                "warm_speedup": single_seconds / max(warm_seconds, 1e-12),
                "merge_overhead_ms": max(0.0, cold_seconds - single_seconds) * 1e3,
                "hit_rate": cache["hit_rate"],
                "imbalance": balance["imbalance"],
            }
        )
        nocache.close()
        cached.close()
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=12_000)
    parser.add_argument("--tokens-per-node", type=int, default=60)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8],
        help="shard counts to measure (default: 1 2 4 8)",
    )
    parser.add_argument("--queries", type=int, default=240, help="batch size")
    parser.add_argument(
        "--distinct", type=int, default=48, help="distinct query shapes in the pool"
    )
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument(
        "--access-mode", default="fast", choices=["paper", "fast"]
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale (600 nodes, 60-query batch)",
    )
    args = parser.parse_args()
    if args.quick:
        args.nodes, args.queries, args.distinct = 600, 60, 12

    rows = run(
        args.nodes,
        args.tokens_per_node,
        args.shards,
        args.queries,
        args.distinct,
        args.top_k,
        args.access_mode,
    )
    print(
        f"sharding benchmark: {args.nodes} nodes, {args.queries}-query BOOL "
        f"batch ({args.distinct} distinct shapes), access mode {args.access_mode}"
    )
    print(
        f"{'shards':>6} {'single':>10} {'nocache':>10} {'1st':>10} {'warm':>10} "
        f"{'nocache x':>9} {'1st x':>7} {'warm x':>7} {'merge+':>8} {'hits':>6} {'imbal':>6}"
    )
    for row in rows:
        print(
            f"{row['shards']:>6} {row['single_seconds'] * 1e3:>8.1f}ms "
            f"{row['cold_seconds'] * 1e3:>8.1f}ms "
            f"{row['first_seconds'] * 1e3:>8.1f}ms "
            f"{row['warm_seconds'] * 1e3:>8.1f}ms "
            f"{row['cold_speedup']:>8.2f}x {row['first_speedup']:>6.2f}x "
            f"{row['warm_speedup']:>6.2f}x "
            f"{row['merge_overhead_ms']:>6.1f}ms "
            f"{row['hit_rate'] * 100:>5.1f}% {row['imbalance'] * 100:>5.1f}%"
        )
    print(
        "\nnocache = scatter-gather with caching disabled, every query "
        "evaluated\n          (the gap to single is the pure fan-out + heap-"
        "merge overhead);\n1st     = first pass with the LRU cache on "
        "(repeats inside the batch\n          are served from cache);\nwarm "
        "    = the same batch again, fully cache-resident -- the serving-"
        "\n          path number for a batched, repeating BOOL workload."
    )


if __name__ == "__main__":
    main()
