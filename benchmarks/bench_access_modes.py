"""Benchmark: paper-mode sequential scans vs fast-mode galloping seeks.

Runs the intersection-heavy workloads (BOOL conjunctions and positive
predicate queries) over a synthetic corpus in both cursor access modes and
reports wall-clock times plus the cursor operation counts.  The fast mode
drives the shared zig-zag merge (:mod:`repro.engine.operators`) with
seek-capable cursors, so the win grows with the corpus size and with the
selectivity gap between the merged lists.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_access_modes.py --nodes 10000

or at smoke scale (used by CI)::

    PYTHONPATH=src python benchmarks/bench_access_modes.py --nodes 400 --repeats 2
"""

from __future__ import annotations

import argparse

from support import best_of

from repro.bench.workload import bool_query, workload_queries
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.engine.bool_engine import BoolEngine
from repro.engine.ppred_engine import PPredEngine
from repro.index import InvertedIndex


def run(
    nodes: int, tokens_per_node: int, repeats: int, document_frequency: float = 0.05
) -> list[dict[str, object]]:
    """Measure every (series, mode) combination; returns one row per series.

    The planted query tokens are rare (``document_frequency`` of the nodes);
    the Zipf-head background tokens (``w00000``, ...) occur in nearly every
    node.  The ``rare AND common`` series is the zig-zag's home turf: the
    rare list drives and the dense lists are crossed by galloping seeks.  The
    all-rare conjunction and the PPRED series cover the symmetric case.
    """
    collection = generate_inex_like_collection(
        num_nodes=nodes,
        tokens_per_node=tokens_per_node,
        pos_per_entry=3,
        document_frequency=document_frequency,
    )
    index = InvertedIndex(collection)
    planted = list(DEFAULT_QUERY_TOKENS)[:3]
    queries = workload_queries(planted, 3, 2)
    series = [
        ("BOOL rare AND common", "bool", bool_query([planted[0], "w00000", "w00002"])),
        ("BOOL all planted", "bool", queries["BOOL"]),
        ("PPRED positive", "ppred", queries["POSITIVE"]),
    ]
    rows: list[dict[str, object]] = []
    for label, engine_name, query in series:
        row: dict[str, object] = {"series": label}
        for mode in ("paper", "fast"):
            if engine_name == "bool":
                engine = BoolEngine(index, access_mode=mode)
            else:
                engine = PPredEngine(index, access_mode=mode)
            seconds, result = best_of(lambda: engine.evaluate(query), repeats)
            matches = len(result)
            _, stats = engine.evaluate_with_stats(query)
            row[f"{mode}_seconds"] = seconds
            row[f"{mode}_ops"] = stats.as_extended_dict()
            row["matches"] = matches
        row["speedup"] = row["paper_seconds"] / max(row["fast_seconds"], 1e-12)
        rows.append(row)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--tokens-per-node", type=int, default=60)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    rows = run(args.nodes, args.tokens_per_node, args.repeats)
    print(f"access-mode benchmark: {args.nodes} nodes, "
          f"{args.tokens_per_node} tokens/node, best of {args.repeats}")
    for row in rows:
        print(f"\n{row['series']} ({row['matches']} matches)")
        for mode in ("paper", "fast"):
            ops = row[f"{mode}_ops"]
            print(f"  {mode:5}: {row[f'{mode}_seconds'] * 1e3:9.2f} ms  "
                  f"next_entry={ops['next_entry_calls']:>8} "
                  f"seeks={ops['seek_calls']:>6} probes={ops['seek_probes']:>7}")
        print(f"  speedup: {row['speedup']:.2f}x")


if __name__ == "__main__":
    main()
