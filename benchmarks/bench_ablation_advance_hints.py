"""Ablation: positive-predicate advance hints vs naive per-node enumeration.

The heart of the PPRED result (Section 5.5) is that positive predicates let
the evaluator *skip* regions of the per-node position space, turning the
per-node cartesian product into a single merge-like scan.  This ablation
measures exactly that design choice by running the same positive-predicate
query

* with the PPRED pipelined engine (hints on), and
* with the naive COMP engine (hints off -- full per-node cartesian product),

on datasets with increasingly fat inverted-list entries, where the gap should
widen roughly like ``pos_per_entry^(toks_Q - 1)``.

Run with ``pytest benchmarks/bench_ablation_advance_hints.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import workload_queries

from support import QUERY_TOKENS, make_engine

NUM_TOKENS = 3
NUM_PREDICATES = 2

CASES = [("hints-on (PPRED)", "ppred"), ("hints-off (naive COMP)", "comp")]


@pytest.mark.parametrize("pos_per_entry", (2, 4, 8))
@pytest.mark.parametrize("label, engine_name", CASES, ids=[c[0] for c in CASES])
def test_ablation_advance_hints(
    benchmark, indexes_by_pos_per_entry, pos_per_entry, label, engine_name
):
    index = indexes_by_pos_per_entry[pos_per_entry]
    query = workload_queries(QUERY_TOKENS, NUM_TOKENS, NUM_PREDICATES)["POSITIVE"]
    engine = make_engine(engine_name, index)
    benchmark.group = f"Ablation: advance hints | positions per entry = {pos_per_entry}"
    matches = benchmark(engine.evaluate, query)
    benchmark.extra_info["matches"] = len(matches)
    benchmark.extra_info["variant"] = label
