"""Shared helpers for the benchmark suite (dataset construction, engines, timing)."""

from __future__ import annotations

from typing import Callable

from repro.bench.perf import Timing, time_call
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.engine.npred_engine import NPredEngine
from repro.engine.ppred_engine import PPredEngine
from repro.index import InvertedIndex

#: Default dataset shape for the query-side sweeps (Figures 5 and 6).
DEFAULT_NODES = 300
DEFAULT_POS_PER_ENTRY = 3
QUERY_TOKENS = list(DEFAULT_QUERY_TOKENS)

#: The series reported in the paper's figures: (series name, engine, variant).
SERIES = [
    ("BOOL", "bool", "BOOL"),
    ("PPRED-POS", "ppred", "POSITIVE"),
    ("NPRED-POS", "npred", "POSITIVE"),
    ("NPRED-NEG", "npred", "NEGATIVE"),
    ("COMP-POS", "comp", "POSITIVE"),
    ("COMP-NEG", "comp", "NEGATIVE"),
]


def build_index(
    num_nodes: int = DEFAULT_NODES,
    pos_per_entry: int = DEFAULT_POS_PER_ENTRY,
    tokens_per_node: int = 150,
) -> InvertedIndex:
    """A deterministic INEX-like index at benchmark scale."""
    collection = generate_inex_like_collection(
        num_nodes=num_nodes,
        tokens_per_node=tokens_per_node,
        pos_per_entry=pos_per_entry,
        document_frequency=0.6,
        query_tokens=QUERY_TOKENS,
    )
    return InvertedIndex(collection)


def best_of(
    func: Callable[[], object], repeats: int = 3, warmup: int = 0
) -> tuple[float, object]:
    """Min-of-N seconds plus the callable's last return value.

    Thin wrapper over :func:`repro.bench.perf.time_call` -- the one timing
    core every benchmark routes through (min of N repeats after warmup on
    the monotonic ``time.perf_counter``) -- for scripts that also need the
    evaluated result (match counts, verification).  ``repeats=1, warmup=0``
    is the single cold pass, for cases where repetition would change what
    is measured (cache warming, first-touch page faults).
    """
    result: object = None

    def call() -> object:
        nonlocal result
        result = func()
        return result

    timing = time_call(call, repeats=repeats, warmup=warmup)
    return timing.min, result


def make_engine(name: str, index: InvertedIndex):
    """Instantiate one of the four evaluation engines by name."""
    if name == "bool":
        return BoolEngine(index)
    if name == "ppred":
        return PPredEngine(index)
    if name == "npred":
        return NPredEngine(index)
    if name == "comp":
        return NaiveCompEngine(index)
    raise ValueError(f"unknown engine {name!r}")
