"""Shared helpers for the benchmark suite (dataset construction, engines)."""

from __future__ import annotations

from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.engine.npred_engine import NPredEngine
from repro.engine.ppred_engine import PPredEngine
from repro.index import InvertedIndex

#: Default dataset shape for the query-side sweeps (Figures 5 and 6).
DEFAULT_NODES = 300
DEFAULT_POS_PER_ENTRY = 3
QUERY_TOKENS = list(DEFAULT_QUERY_TOKENS)

#: The series reported in the paper's figures: (series name, engine, variant).
SERIES = [
    ("BOOL", "bool", "BOOL"),
    ("PPRED-POS", "ppred", "POSITIVE"),
    ("NPRED-POS", "npred", "POSITIVE"),
    ("NPRED-NEG", "npred", "NEGATIVE"),
    ("COMP-POS", "comp", "POSITIVE"),
    ("COMP-NEG", "comp", "NEGATIVE"),
]


def build_index(
    num_nodes: int = DEFAULT_NODES,
    pos_per_entry: int = DEFAULT_POS_PER_ENTRY,
    tokens_per_node: int = 150,
) -> InvertedIndex:
    """A deterministic INEX-like index at benchmark scale."""
    collection = generate_inex_like_collection(
        num_nodes=num_nodes,
        tokens_per_node=tokens_per_node,
        pos_per_entry=pos_per_entry,
        document_frequency=0.6,
        query_tokens=QUERY_TOKENS,
    )
    return InvertedIndex(collection)


def make_engine(name: str, index: InvertedIndex):
    """Instantiate one of the four evaluation engines by name."""
    if name == "bool":
        return BoolEngine(index)
    if name == "ppred":
        return PPredEngine(index)
    if name == "npred":
        return NPredEngine(index)
    if name == "comp":
        return NaiveCompEngine(index)
    raise ValueError(f"unknown engine {name!r}")
