"""Figure 5: evaluation time vs number of query tokens.

The paper varies the number of query tokens from 1 to 5 (default 3, with two
predicates) on the INEX collection and reports one curve per algorithm:
BOOL, and PPRED/NPRED/COMP on positive-predicate ("-POS") and
negative-predicate ("-NEG") queries.  Expected shape: BOOL and PPRED grow
slowly and roughly linearly; COMP and NPRED grow much faster in the query
size, with COMP-NEG worst of all.

Run with ``pytest benchmarks/bench_fig5_query_tokens.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import workload_queries

from support import QUERY_TOKENS, SERIES, make_engine

TOKEN_COUNTS = (1, 2, 3, 4, 5)


@pytest.mark.parametrize("num_tokens", TOKEN_COUNTS)
@pytest.mark.parametrize(
    "series, engine_name, variant", SERIES, ids=[name for name, _, _ in SERIES]
)
def test_fig5_query_tokens(
    benchmark, default_index, num_tokens, series, engine_name, variant
):
    num_predicates = min(2, max(num_tokens - 1, 0))
    queries = workload_queries(QUERY_TOKENS, num_tokens, num_predicates)
    if variant not in queries:
        pytest.skip("no negative-predicate variant for predicate-free queries")
    query = queries[variant]
    engine = make_engine(engine_name, default_index)
    benchmark.group = f"Figure 5 | query tokens = {num_tokens}"
    matches = benchmark(engine.evaluate, query)
    benchmark.extra_info["series"] = series
    benchmark.extra_info["matches"] = len(matches)
    benchmark.extra_info["toks_Q"] = num_tokens
    benchmark.extra_info["preds_Q"] = num_predicates
